"""Benchmark: regenerate Figure 13 (f(20) / f(200) after doubling)."""

from conftest import run_once

from repro.experiments import fig13_fk_utilization


def test_fig13_fk_utilization(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig13_fk_utilization.run(scale, executor=executor, cache=result_cache))
    report("fig13_fk_utilization", table)

    def f20(family, b):
        for fam, bb, f_20, _ in table.rows:
            if fam == family and bb == b:
                return f_20
        raise KeyError((family, b))

    bs = sorted(set(table.column("b_param")))
    bmin, bmax = bs[0], bs[-1]
    # TCP exploits the doubled bandwidth fastest; the slowest variants are
    # left well behind within the first 20 RTTs.
    assert f20("TCP(1/b)", bmin) > f20("TCP(1/b)", bmax)
    assert f20("TCP(1/b)", bmin) > f20("TFRC(b)", bmax)
    assert f20("TFRC(b)", bmax) < 0.8
    # f(k) only improves with more time: f(200) >= f(20) - small jitter.
    for _, _, f_20, f_200 in table.rows:
        assert f_200 >= f_20 - 0.05
    # Valid utilizations; the noisiest variants (e.g. TFRC(2), whose
    # 2-interval averaging is jittery) can dip below the half-link start.
    for _, _, f_20, f_200 in table.rows:
        assert 0.2 <= f_20 <= 1.05
        assert 0.2 <= f_200 <= 1.05
