"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

1. TFRC's conservative cap constant C (paper used 1.1, ns-2 shipped 1.5).
2. RED vs DropTail at the bottleneck for the CBR-restart scenario (the
   paper reports the self-clocking benefit holds for both).
3. TFRC history discounting on/off for the f(k) time-of-plenty metric
   (the paper turns it off in Figure 13; discounting should help).
4. Packet conservation applied to RAP (the paper demonstrates the
   principle on TFRC; the same clamp repairs RAP's stabilization cost).
"""

from conftest import run_once

from repro.experiments.protocols import Protocol, rap, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import (
    CbrRestartConfig,
    DoublingConfig,
    run_cbr_restart,
    run_doubling,
)
from repro.cc.rap import RapSender, RapSink
from repro.cc.tfrc import new_tfrc_flow


def tfrc_with_c(c: float) -> Protocol:
    return Protocol(
        name=f"TFRC(256)+SC(C={c:g})",
        make=lambda sim: new_tfrc_flow(
            sim, n_intervals=256, conservative=True, conservative_c=c
        ),
        rate_based=True,
        self_clocked=True,
    )


def conservative_rap(gamma: float) -> Protocol:
    b = 1.0 / gamma

    def make(sim):
        return RapSender(sim, b=b, conservative=True), RapSink(sim)

    return Protocol(
        name=f"RAP({b:g})+SC", make=make, rate_based=True, self_clocked=True
    )


def test_ablation_tfrc_conservative_c(benchmark, scale, report):
    """The cap constant barely matters next to having the cap at all."""
    cfg = pick_config(CbrRestartConfig, scale)

    def work():
        out = {}
        for protocol in (tfrc(256), tfrc_with_c(1.1), tfrc_with_c(1.5)):
            out[protocol.name] = run_cbr_restart(protocol, cfg)
        return out

    results = run_once(benchmark, work)
    table = Table(
        title="Ablation: TFRC(256) conservative cap constant C",
        columns=["variant", "stab_rtts", "stab_cost"],
        notes="Paper used C=1.1; the ns-2 default was 1.5.",
    )
    for name, result in results.items():
        table.add(name, result.stabilization.time_rtts, result.stabilization.cost)
    report("ablation_tfrc_conservative_c", table)

    uncapped = results["TFRC(256)"].stabilization.cost
    for c_name in ("TFRC(256)+SC(C=1.1)", "TFRC(256)+SC(C=1.5)"):
        assert results[c_name].stabilization.cost < uncapped / 3


def test_ablation_red_vs_droptail(benchmark, scale, report):
    """Self-clocking's benefit is not a RED artifact (paper Sec 4.1.1)."""
    from repro.net.queue import DropTailQueue

    cfg = pick_config(CbrRestartConfig, scale)

    def work():
        out = {}
        for queue in ("red", "droptail"):
            for protocol in (tfrc(256), tfrc(256, conservative=True)):
                run_cfg = cfg
                if queue == "droptail":
                    # Same buffer depth as the RED configuration (2.5 BDP).
                    bdp = cfg.bandwidth_bps * cfg.rtt_s / 8000.0
                    capacity = max(4, int(2.5 * bdp))
                    out[(queue, protocol.name)] = _run_with_droptail(
                        protocol, run_cfg, capacity
                    )
                else:
                    out[(queue, protocol.name)] = run_cbr_restart(protocol, run_cfg)
        return out

    results = run_once(benchmark, work)
    table = Table(
        title="Ablation: RED vs DropTail bottleneck (CBR restart)",
        columns=["queue", "variant", "stab_rtts", "stab_cost"],
        notes="Paper: the self-clocking benefit was seen with both AQMs.",
    )
    for (queue, name), result in results.items():
        table.add(queue, name, result.stabilization.time_rtts, result.stabilization.cost)
    report("ablation_red_vs_droptail", table)

    for queue in ("red", "droptail"):
        plain = results[(queue, "TFRC(256)")].stabilization.cost
        clocked = results[(queue, "TFRC(256)+SC")].stabilization.cost
        assert clocked < plain


def _run_with_droptail(protocol, cfg, capacity):
    """run_cbr_restart against a DropTail bottleneck of the same depth."""
    import math
    import random

    from repro.cc.base import establish
    from repro.cc.tcp import new_tcp_flow
    from repro.experiments.scenarios import CbrRestartResult
    from repro.metrics.stabilization import measure_stabilization
    from repro.net.dumbbell import Dumbbell
    from repro.net.queue import DropTailQueue
    from repro.sim import RngRegistry, Simulator
    from repro.traffic.bulk import add_flows
    from repro.traffic.cbr import CbrSink, CbrSource, on_off_schedule

    sim = Simulator()
    net = Dumbbell(
        sim,
        bandwidth_bps=cfg.bandwidth_bps,
        rtt_s=cfg.rtt_s,
        queue_factory=lambda: DropTailQueue(capacity),
        rng=RngRegistry(cfg.seed),
    )
    if cfg.reverse_flows:
        add_flows(
            sim, net, lambda s: new_tcp_flow(s), count=cfg.reverse_flows,
            forward=False, rng=random.Random(cfg.seed + 1),
        )
    cbr = CbrSource(sim, rate_bps=cfg.cbr_fraction * cfg.bandwidth_bps)
    establish(net, cbr, CbrSink(sim))
    on_off_schedule(
        sim, cbr, [(0.0, True), (cfg.cbr_stop, False), (cfg.cbr_restart, True)]
    )
    add_flows(
        sim, net, protocol.make, count=cfg.n_flows,
        start_jitter_s=2.0, rng=random.Random(cfg.seed),
    )
    sim.run(until=cfg.end)
    steady = net.monitor.loss_rate(cfg.warmup_s, cfg.cbr_stop)
    steady = 0.0 if math.isnan(steady) else steady
    stab = measure_stabilization(
        net.monitor, cfg.cbr_restart, steady, cfg.rtt_s, cfg.end
    )
    series = net.monitor.loss_rate_series(10 * cfg.rtt_s, 0.0, cfg.end)
    spike = net.monitor.loss_rate(cfg.cbr_restart, cfg.cbr_restart + 10 * cfg.rtt_s)
    return CbrRestartResult(
        protocol=protocol.name,
        steady_loss_rate=steady,
        stabilization=stab,
        loss_series=series,
        spike_loss_rate=0.0 if math.isnan(spike) else spike,
    )


def test_ablation_history_discounting(benchmark, scale, report):
    """Discounting lets TFRC exploit a time of plenty faster (f(200))."""
    cfg = pick_config(DoublingConfig, scale)

    def work():
        return {
            "TFRC(8) no discounting": run_doubling(
                tfrc(8, history_discounting=False), cfg
            ),
            "TFRC(8) discounting": run_doubling(
                tfrc(8, history_discounting=True), cfg
            ),
        }

    results = run_once(benchmark, work)
    table = Table(
        title="Ablation: TFRC history discounting and f(k)",
        columns=["variant", "f20", "f200"],
        notes="Paper disabled discounting in Figure 13 to isolate the "
        "loss-rate response; enabling it should only help.",
    )
    for name, result in results.items():
        table.add(name, result.f_of_k[20], result.f_of_k[200])
    report("ablation_history_discounting", table)

    plain = results["TFRC(8) no discounting"].f_of_k[200]
    discounted = results["TFRC(8) discounting"].f_of_k[200]
    assert discounted > plain - 0.05  # never meaningfully worse


def test_ablation_rap_packet_conservation(benchmark, scale, report):
    """The paper's principle generalizes: clamping RAP's virtual window to
    the delivered ACK rate repairs its stabilization cost too."""
    cfg = pick_config(CbrRestartConfig, scale)

    def work():
        return {
            "RAP(1/256)": run_cbr_restart(rap(256), cfg),
            "RAP(1/256)+SC": run_cbr_restart(conservative_rap(256), cfg),
        }

    results = run_once(benchmark, work)
    table = Table(
        title="Ablation: packet conservation applied to RAP(1/256)",
        columns=["variant", "stab_rtts", "stab_cost"],
        notes="Mirrors the TFRC conservative_ option on the other "
        "rate-based algorithm.",
    )
    for name, result in results.items():
        table.add(name, result.stabilization.time_rtts, result.stabilization.cost)
    report("ablation_rap_packet_conservation", table)

    assert (
        results["RAP(1/256)+SC"].stabilization.cost
        < results["RAP(1/256)"].stabilization.cost / 2
    )


def test_ablation_tfrc_oscillation_prevention(benchmark, scale, report):
    """RFC 3448 4.5 (not used by the paper): scaling the instantaneous rate
    by R_sqmean/sqrt(R_sample) damps TFRC's queue oscillations."""
    from repro.cc.tfrc import new_tfrc_flow
    from repro.experiments.ext_queue_dynamics import (
        QueueDynamicsConfig,
        measure_queue_dynamics,
    )

    def work():
        cfg = (
            QueueDynamicsConfig.fast()
            if scale == "fast"
            else QueueDynamicsConfig()
        )
        plain = Protocol(
            "TFRC(6)", lambda sim: new_tfrc_flow(sim, n_intervals=6),
            rate_based=True,
        )
        damped = Protocol(
            "TFRC(6)+OP",
            lambda sim: new_tfrc_flow(
                sim, n_intervals=6, oscillation_prevention=True
            ),
            rate_based=True,
        )
        return {
            proto.name: measure_queue_dynamics(proto, "red", cfg)
            for proto in (plain, damped)
        }

    results = run_once(benchmark, work)
    table = Table(
        title="Ablation: TFRC oscillation prevention (RFC 3448 4.5)",
        columns=["variant", "mean_queue_pkts", "queue_cov", "loss_rate"],
        notes="The paper runs TFRC without this optional damping.",
    )
    for name, (mean_q, cov, loss) in results.items():
        table.add(name, mean_q, cov, loss)
    report("ablation_tfrc_oscillation_prevention", table)

    assert results["TFRC(6)+OP"][1] < results["TFRC(6)"][1] * 0.7
