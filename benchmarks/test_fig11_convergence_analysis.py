"""Benchmark: regenerate Figure 11 (analytic ACKs to 0.1-fairness)."""

import math

from conftest import run_once

from repro.analysis import acks_to_fairness
from repro.experiments import fig11_convergence_analysis


def test_fig11_convergence_analysis(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig11_convergence_analysis.run(scale, executor=executor, cache=result_cache))
    report("fig11_convergence_analysis", table)

    bs = table.column("b")
    acks = table.column("expected_acks")
    # Strictly decreasing in b (more drastic decrease converges faster).
    pairs = sorted(zip(bs, acks))
    values = [a for _, a in pairs]
    assert all(x > y for x, y in zip(values, values[1:]))
    # Spot value from the closed form at the paper's operating point.
    assert math.isclose(dict(zip(bs, acks))[0.5], acks_to_fairness(0.5, 0.1, 0.1))
    # Knee: the b = 1/256 point is orders of magnitude above b = 0.5.
    assert values[0] / values[-1] > 100


def test_fig11_simulated_validation(benchmark, scale, report):
    """Cross-check the analysis against simulation in its own setting:
    two ECN-marked TCP(b) flows, convergence measured in ACKs."""
    from repro.experiments.fig11_convergence_analysis import measure_acks_to_fairness
    from repro.experiments.runner import Table

    def work():
        out = {}
        for b in (0.5, 0.125):
            out[b] = measure_acks_to_fairness(b)
        return out

    results = run_once(benchmark, work)
    table = Table(
        title="Figure 11 (validation): simulated vs analytic ACKs to 0.1-fairness",
        columns=["b", "measured_acks", "mark_rate", "model_acks"],
        notes="Model: log_(1-b*p)(0.1) at the observed mark rate.",
    )
    models = {}
    for b, (acks, p) in results.items():
        model = acks_to_fairness(b, p, 0.1) if 0 < p < 1 else float("nan")
        models[b] = model
        table.add(b, acks, p, model)
    report("fig11_simulated_validation", table)

    for b, (acks, p) in results.items():
        assert 0 < p < 1
        # The expected-value model ignores variance and the detection lag;
        # agreement within a small constant factor is the meaningful check.
        assert models[b] / 4 < acks < models[b] * 6
    # The scaling with b matches: slower decrease -> proportionally more ACKs.
    measured_ratio = results[0.125][0] / results[0.5][0]
    model_ratio = models[0.125] / models[0.5]
    assert model_ratio / 2.5 < measured_ratio < model_ratio * 2.5
