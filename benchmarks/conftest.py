"""Shared fixtures for the per-figure benchmark harness.

Each benchmark regenerates one paper figure's data at the "fast" scale,
prints the table, writes it under ``results/`` and asserts the figure's
qualitative shape (who wins, where the knees are).  Figures 4/5 and 14/15
are different projections of the same sweep, so those sweeps are cached in
a session-scoped store and only run once.

Set ``REPRO_SCALE=paper`` in the environment to run the paper-scale
configurations instead (slow: tens of minutes).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "fast")


@pytest.fixture(scope="session")
def sweep_cache() -> dict:
    """Cross-benchmark cache for shared parameter sweeps."""
    return {}


@pytest.fixture(scope="session")
def report():
    """Print a result table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, table) -> None:
        text = table.format()
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Benchmark a simulation exactly once (runs are minutes, not micro)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
