"""Shared fixtures for the per-figure benchmark harness.

Each benchmark regenerates one paper figure's data at the "fast" scale,
prints the table, writes it under ``results/`` and asserts the figure's
qualitative shape (who wins, where the knees are).  Figures 4/5 and 14/15
are different projections of the same sweep, so those sweeps are cached in
a session-scoped store and only run once.

Set ``REPRO_SCALE=paper`` in the environment to run the paper-scale
configurations instead (slow: tens of minutes).  ``REPRO_PARALLEL=N``
fans the declarative job sweeps out over N worker processes, and
``REPRO_CACHE_DIR=/path`` reuses the on-disk result cache across
benchmark sessions (by default an in-memory cache shares work only
within one session, e.g. between Figures 7-9's identical sweeps).

Fault tolerance and telemetry are configured the same way:
``REPRO_RUN_LOG=/path/run.jsonl`` appends one JSONL provenance record
per job plus a summary per sweep, ``REPRO_JOB_TIMEOUT=S`` bounds each
job's wall clock (a stuck worker is killed and the job retried),
``REPRO_MAX_RETRIES=N`` sets the retry budget, and ``REPRO_FAULT_SPEC``
injects deterministic faults for smoke-testing the recovery paths (see
``repro.experiments.faults``).

The throughput scheduler honors the same convention:
``REPRO_DISPATCH={lpt,fifo}`` picks the execution order,
``REPRO_POOL_MODE={warm,cold}`` warm fork-server vs per-map worker
pools, ``REPRO_TRANSPORT={packed,pickle}`` the result transport, and
``REPRO_COST_MODEL=/path`` the cost-model sidecar.  All of them change
wall-clock only — never a table.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "fast")


@pytest.fixture(scope="session")
def sweep_cache() -> dict:
    """Cross-benchmark cache for shared parameter sweeps."""
    return {}


@pytest.fixture(scope="session")
def executor():
    """Job executor: serial unless ``REPRO_PARALLEL=N`` asks for a pool.

    ``make_executor`` also reads ``REPRO_RUN_LOG``, ``REPRO_JOB_TIMEOUT``,
    ``REPRO_MAX_RETRIES`` and ``REPRO_FAULT_SPEC`` from the environment,
    so benchmark sessions get run telemetry and fault tolerance without
    any per-test plumbing.
    """
    from repro.experiments.executor import make_executor

    return make_executor(int(os.environ.get("REPRO_PARALLEL", "0") or 0))


@pytest.fixture(scope="session")
def result_cache():
    """Content-addressed job-result cache shared across the session.

    In-memory by default; point ``REPRO_CACHE_DIR`` at a directory to
    persist results across benchmark runs.
    """
    from repro.experiments.cache import ResultCache

    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    return ResultCache(pathlib.Path(cache_dir)) if cache_dir else ResultCache()


@pytest.fixture(scope="session")
def report():
    """Print a result table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, table) -> None:
        text = table.format()
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Benchmark a simulation exactly once (runs are minutes, not micro)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
