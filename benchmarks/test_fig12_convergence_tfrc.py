"""Benchmark: regenerate Figure 12 (0.1-fair convergence for TFRC(k))."""

from conftest import run_once

from repro.experiments import fig12_convergence_tfrc


def test_fig12_convergence_tfrc(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig12_convergence_tfrc.run(scale, executor=executor, cache=result_cache))
    report("fig12_convergence_tfrc", table)

    ks = table.column("k")
    times = table.column("convergence_s")
    by_k = dict(zip(ks, times))
    assert all(t > 0 for t in times)
    # Paper: convergence grows far more slowly with TFRC's k than with
    # TCP's 1/b — even the slowest TFRC converges within the run, well
    # before the never-converged ceiling, and the spread across two orders
    # of magnitude of k stays within a modest factor.
    from repro.experiments.runner import pick_config
    from repro.experiments.scenarios import ConvergenceConfig

    cfg = pick_config(ConvergenceConfig, scale)
    ceiling = cfg.end - cfg.second_start
    assert max(times) < 0.5 * ceiling
    assert max(times) < 20 * min(times)
