"""Benchmark: regenerate Figure 14 (utilization under 3:1 oscillation)."""

from conftest import run_once

from repro.experiments.oscillation_utilization import sweep, table_from_sweep


def oscillation_sweep(sweep_cache, scale, cbr_fraction):
    key = ("oscillation", scale, cbr_fraction)
    if key not in sweep_cache:
        sweep_cache[key] = sweep(scale, cbr_fraction=cbr_fraction)
    return sweep_cache[key]


def test_fig14_oscillation_utilization(benchmark, scale, sweep_cache, report):
    results = run_once(
        benchmark, lambda: oscillation_sweep(sweep_cache, scale, 2.0 / 3.0)
    )
    table = table_from_sweep(
        results,
        metric="utilization",
        title="Figure 14: utilization vs CBR ON/OFF time (3:1 oscillation)",
        notes="",
    )
    report("fig14_oscillation_utilization", table)

    protocols = sorted({name for name, _ in results})
    on_times = sorted({t for _, t in results})
    shortest, *middle, longest = on_times
    for protocol in protocols:
        series = {t: results[(protocol, t)].utilization for t in on_times}
        # Short bursts are absorbed by the queue: high utilization.
        assert series[shortest] > 0.8
        # The mid-range ON/OFF times (a few RTTs) are the costly ones.
        assert min(series[t] for t in middle) < series[shortest]
