"""Benchmark: regenerate Figure 6 (flash crowd vs SlowCC background)."""

from conftest import run_once

from repro.experiments import fig06_flash_crowd


def crowd_peak(table, background: str) -> float:
    rows = table.rows_where("background", background)
    return max(crowd for (_, _, _, crowd) in rows)


def test_fig06_flash_crowd(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig06_flash_crowd.run(scale, executor=executor, cache=result_cache))
    report("fig06_flash_crowd", table)

    backgrounds = set(table.column("background"))
    assert backgrounds == {"TCP(0.5)", "TFRC(256)", "TFRC(256)+SC"}
    # The crowd of slow-starting short flows grabs a large share against a
    # TCP background...
    tcp_peak = crowd_peak(table, "TCP(0.5)")
    assert tcp_peak > 0.5  # Mbps, a visible bite of the link
    # ...and self-clocking lets the crowd through at least as well as the
    # unmodified TFRC(256) does.
    assert crowd_peak(table, "TFRC(256)+SC") >= 0.9 * crowd_peak(table, "TFRC(256)")
