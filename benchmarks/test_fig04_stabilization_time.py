"""Benchmark: regenerate Figure 4 (stabilization time vs gamma)."""

from conftest import run_once

from repro.experiments.fig04_stabilization_time import sweep, table_from_sweep


def stabilization_sweep(sweep_cache, scale):
    key = ("stabilization", scale)
    if key not in sweep_cache:
        sweep_cache[key] = sweep(scale)
    return sweep_cache[key]


def test_fig04_stabilization_time(benchmark, scale, sweep_cache, report):
    results = run_once(benchmark, lambda: stabilization_sweep(sweep_cache, scale))
    table = table_from_sweep(results, metric="time")
    report("fig04_stabilization_time", table)

    def time_rtts(family, gamma):
        return results[(family, gamma)].stabilization.time_rtts

    gmax = max(g for (_, g) in results)
    # Self-clocked algorithms stabilize within tens of RTTs even at the
    # slowest setting; the rate-based ones take hundreds.
    assert time_rtts("TCP(1/g)", gmax) < 60
    assert time_rtts("SQRT(1/g)", gmax) < 60
    assert time_rtts("TFRC(g)", gmax) > 100
    assert time_rtts("RAP(1/g)", gmax) > 100
    # The paper's fix: TFRC with self-clocking behaves like the window-based
    # algorithms again.
    assert time_rtts("TFRC(g)+SC", gmax) < time_rtts("TFRC(g)", gmax) / 3
    # At the TCP-like end of the sweep everyone stabilizes promptly.
    gmin = min(g for (_, g) in results)
    for family in ("TCP(1/g)", "SQRT(1/g)", "TFRC(g)", "RAP(1/g)"):
        assert time_rtts(family, gmin) < 100
