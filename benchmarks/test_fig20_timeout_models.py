"""Benchmark: regenerate Figure 20 (throughput models with/without timeouts)."""

import math

from conftest import run_once

from repro.experiments import fig20_timeout_models


def test_fig20_timeout_models(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig20_timeout_models.run(scale, executor=executor, cache=result_cache))
    report("fig20_timeout_models", table)

    for p, pure, with_to, reno in table.rows:
        if p <= 1 / 3:
            # Below one packet/RTT the pure model applies and upper-bounds
            # the Reno model (timeouts only reduce throughput).
            assert not math.isnan(pure)
            assert pure >= reno
        else:
            assert math.isnan(pure)
        if 0.5 <= p <= 0.8:
            # Appendix A: AIMD-with-timeouts upper-bounds Reno at high loss.
            assert with_to >= reno
    # Worked example from the appendix: p = 1/2 -> 2/3 packets per RTT.
    by_p = {p: with_to for p, _, with_to, _ in table.rows}
    assert math.isclose(by_p[0.5], 2.0 / 3.0, rel_tol=1e-9)


def test_fig20_simulated_validation(benchmark, scale, report):
    """Appendix A cross-check: drive this library's real TCP through
    Bernoulli loss and verify it lands in the predicted analytic band."""
    table = run_once(benchmark, lambda: fig20_timeout_models.run_simulated(scale))
    report("fig20_simulated_validation", table)

    for p, measured, reno_lower, upper in table.rows:
        # The simulated flow tracks Reno from above (SACK-less NewReno with
        # per-packet ACKs is mildly more efficient than the closed form).
        assert measured > 0.75 * reno_lower
        if upper > reno_lower:
            # Where the appendix band is meaningful, stay at or below the
            # AIMD-with-timeouts upper bound.
            assert measured <= upper * 1.1
    # The response is strictly decreasing in p.
    rates = table.column("measured_pkts_per_rtt")
    assert rates == sorted(rates, reverse=True)
