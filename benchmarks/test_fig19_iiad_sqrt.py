"""Benchmark: regenerate Figure 19 (IIAD vs SQRT, mild bursty losses)."""

from conftest import run_once

from repro.experiments import fig19_iiad_sqrt


def test_fig19_iiad_sqrt(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig19_iiad_sqrt.run(scale, executor=executor, cache=result_cache))
    report("fig19_iiad_sqrt", table)

    rows = {
        name: (thpt, cov, ratio)
        for name, thpt, cov, ratio, _, _ in table.rows
    }
    iiad_thpt, _, iiad_ratio = rows["IIAD"]
    sqrt_thpt, _, sqrt_ratio = rows["SQRT(0.5)"]
    # Paper: IIAD buys smoothness at the cost of throughput relative to
    # SQRT.  Smoothness is judged by the paper's own metric — the worst
    # consecutive-bin rate ratio (closer to 1 = smoother): IIAD's additive
    # decrease makes its worst single-step change gentler.
    assert iiad_ratio > sqrt_ratio
    assert iiad_thpt < sqrt_thpt
