"""Benchmark: regenerate Figure 7 (TCP vs TFRC, oscillating bandwidth)."""

from conftest import run_once

from repro.experiments import fig07_tcp_vs_tfrc


def test_fig07_tcp_vs_tfrc(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig07_tcp_vs_tfrc.run(scale, executor=executor, cache=result_cache))
    report("fig07_tcp_vs_tfrc", table)

    tcp_means = table.column("tcp_mean_share")
    tfrc_means = table.column("other_mean_share")
    # Paper: under oscillating bandwidth TCP out-competes TFRC overall, and
    # TFRC never wins in the long term.
    assert sum(tcp_means) > sum(tfrc_means)
    assert all(tcp >= 0.9 * tfrc for tcp, tfrc in zip(tcp_means, tfrc_means))
    # Both classes of flows stay alive at every oscillation period.
    assert min(tfrc_means) > 0.1
