"""Benchmark: regenerate Figure 15 (drop rates for the Figure 14 runs)."""

from conftest import run_once

from test_fig14_oscillation_utilization import oscillation_sweep
from repro.experiments.oscillation_utilization import table_from_sweep


def test_fig15_oscillation_droprate(benchmark, scale, sweep_cache, report):
    results = run_once(
        benchmark, lambda: oscillation_sweep(sweep_cache, scale, 2.0 / 3.0)
    )
    table = table_from_sweep(
        results,
        metric="drop_rate",
        title="Figure 15: drop rate vs CBR ON/OFF time (3:1 oscillation)",
        notes="",
    )
    report("fig15_oscillation_droprate", table)

    rates = table.column("value")
    assert all(0.0 <= r < 0.5 for r in rates)
    # Congestion exists in every run of this overloaded scenario.
    assert min(rates) > 0.001
