"""Benchmark: regenerate Figure 9 (TCP vs SQRT(1/2), oscillating bandwidth)."""

from conftest import run_once

from repro.experiments import fig09_tcp_vs_sqrt


def test_fig09_tcp_vs_sqrt(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig09_tcp_vs_sqrt.run(scale, executor=executor, cache=result_cache))
    report("fig09_tcp_vs_sqrt", table)

    tcp_means = table.column("tcp_mean_share")
    sqrt_means = table.column("other_mean_share")
    assert sum(tcp_means) > 0.9 * sum(sqrt_means)
    assert min(sqrt_means) > 0.2
    # Aggregate utilization stays reasonable across periods.
    assert max(table.column("utilization")) > 0.7
