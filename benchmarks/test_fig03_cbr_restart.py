"""Benchmark: regenerate Figure 3 (drop rate after a CBR restart)."""

from conftest import run_once

from repro.experiments import fig03_cbr_restart


def test_fig03_cbr_restart(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig03_cbr_restart.run(scale, executor=executor, cache=result_cache))
    report("fig03_cbr_restart", table)

    protocols = set(table.column("protocol"))
    assert len(protocols) == 4
    rates = table.column("loss_rate")
    assert all(0.0 <= r <= 1.0 for r in rates)
    # The restart produces a real congestion transient for every protocol.
    assert max(rates) > 0.05

    from repro.experiments.runner import pick_config
    from repro.experiments.scenarios import CbrRestartConfig

    cfg = pick_config(CbrRestartConfig, scale)

    def post_restart_mean(name: str, window_s: float = 15.0) -> float:
        rows = table.rows_where("protocol", name)
        spike = [
            loss
            for (_, t, loss) in rows
            if cfg.cbr_restart <= t < cfg.cbr_restart + window_s
        ]
        return sum(spike) / len(spike)

    # Shape: TFRC(256) without self-clocking keeps the network in overload
    # far longer than TCP or TFRC+SC after the restart.
    assert post_restart_mean("TFRC(256)") > 1.3 * post_restart_mean("TCP(0.5)")
    assert post_restart_mean("TFRC(256)") > 1.5 * post_restart_mean("TFRC(256)+SC")
