"""Benchmark: regenerate Figure 16 (utilization under 10:1 oscillation)."""

from conftest import run_once

from repro.experiments.oscillation_utilization import sweep, table_from_sweep


def test_fig16_extreme_oscillation(benchmark, scale, sweep_cache, report):
    key = ("oscillation", scale, 0.9)

    def work():
        if key not in sweep_cache:
            sweep_cache[key] = sweep(scale, cbr_fraction=0.9)
        return sweep_cache[key]

    results = run_once(benchmark, work)
    table = table_from_sweep(
        results,
        metric="utilization",
        title="Figure 16: utilization vs CBR ON/OFF time (10:1 oscillation)",
        notes="",
    )
    report("fig16_extreme_oscillation", table)

    protocols = sorted({name for name, _ in results})
    on_times = sorted({t for _, t in results})
    # Paper: with 10:1 oscillations none of the mechanisms is particularly
    # successful — every protocol leaves bandwidth on the table somewhere.
    for protocol in protocols:
        worst = min(results[(protocol, t)].utilization for t in on_times)
        assert worst < 0.9
    # TFRC's worst point is no better than TCP's worst point (the paper
    # finds TFRC particularly bad at some frequencies).
    worst_of = {
        p: min(results[(p, t)].utilization for t in on_times) for p in protocols
    }
    assert worst_of["TFRC(6)"] <= worst_of["TCP(0.5)"] + 0.05
