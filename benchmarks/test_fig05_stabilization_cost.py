"""Benchmark: regenerate Figure 5 (stabilization cost vs gamma).

Shares the Figure 4 sweep via the session cache; when Figure 4's benchmark
ran first this one only re-projects the metric.
"""

from conftest import run_once

from test_fig04_stabilization_time import stabilization_sweep
from repro.experiments.fig04_stabilization_time import table_from_sweep


def test_fig05_stabilization_cost(benchmark, scale, sweep_cache, report):
    results = run_once(benchmark, lambda: stabilization_sweep(sweep_cache, scale))
    table = table_from_sweep(results, metric="cost")
    report("fig05_stabilization_cost", table)

    def cost(family, gamma):
        return results[(family, gamma)].stabilization.cost

    gmax = max(g for (_, g) in results)
    self_clocked_worst = max(cost("TCP(1/g)", gmax), cost("SQRT(1/g)", gmax))
    # Paper: rate-based algorithms at gamma=256 are one to two orders of
    # magnitude more costly than the slowest self-clocked ones.
    assert cost("TFRC(g)", gmax) > 10 * self_clocked_worst
    assert cost("RAP(1/g)", gmax) > 10 * self_clocked_worst
    # Self-clocking repairs TFRC's cost by a large factor.
    assert cost("TFRC(g)+SC", gmax) < cost("TFRC(g)", gmax) / 5
    # Proposed-range parameters (small gamma) have acceptably low cost for
    # every family.
    gmin = min(g for (_, g) in results)
    for family in ("TCP(1/g)", "SQRT(1/g)", "TFRC(g)", "RAP(1/g)", "TFRC(g)+SC"):
        assert cost(family, gmin) < cost("TFRC(g)", gmax)
