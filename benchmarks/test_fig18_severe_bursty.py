"""Benchmark: regenerate Figure 18 (severe bursty losses punish TFRC)."""

from conftest import run_once

from repro.experiments import fig18_severe_bursty


def test_fig18_severe_bursty(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig18_severe_bursty.run(scale, executor=executor, cache=result_cache))
    report("fig18_severe_bursty", table)

    rows = {name: (thpt, cov, ratio) for name, thpt, cov, ratio, _, _ in table.rows}
    tfrc_thpt, tfrc_cov, _ = rows["TFRC(6)"]
    tcp8_thpt, _, _ = rows["TCP(0.125)"]
    tcp_thpt, _, _ = rows["TCP(0.5)"]
    # Paper: the crafted pattern makes TFRC lose to TCP(1/8) and even to
    # TCP(1/2) in throughput...
    assert tfrc_thpt < tcp_thpt
    assert tfrc_thpt < 1.15 * tcp8_thpt
    # ...and destroys the smoothness that justified it (compare the mild
    # pattern, where TFRC's cov is ~0.1).
    assert tfrc_cov > 0.4
