"""Benchmark: queue dynamics by sender type and AQM (extension)."""

from conftest import run_once

from repro.experiments import ext_queue_dynamics


def test_ext_queue_dynamics(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: ext_queue_dynamics.run(scale, executor=executor, cache=result_cache))
    report("ext_queue_dynamics", table)

    rows = {
        (proto, aqm): (mean_q, cov, loss)
        for proto, aqm, mean_q, cov, loss in table.rows
    }
    protocols = sorted({proto for proto, _ in rows})
    # RED holds a (much) lower standing queue than same-depth DropTail.
    for proto in protocols:
        assert rows[(proto, "red")][0] < rows[(proto, "droptail")][0]
    # Within the window-based AIMD family, the gentler decrease oscillates
    # the RED queue less.
    assert rows[("TCP(0.125)", "red")][1] < rows[("TCP(0.5)", "red")][1]
    # All loss rates are sane for a congested bottleneck.
    for (_, _), (_, _, loss) in rows.items():
        assert 0.0 <= loss < 0.2
