"""Benchmark: regenerate Figure 8 (TCP vs TCP(1/8), oscillating bandwidth)."""

from conftest import run_once

from repro.experiments import fig08_tcp_vs_tcp8


def test_fig08_tcp_vs_tcp8(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig08_tcp_vs_tcp8.run(scale, executor=executor, cache=result_cache))
    report("fig08_tcp_vs_tcp8", table)

    tcp_means = table.column("tcp_mean_share")
    slow_means = table.column("other_mean_share")
    # The paper's deployability claims: the two AIMD variants share the
    # oscillating link without either mistreating the other — every mean
    # share stays within a moderate band of equitable.  (The paper found
    # TCP modestly ahead; in this substrate TCP(1/8) is modestly ahead
    # instead — without SACK, the ON-transition loss bursts cost the
    # sharper-decrease sender more in recovery.  See EXPERIMENTS.md.)
    assert min(tcp_means) > 0.35
    assert min(slow_means) > 0.35
    for tcp_share, slow_share in zip(tcp_means, slow_means):
        ratio = tcp_share / slow_share
        assert 0.5 < ratio < 2.0
