"""Benchmark: regenerate Figure 10 (0.1-fair convergence for TCP(b))."""

from conftest import run_once

from repro.experiments import fig10_convergence_tcp


def test_fig10_convergence_tcp(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig10_convergence_tcp.run(scale, executor=executor, cache=result_cache))
    report("fig10_convergence_tcp", table)

    bs = table.column("b")
    times = table.column("convergence_s")
    by_b = dict(zip(bs, times))
    assert all(t > 0 for t in times)
    # Paper: b >= ~0.2 converges promptly; very small b takes far longer.
    fast_region = [t for b, t in by_b.items() if b >= 0.2]
    slowest_b = min(bs)
    assert max(fast_region) < by_b[slowest_b] * 3
    assert by_b[slowest_b] > 4 * min(fast_region)
