"""Benchmark: regenerate Figure 17 (mild bursty losses: TFRC vs TCP(1/8))."""

from conftest import run_once

from repro.experiments import fig17_mild_bursty


def test_fig17_mild_bursty(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: fig17_mild_bursty.run(scale, executor=executor, cache=result_cache))
    report("fig17_mild_bursty", table)

    rows = {name: (thpt, cov, ratio) for name, thpt, cov, ratio, _, _ in table.rows}
    tfrc_thpt, tfrc_cov, tfrc_ratio = rows["TFRC(6)"]
    tcp_thpt, tcp_cov, tcp_ratio = rows["TCP(0.125)"]
    # Paper: the mild pattern fits TFRC's averaging — it is smoother than
    # TCP(1/8) while achieving comparable (paper: slightly higher) goodput.
    assert tfrc_cov < tcp_cov
    assert tfrc_ratio >= tcp_ratio
    assert tfrc_thpt > 0.5 * tcp_thpt
