"""Benchmark: the Section 3 responsiveness metric, measured directly."""

import math

from conftest import run_once

from repro.experiments import ext_responsiveness


def test_ext_responsiveness(benchmark, scale, report, executor, result_cache):
    table = run_once(benchmark, lambda: ext_responsiveness.run(scale, executor=executor, cache=result_cache))
    report("ext_responsiveness", table)

    measured = dict(zip(table.column("protocol"), table.column("measured_rtts")))
    # Ordering: TCP is the most responsive; TFRC(6) takes several RTTs
    # (paper: 4-6 plus our detection latency); TFRC(256) is effectively
    # unresponsive on this timescale.
    assert measured["TCP(1/2)"] <= 8
    assert measured["TCP(1/2)"] <= measured["TFRC(6)"]
    assert 4 <= measured["TFRC(6)"] <= 20
    tfrc256 = measured["TFRC(256)"]
    assert math.isnan(tfrc256) or tfrc256 > 50


def test_ext_aggressiveness(benchmark, scale, report):
    """AIMD's measured per-RTT increase equals the analytic a(b); TFRC's is
    far smaller and grows with history discounting."""
    table = run_once(benchmark, lambda: ext_responsiveness.run_aggressiveness(scale))
    report("ext_aggressiveness", table)

    rows = {name: (measured, analytic) for name, measured, analytic in table.rows}
    for name in ("TCP(1/2)", "TCP(1/8)"):
        measured, analytic = rows[name]
        assert measured == pytest_approx(analytic, rel=0.2)
    tfrc_plain = rows["TFRC(6) no-disc"][0]
    tfrc_disc = rows["TFRC(6) disc"][0]
    assert tfrc_plain < rows["TCP(1/2)"][0]
    assert tfrc_disc > tfrc_plain


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
