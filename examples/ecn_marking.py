#!/usr/bin/env python3
"""ECN vs drop-based congestion signalling.

The paper's transient-fairness analysis (Section 4.2.2) is phrased "for
simplicity of discussion assume that this is an environment with Explicit
Congestion Notification": congestion becomes a *mark*, not a loss, so the
window dynamics are pure AIMD with no retransmissions or timeouts.

This example runs the same two-flow workload twice — once with a dropping
RED bottleneck and once with a marking one — and shows what ECN buys:
equal goodput with (near-)zero loss and retransmission activity.
"""

from repro.cc import establish, new_tcp_flow
from repro.net import Dumbbell
from repro.sim import RngRegistry, Simulator
from repro.viz import bar_chart


def run(ecn: bool) -> dict[str, float]:
    sim = Simulator()
    net = Dumbbell(
        sim, bandwidth_bps=2e6, rtt_s=0.05, rng=RngRegistry(7), ecn_marking=ecn
    )
    flows = []
    senders = []
    for index in range(2):
        sender, sink = new_tcp_flow(sim, ecn=ecn)
        flows.append(establish(net, sender, sink))
        senders.append(sender)
        sender.start_at(0.1 * index)
    sim.run(until=60.0)
    window = (20.0, 60.0)
    return {
        "goodput_mbps": sum(
            net.accountant.throughput_bps(f, *window) for f in flows
        )
        / 1e6,
        "loss_rate_pct": 100.0 * (net.monitor.loss_rate(*window) or 0.0),
        "mark_rate_pct": 100.0 * (net.monitor.mark_rate(*window) or 0.0)
        if ecn
        else 0.0,
        "retransmission_events": float(
            sum(s.fast_retransmits + s.timeouts for s in senders)
        ),
        "ecn_reactions": float(sum(s.ecn_reactions for s in senders)),
    }


def main() -> None:
    drop = run(ecn=False)
    mark = run(ecn=True)
    print("Two TCP flows on a 2 Mbps RED bottleneck, 40 s measured:\n")
    print(f"{'metric':<24} {'drop-based':>12} {'ECN-marked':>12}")
    for key in drop:
        print(f"{key:<24} {drop[key]:>12.2f} {mark[key]:>12.2f}")
    print()
    print(
        bar_chart(
            {
                "drop: loss %": drop["loss_rate_pct"],
                "ecn:  loss %": mark["loss_rate_pct"],
                "ecn:  mark %": mark["mark_rate_pct"],
            },
            title="Congestion signals per arriving packet",
        )
    )
    print()
    print("Same goodput, but ECN converts packet losses into marks —")
    print("the loss-free regime the paper's convergence analysis assumes.")


if __name__ == "__main__":
    main()
