#!/usr/bin/env python3
"""Quickstart: two congestion-controlled flows sharing a bottleneck.

Builds the paper's dumbbell (RED queue, 50 ms RTT), runs one standard TCP
flow against one TFRC flow for a simulated minute, and prints throughput,
fairness and link statistics.  Runs in a few seconds.
"""

from repro.cc import establish, new_tcp_flow, new_tfrc_flow
from repro.metrics import jain_index
from repro.net import Dumbbell
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    net = Dumbbell(sim, bandwidth_bps=2e6, rtt_s=0.05)

    tcp_sender, tcp_sink = new_tcp_flow(sim)
    tcp_flow = establish(net, tcp_sender, tcp_sink)
    tfrc_sender, tfrc_receiver = new_tfrc_flow(sim, n_intervals=6)
    tfrc_flow = establish(net, tfrc_sender, tfrc_receiver)

    tcp_sender.start_at(0.0)
    tfrc_sender.start_at(0.1)
    sim.run(until=60.0)

    measure = (20.0, 60.0)  # skip start-up transients
    tcp_bps = net.accountant.throughput_bps(tcp_flow, *measure)
    tfrc_bps = net.accountant.throughput_bps(tfrc_flow, *measure)

    print("Two flows on a 2 Mbps / 50 ms RTT dumbbell, measured over 40 s:")
    print(f"  TCP  throughput: {tcp_bps / 1e6:6.3f} Mbps")
    print(f"  TFRC throughput: {tfrc_bps / 1e6:6.3f} Mbps")
    print(f"  Jain fairness index: {jain_index([tcp_bps, tfrc_bps]):.3f}")
    print(f"  link utilization:    {net.monitor.utilization(*measure):.3f}")
    print(f"  bottleneck loss rate: {net.monitor.loss_rate(*measure):.4f}")
    print(f"  TFRC loss-event rate estimate: {tfrc_sender.p:.4f}")


if __name__ == "__main__":
    main()
