#!/usr/bin/env python3
"""Fairness study: slowly-responsive transports in a dynamic network.

Reproduces the paper's two fairness findings in one script:

1. *Long-term*: under square-wave available bandwidth, TCP out-competes a
   TCP-compatible SlowCC — the price of smoothness (Section 4.2.1).
2. *Transient*: two identical TCP(b) flows starting from a skewed
   allocation take dramatically longer to converge as b shrinks, matching
   the analytical log_{1-bp}(delta) ACK count (Section 4.2.2).
"""

from repro.analysis import acks_to_fairness
from repro.experiments.protocols import tcp, tcp_b, tfrc
from repro.experiments.scenarios import (
    ConvergenceConfig,
    OscillationConfig,
    run_convergence,
    run_oscillation,
)


def long_term() -> None:
    cfg = OscillationConfig.fast()
    print("Long-term fairness: 3 TCP vs 3 TFRC(6) flows, 3:1 square-wave CBR")
    print(f"{'period (s)':>10} {'TCP share':>10} {'TFRC share':>11}")
    for period in (0.4, 2.0, 8.0):
        result = run_oscillation(tcp(2), tfrc(6), period, cfg)
        print(f"{period:10.1f} {result.mean_a:10.2f} {result.mean_b:11.2f}")
    print("(1.0 = the flow's equitable share of the mean available bandwidth)\n")


def transient() -> None:
    cfg = ConvergenceConfig.fast()
    print("Transient fairness: 0.1-fair convergence of two TCP(b) flows")
    print(f"{'b':>8} {'simulated (s)':>14} {'analytic E[ACKs] (p=0.1)':>26}")
    for b in (0.5, 0.125, 1 / 64):
        seconds = run_convergence(tcp_b(b), cfg)
        acks = acks_to_fairness(b, p=0.1, delta=0.1)
        print(f"{b:8.4f} {seconds:14.1f} {acks:26.0f}")
    print("(smaller b = slower response = longer convergence, both ways)\n")


def main() -> None:
    long_term()
    transient()


if __name__ == "__main__":
    main()
