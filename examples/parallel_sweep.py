#!/usr/bin/env python3
"""Parallel, cached figure regeneration with the declarative job API.

Every figure module describes its work as ``jobs(scale)`` — pure,
picklable simulation points — and formats results with
``reduce(results)``.  That split lets one executor fan the work out over
a process pool and a content-addressed cache replay previous results,
without changing a single number in the output table.

This example regenerates Figure 10 (convergence time for two TCP(b)
flows) three ways and shows they agree exactly:

1. serially, cold;
2. in parallel across worker processes, cold (byte-identical table);
3. serially again against the warm cache (zero simulations run).

Runs in well under a minute at the fast scale.
"""

import tempfile

from repro.experiments import fig10_convergence_tcp as fig10
from repro.experiments.cache import ResultCache
from repro.experiments.executor import ParallelExecutor, SerialExecutor


def main() -> None:
    jobs = fig10.jobs("fast", bs=[0.5, 0.25, 0.125])
    print(f"Figure 10 sweep: {len(jobs)} jobs "
          f"(one per (b, seed) pair, each with a stable content hash)")

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        cache = ResultCache(cache_dir)

        serial = SerialExecutor()
        table_serial = fig10.reduce(serial.map(jobs, cache=None))
        print("\n--- serial, no cache ---")
        print(table_serial.format())

        parallel = ParallelExecutor(workers=2)
        table_parallel = fig10.reduce(parallel.map(jobs, cache))
        report = parallel.last_report
        print("\n--- parallel (2 workers), populating the cache ---")
        print(f"computed {report.computed} of {report.jobs} jobs in parallel")

        warm = fig10.reduce(serial.map(jobs, cache))
        report = serial.last_report
        print("\n--- serial again, warm cache ---")
        print(f"cache hits: {report.cache_hits}/{report.jobs} "
              f"(computed {report.computed})")

        assert table_parallel.format() == table_serial.format()
        assert warm.format() == table_serial.format()
        assert report.computed == 0
        print("\nparallel and cached tables are byte-identical to serial")


if __name__ == "__main__":
    main()
