#!/usr/bin/env python3
"""Deployment-safety scenario: does a SlowCC yield to a flash crowd?

Section 4.1's question in miniature: a burst of short web transfers (a
flash crowd) arrives at a bottleneck occupied by long-lived flows.  A safe
transport lets the crowd through quickly; an unsafe one keeps the link in
overload.  We compare a TCP background against the extreme TFRC(256), with
and without the paper's self-clocking (conservative_) option, and print how
much of the link the crowd obtains while it is active.
"""

from repro.experiments.protocols import tcp, tfrc
from repro.experiments.scenarios import FlashCrowdConfig, run_flash_crowd


def main() -> None:
    cfg = FlashCrowdConfig.fast()
    print(
        f"Flash crowd: {cfg.crowd_rate_per_s:g} short TCP transfers/s for "
        f"{cfg.crowd_duration_s:g} s at t={cfg.crowd_start:g} s, against "
        f"{cfg.n_background} long-lived background flows.\n"
    )
    print(f"{'background':<14} {'crowd share':>12} {'crowd done':>11}")
    for protocol in (tcp(2), tfrc(256), tfrc(256, conservative=True)):
        result = run_flash_crowd(protocol, cfg)
        print(
            f"{result.protocol:<14} {result.crowd_share_during:12.2f} "
            f"{result.crowd_completed:6d}/{result.crowd_spawned}"
        )
    print()
    print("The crowd's slow-starting flows grab bandwidth against any")
    print("self-clocked background; packet conservation is what makes even")
    print("TFRC(256) safe to deploy.")


if __name__ == "__main__":
    main()
