#!/usr/bin/env python3
"""Streaming-media scenario: why an application would pick a SlowCC.

The paper's motivation: best-effort streaming audio/video wants a *smooth*
sending rate, which TCP's halving does not provide.  This example runs the
same streaming workload — one long-lived flow sharing a bottleneck with
four TCP flows — once for each candidate transport (TCP, TCP(1/8), SQRT,
TFRC(6), TEAR) and reports throughput and the smoothness statistics a
streaming application cares about.

Expected outcome (the paper's trade-off): the slowly-responsive transports
deliver a visibly smoother rate at a similar long-term share.
"""

from repro.cc import establish, new_tcp_flow
from repro.experiments.protocols import Protocol, sqrt, tcp, tear, tfrc
from repro.metrics import rate_bins, smoothness
from repro.net import Dumbbell
from repro.sim import Simulator
from repro.traffic import add_flows


def run_candidate(protocol: Protocol) -> tuple[float, float, float]:
    """Returns (throughput_mbps, cov, worst_consecutive_ratio)."""
    sim = Simulator()
    net = Dumbbell(sim, bandwidth_bps=4e6, rtt_s=0.05)
    sender, receiver = protocol.make(sim)
    flow = establish(net, sender, receiver)
    add_flows(sim, net, lambda s: new_tcp_flow(s), count=4, start_jitter_s=1.0)
    sender.start_at(0.0)
    sim.run(until=90.0)
    bins = rate_bins(net.accountant, flow, bin_s=0.25, start=30.0, end=90.0)
    stats = smoothness(bins)
    throughput = net.accountant.throughput_bps(flow, 30.0, 90.0) / 1e6
    return throughput, stats.cov, stats.min_ratio


def main() -> None:
    candidates = [tcp(2), tcp(8), sqrt(2), tfrc(6), tear()]
    print("Streaming flow vs 4 TCP flows on a 4 Mbps bottleneck (60 s):")
    print(f"{'transport':<12} {'Mbps':>6} {'rate CoV':>9} {'worst ratio':>12}")
    for protocol in candidates:
        throughput, cov, ratio = run_candidate(protocol)
        print(f"{protocol.name:<12} {throughput:6.3f} {cov:9.3f} {ratio:12.2f}")
    print()
    print("Lower CoV / higher worst-ratio = smoother playback rate.")
    print("The SlowCC transports trade responsiveness for exactly that.")


if __name__ == "__main__":
    main()
