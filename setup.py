"""Legacy setup shim.

The execution environment is offline with setuptools 65 and no ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot build
their metadata.  ``python setup.py develop`` provides the same editable
install without needing ``wheel``.
"""

from setuptools import setup

setup()
