"""Minimal, dependency-free timing utilities for the benchmark harness.

Everything here measures with :func:`time.perf_counter`, the monotonic
high-resolution clock — never ``time.time``, whose steps under NTP
adjustment would corrupt small measurements.  The core primitive is
*min-of-k*: run a workload ``k`` times and keep the fastest run, because
the minimum is the best available estimate of the true cost of the code
(everything above it is scheduler noise, cache misses from other
processes, or GC pauses — all additive, never subtractive).

simlint note: ``repro.perf`` is the one domain package allowlisted for
D002 wall-clock reads.  Benchmark timing is wall-clock *by definition*
and none of these readings can reach a figure table — the determinism
bar applies to simulated time, not to how long simulating it took.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["TimingResult", "min_of_k"]


@dataclass(frozen=True)
class TimingResult:
    """Outcome of a min-of-k measurement of one workload.

    ``ops`` is the number of elementary operations one run performs
    (events fired, probe increments, packets forwarded...), so derived
    rates compare across workloads of different sizes.
    """

    runs_s: tuple[float, ...]  # every run's wall seconds, in run order
    ops: int  # elementary operations per run

    @property
    def k(self) -> int:
        return len(self.runs_s)

    @property
    def best_s(self) -> float:
        """Fastest run — the canonical min-of-k estimate."""
        return min(self.runs_s)

    @property
    def per_op_ns(self) -> float:
        """Nanoseconds per elementary operation in the best run."""
        if self.ops <= 0:
            return float("nan")
        return self.best_s * 1e9 / self.ops

    @property
    def rate(self) -> float:
        """Operations per second in the best run."""
        if self.best_s <= 0:
            return float("inf")
        return self.ops / self.best_s


def min_of_k(
    workload: Callable[..., object],
    *,
    k: int = 5,
    ops: int = 1,
    setup: Optional[Callable[[], object]] = None,
) -> TimingResult:
    """Time ``workload`` ``k`` times and keep every run (best = min).

    ``setup``, when given, runs *outside* the timed region before each
    repetition and its return value is passed to ``workload`` — the
    standard shape for workloads that consume fresh state (a new
    simulator, an empty probe) on every run.
    """
    if k < 1:
        raise ValueError("min_of_k needs at least one run")
    if ops < 1:
        raise ValueError("ops must be a positive operation count")
    runs: list[float] = []
    perf_counter = time.perf_counter
    for _ in range(k):
        if setup is not None:
            state = setup()
            start = perf_counter()
            workload(state)
        else:
            start = perf_counter()
            workload()
        runs.append(perf_counter() - start)
    return TimingResult(runs_s=tuple(runs), ops=ops)


def summarize(name: str, group: str, unit: str, timing: TimingResult) -> dict:
    """One benchmark's JSON entry (schema: ``repro.perf.schema``)."""
    return {
        "name": name,
        "group": group,
        "unit": unit,
        "ops": timing.ops,
        "repeats": timing.k,
        "best_s": timing.best_s,
        "per_op_ns": timing.per_op_ns,
        "rate": timing.rate,
    }


def attach_baseline(entry: dict, baseline: TimingResult) -> dict:
    """Attach a reference-implementation timing and the speedup ratio."""
    entry["baseline"] = {
        "best_s": baseline.best_s,
        "per_op_ns": baseline.per_op_ns,
        "rate": baseline.rate,
    }
    entry["speedup"] = (
        baseline.best_s / entry["best_s"] if entry["best_s"] > 0 else float("inf")
    )
    return entry


__all__ += ["summarize", "attach_baseline"]
