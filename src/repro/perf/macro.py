"""Macrobenchmarks: whole-simulation throughput in packets per second.

The headline number of ``BENCH_kernel.json`` is ``packet_forwarding``: a
fig04-style dumbbell (CBR at half the bottleneck rate plus a handful of
TCP flows, RED at the bottleneck, bidirectional ack traffic) simulated
for a fixed span of virtual time on two stacks:

* the **live stack** — the current kernel, link, node, queue and
  telemetry probes;
* the **reference stack** — the frozen pre-overhaul snapshot of those
  same classes from :mod:`repro.perf.reference` (object-keyed heap,
  an Event allocation per schedule, no idle-link bypass, tail-read
  probes).

Both stacks are wired by the *same* topology-building code with the
classes injected, and the congestion-control agents, RED estimator and
packet model are shared, so the two runs execute the identical event
sequence — asserted by comparing forwarded-packet counts — and the
wall-clock ratio is a pure measurement of the overhaul.

``figure_benchmarks`` times the first job of a few representative
figures end-to-end through :func:`repro.experiments.jobs.execute_job`
(no cache, no pool) and becomes ``BENCH_figures.json``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.perf import reference as ref
from repro.perf.timing import attach_baseline, min_of_k, summarize
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__all__ = ["packet_forwarding_benchmark", "figure_benchmarks"]

#: fig04-style dumbbell, scaled so one repetition stays in benchmark
#: territory (seconds, not minutes) on a single core.
_MACRO = {
    "bandwidth_bps": 5e6,
    "rtt_s": 0.05,
    "n_flows": 6,
    "cbr_fraction": 0.5,
    "seed": 1,
    "packet_size": 1000,
    "access_factor": 20.0,
}


@dataclass(frozen=True)
class _Stack:
    """The six classes a simulation stack is made of."""

    simulator: type
    link: type
    node: type
    droptail: type
    counter: type
    series: type


def _live_stack() -> _Stack:
    from repro.net.link import Link
    from repro.net.node import Node
    from repro.net.queue import DropTailQueue
    from repro.telemetry.probes import CounterProbe
    from repro.telemetry.series import TimeSeries

    return _Stack(Simulator, Link, Node, DropTailQueue, CounterProbe, TimeSeries)


def _reference_stack() -> _Stack:
    return _Stack(
        ref.ReferenceSimulator,
        ref.ReferenceLink,
        ref.ReferenceNode,
        ref.ReferenceDropTailQueue,
        ref.ReferenceCounterProbe,
        ref.ReferenceTimeSeries,
    )


class _MacroAccountant:
    """Per-flow delivered-bytes accounting, series class injected."""

    def __init__(self, sim, series_cls):
        self.sim = sim
        self._series_cls = series_cls
        self._flows: dict = {}

    def on_deliver(self, packet) -> None:
        series = self._flows.get(packet.flow_id)
        if series is None:
            series = self._series_cls(f"flow{packet.flow_id}")
            self._flows[packet.flow_id] = series
        values = series.values
        total = (values[-1] if len(values) else 0.0) + packet.size
        series.append(self.sim.now, total)


class _MacroNet:
    """A dumbbell wired by hand from an injected class stack.

    Mirrors :class:`repro.net.dumbbell.Dumbbell` — same addresses, link
    rates, delays, RED configuration and RNG streams — but takes every
    forwarding/telemetry class as a parameter so the identical wiring
    runs on the live and the frozen reference stacks.  Implements the
    ``add_host_pair`` / ``new_flow_id`` / ``accountant`` surface that
    :func:`repro.cc.base.establish` needs.
    """

    def __init__(self, sim, stack: _Stack, bandwidth_bps, rtt_s, seed):
        from repro.net.queue import QueueProbes
        from repro.net.red import red_for_bdp

        self.sim = sim
        self._stack = stack
        self.bandwidth_bps = bandwidth_bps
        self.rtt_s = rtt_s
        self.rng = RngRegistry(seed)
        self._next_address = 0
        self._next_flow_id = 0

        self.router_left = self._new_node("routerL")
        self.router_right = self._new_node("routerR")

        packet_size = _MACRO["packet_size"]
        self._access_delay = rtt_s / 8.0
        bottleneck_delay = rtt_s / 4.0
        self._access_bw = _MACRO["access_factor"] * bandwidth_bps

        def red_queue():
            return red_for_bdp(
                bandwidth_bps,
                rtt_s,
                packet_size=packet_size,
                rng=self.rng.stream("red"),
            )

        self.bottleneck = stack.link(
            sim, bandwidth_bps, bottleneck_delay, red_queue(), name="bottleneck"
        )
        self.bottleneck.connect(self.router_right.receive)
        self.reverse_bottleneck = stack.link(
            sim, bandwidth_bps, bottleneck_delay, red_queue(), name="bottleneck_rev"
        )
        self.reverse_bottleneck.connect(self.router_left.receive)

        # The measurement surface a LinkMonitor would provide, with the
        # probe classes injected: arrival/drop/mark counters on both
        # bottleneck queues and a departed-bytes series tap per link.
        for link in (self.bottleneck, self.reverse_bottleneck):
            link.queue.telemetry = QueueProbes(
                arrivals=stack.counter("arrivals"),
                drops=stack.counter("drops"),
                marks=stack.counter("marks"),
            )
            self._tap_departures(link)
        self.accountant = _MacroAccountant(sim, stack.series)

    def _tap_departures(self, link) -> None:
        series = self._stack.series(f"{link.name}.departed_bytes")
        sim = self.sim
        state = [0]

        def on_departure(packet) -> None:
            state[0] += packet.size
            series.append(sim.now, state[0])

        link.add_tap(on_departure)

    def _new_node(self, name: str):
        node = self._stack.node(self.sim, self._next_address, name)
        self._next_address += 1
        return node

    def _access_link(self, name: str):
        return self._stack.link(
            self.sim,
            self._access_bw,
            self._access_delay,
            self._stack.droptail(100_000),
            name=name,
        )

    def _attach_host(self, node, router) -> None:
        uplink = self._access_link(f"{node.name}->{router.name}")
        uplink.connect(router.receive)
        node.set_default_route(uplink)
        downlink = self._access_link(f"{router.name}->{node.name}")
        downlink.connect(node.receive)
        router.add_route(node.address, downlink)

    def new_flow_id(self) -> int:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def add_host_pair(self, forward: bool = True, name: str = ""):
        from repro.net.dumbbell import HostPair

        tag = name or f"h{self._next_address}"
        if forward:
            src_router, dst_router = self.router_left, self.router_right
            out_link, back_link = self.bottleneck, self.reverse_bottleneck
        else:
            src_router, dst_router = self.router_right, self.router_left
            out_link, back_link = self.reverse_bottleneck, self.bottleneck

        source = self._new_node(f"{tag}src")
        destination = self._new_node(f"{tag}dst")
        self._attach_host(source, src_router)
        self._attach_host(destination, dst_router)
        src_router.add_route(destination.address, out_link)
        dst_router.add_route(source.address, back_link)
        return HostPair(source, destination, forward)


def _build_workload(stack: _Stack):
    """Wire the macro scenario on a fresh simulator of ``stack``."""
    from repro.cc.base import establish
    from repro.cc.tcp import new_tcp_flow
    from repro.traffic.bulk import add_flows
    from repro.traffic.cbr import CbrSink, CbrSource

    cfg = _MACRO
    sim = stack.simulator()
    net = _MacroNet(sim, stack, cfg["bandwidth_bps"], cfg["rtt_s"], cfg["seed"])
    cbr = CbrSource(sim, rate_bps=cfg["cbr_fraction"] * cfg["bandwidth_bps"])
    sink = CbrSink(sim)
    establish(net, cbr, sink)
    sim.at(0.0, cbr.start)
    add_flows(
        sim,
        net,
        lambda s: new_tcp_flow(s),
        count=cfg["n_flows"],
        start_at=0.0,
        start_jitter_s=2.0,
        rng=random.Random(cfg["seed"]),
    )
    return sim, net


def _packets_forwarded(stack: _Stack, duration_s: float) -> int:
    """One untimed calibration run; returns bottleneck packets sent."""
    sim, net = _build_workload(stack)
    sim.run(until=duration_s)
    return net.bottleneck.packets_sent + net.reverse_bottleneck.packets_sent


def packet_forwarding_benchmark(quick: bool = False, k: int = 0) -> dict:
    """The headline macrobenchmark entry (group ``macro``)."""
    repeats = k or (2 if quick else 3)
    duration_s = 3.0 if quick else 12.0
    live_stack = _live_stack()
    ref_stack = _reference_stack()

    live_packets = _packets_forwarded(live_stack, duration_s)
    ref_packets = _packets_forwarded(ref_stack, duration_s)
    if live_packets != ref_packets:
        raise RuntimeError(
            "macro workload diverged between stacks: "
            f"{live_packets} vs {ref_packets} packets — the overhaul is "
            "supposed to be behavior-preserving"
        )

    live = min_of_k(
        lambda sim: sim.run(until=duration_s),
        k=repeats,
        ops=live_packets,
        setup=lambda: _build_workload(live_stack)[0],
    )
    baseline = min_of_k(
        lambda sim: sim.run(until=duration_s),
        k=repeats,
        ops=ref_packets,
        setup=lambda: _build_workload(ref_stack)[0],
    )
    entry = summarize("packet_forwarding", "macro", "packets/s", live)
    entry["meta"] = {
        "sim_seconds": duration_s,
        "packets": live_packets,
        "topology": "dumbbell",
        "bandwidth_bps": _MACRO["bandwidth_bps"],
        "rtt_s": _MACRO["rtt_s"],
        "tcp_flows": _MACRO["n_flows"],
        "cbr_fraction": _MACRO["cbr_fraction"],
    }
    return attach_baseline(entry, baseline)


#: Figures timed end-to-end (first job, fast scale).  The quick set is
#: analysis-dominated or single-flow figures so the CI smoke run stays
#: under a minute of simulation; the full set adds dumbbell scenarios.
_QUICK_FIGURES = ("fig11", "fig19", "fig20")
_FULL_FIGURES = ("fig03", "fig06", "fig11", "fig17", "fig19", "fig20")


def figure_benchmarks(quick: bool = False, k: int = 0) -> list[dict]:
    """Time the first job of representative figures (group ``figure``)."""
    from repro.experiments import ALL_FIGURES
    from repro.experiments.jobs import execute_job

    repeats = k or 1  # a figure job is seconds of wall time; min-of-1
    entries = []
    for name in _QUICK_FIGURES if quick else _FULL_FIGURES:
        module = ALL_FIGURES[name]
        jb = module.jobs("fast")[0]
        timing = min_of_k(lambda jb=jb: execute_job(jb), k=repeats, ops=1)
        entry = summarize(name, "figure", "s/job", timing)
        entry["meta"] = {
            "scenario": jb.scenario,
            "job_index": jb.index,
            "scale": "fast",
            "content_hash": jb.content_hash[:12],
        }
        entries.append(entry)
    return entries
