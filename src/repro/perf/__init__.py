"""repro.perf — benchmarking and profiling for the simulation kernel.

This package is the measurement side of the fast-path overhaul:

* :mod:`repro.perf.timing` — min-of-k monotonic timing primitives;
* :mod:`repro.perf.micro` — kernel microbenchmarks (event churn, probe
  emission, series bulk loads, windowed averages);
* :mod:`repro.perf.macro` — the packet-forwarding macrobenchmark on a
  fig04-style dumbbell, plus end-to-end figure-job timings;
* :mod:`repro.perf.reference` — the frozen pre-overhaul kernel and
  forwarding stack every benchmark is measured against;
* :mod:`repro.perf.sweep` — the cold-sweep throughput macrobenchmark
  (serial vs old dispatch vs the LPT/warm-pool/packed scheduler);
* :mod:`repro.perf.schema` — the deterministic ``BENCH_*.json`` shape;
* :mod:`repro.perf.compare` — ``bench --compare`` regression deltas;
* :mod:`repro.perf.profiling` — the ``repro profile`` cProfile wrapper.

Determinism note: this package is on the simlint D002 allowlist — it is
the *one* place in the tree allowed to read wall-clock time
(``time.perf_counter``), because measuring wall time is its entire
purpose.  Nothing here feeds simulation results; BENCH documents carry
measurements, never figure data.
"""

from __future__ import annotations

from repro.perf.compare import (
    compare_documents,
    gate_failures,
    load_bench,
    render_comparison,
)
from repro.perf.macro import figure_benchmarks, packet_forwarding_benchmark
from repro.perf.micro import kernel_microbenchmarks
from repro.perf.profiling import profile_figure
from repro.perf.schema import (
    BENCH_SCHEMA,
    BenchSchemaError,
    dump_document,
    new_document,
    validate_bench,
)
from repro.perf.sweep import sweep_benchmarks
from repro.perf.timing import TimingResult, min_of_k

__all__ = [
    "BENCH_SCHEMA",
    "BenchSchemaError",
    "TimingResult",
    "compare_documents",
    "dump_document",
    "figure_benchmarks",
    "gate_failures",
    "kernel_microbenchmarks",
    "load_bench",
    "min_of_k",
    "new_document",
    "packet_forwarding_benchmark",
    "profile_figure",
    "render_comparison",
    "sweep_benchmarks",
    "validate_bench",
]
