"""End-to-end sweep-throughput macrobenchmark (``repro bench --sweep``).

The kernel micro/macro benchmarks time simulation *inside* one process;
this module times what a user actually waits for: a **cold sweep** —
every figure, empty cache — under three executor configurations:

* ``serial`` — the :class:`~repro.experiments.executor.SerialExecutor`
  floor;
* ``dispatch_old`` — ``--parallel N`` with the pre-overhaul dispatch:
  FIFO order, cold per-map pools, pickled result transport, no inline
  fast path;
* ``dispatch_new`` — ``--parallel N`` with the throughput scheduler:
  cost-model LPT order, warm fork-server pools, packed result
  transport, inline fast path.

Two sweep sets are measured.  The **full** set (every registered figure,
full mode only) is the honest end-to-end number: on a single-core
runner its compute dominates and parallel dispatch can only approach
serial, not beat it.  The **acceptance** set (:data:`ACCEPTANCE_FIGURES`
— the closed-form analysis figures, whose jobs cost microseconds) is
dispatch-overhead-dominated by construction: it isolates exactly the
costs this scheduler removes (pool startup, per-job round-trips,
re-serialization), and carries the committed ``>= 1.3x`` acceptance
speedup of ``dispatch_new`` over ``dispatch_old``.

Every entry's ``meta.phases`` records where the best run's wall-clock
went — pool startup, dispatch ordering, worker compute, result
transport, cache lookup/store, reduction — so a regression in any one
stage is attributable from the BENCH document alone.  As a guard, the
benchmark refuses to report timings at all if any configuration's
tables diverge byte-wise from the serial reference: a fast wrong sweep
is not a result.
"""

from __future__ import annotations

import tempfile
import time

from repro.experiments import ALL_FIGURES, EXTENSIONS
from repro.experiments.cache import ResultCache
from repro.experiments.costmodel import CostModel
from repro.experiments.executor import ParallelExecutor, SerialExecutor
from repro.perf.timing import TimingResult, attach_baseline, summarize

__all__ = ["ACCEPTANCE_FIGURES", "sweep_benchmarks"]

#: The dispatch-overhead-dominated subset carrying the acceptance
#: speedup: closed-form analysis figures whose jobs cost microseconds,
#: so the measurement isolates scheduler overhead, not simulation.
ACCEPTANCE_FIGURES = ("fig11", "fig20")

#: Wall-clock phases accumulated across a sweep's maps (plus reduce).
_PHASES = (
    "startup_s",
    "dispatch_s",
    "compute_s",
    "transport_s",
    "lookup_s",
    "store_s",
    "reduce_s",
)

#: (config label, executor traits).  ``dispatch_old`` reconstructs the
#: pre-overhaul dispatch exactly: FIFO submission, pools built per map
#: and torn down after, pickled payload transport, every job pooled.
_CONFIGS = (
    ("serial", None),
    (
        "dispatch_old",
        dict(dispatch="fifo", pool_mode="cold", transport="pickle",
             inline_threshold_s=0.0),
    ),
    (
        "dispatch_new",
        dict(dispatch="lpt", pool_mode="warm", transport="packed"),
    ),
)


def _make_executor(traits, parallel: int):
    """A fresh executor with a cold in-memory cost model (hermetic)."""
    if traits is None:
        return SerialExecutor(dispatch="fifo", cost_model=CostModel())
    return ParallelExecutor(parallel, cost_model=CostModel(), **traits)


def _run_sweep(figures: dict, traits, parallel: int) -> tuple[float, dict, dict]:
    """One cold sweep: returns (wall seconds, phase breakdown, tables)."""
    phases = dict.fromkeys(_PHASES, 0.0)
    tables: dict[str, str] = {}
    perf_counter = time.perf_counter
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as cache_dir:
        started = perf_counter()
        executor = _make_executor(traits, parallel)
        try:
            cache = ResultCache(cache_dir)
            for name, module in figures.items():
                results = executor.map(module.jobs("fast"), cache)
                reduce_started = perf_counter()
                tables[name] = module.reduce(results).format()
                phases["reduce_s"] += perf_counter() - reduce_started
                report = executor.last_report
                for phase in _PHASES[:-1]:
                    phases[phase] += getattr(report, phase)
        finally:
            executor.close()
        elapsed = perf_counter() - started
    return elapsed, phases, tables


def _measure(
    label: str, figures: dict, parallel: int, k: int
) -> tuple[list[dict], dict[str, TimingResult]]:
    """Benchmark every configuration over ``figures``, k runs each."""
    ops = sum(len(module.jobs("fast")) for module in figures.values())
    entries: list[dict] = []
    timings: dict[str, TimingResult] = {}
    reference: dict[str, str] = {}
    for config, traits in _CONFIGS:
        runs: list[float] = []
        best_phases: dict = {}
        for _ in range(k):
            elapsed, phases, tables = _run_sweep(figures, traits, parallel)
            if not reference:
                reference = tables
            elif tables != reference:
                diverged = sorted(
                    name for name in reference if tables.get(name) != reference[name]
                )
                raise RuntimeError(
                    f"sweep benchmark: {config} tables diverged from the "
                    f"serial reference ({', '.join(diverged)}); refusing to "
                    "report timings for wrong results"
                )
            if not runs or elapsed < min(runs):
                best_phases = phases
            runs.append(elapsed)
        timing = TimingResult(runs_s=tuple(runs), ops=ops)
        timings[config] = timing
        entry = summarize(f"sweep_{label}_{config}", "sweep", "s/sweep", timing)
        entry["meta"] = {
            "figures": len(figures),
            "parallel": 1 if traits is None else parallel,
            "phases": {name: round(value, 6) for name, value in best_phases.items()},
            **({} if traits is None else traits),
        }
        entries.append(entry)
    # The committed acceptance criterion rides on dispatch_new's entry:
    # its baseline is the old dispatch under the *same* worker count.
    new_entry = next(e for e in entries if e["name"].endswith("dispatch_new"))
    attach_baseline(new_entry, timings["dispatch_old"])
    return entries, timings


def sweep_benchmarks(quick: bool = False, parallel: int = 4, k: int = 0) -> list[dict]:
    """Entries for ``BENCH_sweep.json``.

    Quick mode (CI smoke) measures only the acceptance set; full mode
    adds the all-figures sweep (single run per configuration — each one
    is minutes of simulation).
    """
    figures = {**ALL_FIGURES, **EXTENSIONS}
    accept = {name: figures[name] for name in ACCEPTANCE_FIGURES}
    entries, _ = _measure("accept", accept, parallel, k or (2 if quick else 3))
    if not quick:
        full_entries, _ = _measure("full", figures, parallel, k or 1)
        entries.extend(full_entries)
    return entries
