"""``repro profile`` — cProfile a figure's jobs and report hot functions.

Profiling answers the question the benchmarks raise: *where* does the
time go?  This module runs a figure's jobs in-process (no cache, no
worker pool — a profile of a subprocess would be empty) under
:mod:`cProfile` and prints the top-N functions by a chosen sort key.
The optimizations in the fast-path overhaul were selected from exactly
this view: ``Simulator.run`` / ``at``, ``Link._transmission_done`` and
``CounterProbe.increment`` dominated the pre-overhaul profile.
"""

from __future__ import annotations

import cProfile
import io
import pstats

__all__ = ["profile_figure", "SORT_KEYS"]

#: pstats sort keys exposed on the CLI.
SORT_KEYS = ("cumulative", "tottime", "calls")


def profile_figure(
    figure: str,
    scale: str = "fast",
    jobs: int = 1,
    top: int = 25,
    sort: str = "cumulative",
) -> str:
    """Profile the first ``jobs`` jobs of ``figure`` and return the report.

    Parameters
    ----------
    figure:
        Figure or extension name (anything ``repro run`` accepts).
    scale:
        Scenario scale preset; ``fast`` keeps profiling runs short.
    jobs:
        How many of the figure's jobs to execute under the profiler.
    top:
        Number of functions in the report.
    sort:
        A :data:`SORT_KEYS` entry (pstats sort key).
    """
    from repro.experiments import ALL_FIGURES, EXTENSIONS
    from repro.experiments.jobs import execute_job

    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, not {sort!r}")
    registry = {**ALL_FIGURES, **EXTENSIONS}
    if figure not in registry:
        raise ValueError(
            f"unknown figure {figure!r}; choose from {', '.join(sorted(registry))}"
        )
    job_list = registry[figure].jobs(scale)[: max(1, jobs)]

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        for jb in job_list:
            execute_job(jb)
    finally:
        profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    lines = [
        f"profile: {figure} scale={scale} jobs={len(job_list)} sort={sort}",
        buffer.getvalue().rstrip(),
    ]
    return "\n".join(lines)
