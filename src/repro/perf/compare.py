"""Regression deltas between two BENCH documents.

``python -m repro bench --compare OLD NEW`` aligns benchmark entries by
name and reports per-entry deltas — new/old ``per_op_ns`` ratio,
percentage change, and a coarse classification (``faster`` / ``slower``
/ ``~`` within a noise band).  Entries present in only one file are
reported as added or removed rather than silently dropped.

Comparison is per-operation, not per-run: quick mode scales the op
counts down, so two runs in different modes (CI's ``--quick`` output
against the committed full baseline) would differ ~10x in raw
``best_s`` while their per-op cost is directly comparable.

The comparison is advisory by default, with an opt-in gate: CI passes
``--gate NAME`` for the benchmarks stable enough to enforce (the event
chain and packet forwarding macrobenchmarks), and
:func:`gate_failures` turns any gated regression beyond
:data:`GATE_THRESHOLD` into a non-zero exit — everything else stays a
visible-but-non-gating line in the job log, so one noisy micro cannot
fail the build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.perf.schema import BenchSchemaError, validate_bench

__all__ = [
    "BenchDelta",
    "GATE_THRESHOLD",
    "compare_documents",
    "gate_failures",
    "load_bench",
    "render_comparison",
]

#: Relative change below which an entry is classified as noise.
NOISE_BAND = 0.05

#: Per-op regression beyond which a *gated* benchmark fails the build.
#: Deliberately wider than :data:`NOISE_BAND`: the gate exists to catch
#: real regressions, not to make CI flaky on shared runners.
GATE_THRESHOLD = 0.10


@dataclass(frozen=True)
class BenchDelta:
    """One aligned benchmark pair, or a one-sided add/remove."""

    name: str
    group: str
    old_per_op_ns: float | None
    new_per_op_ns: float | None

    @property
    def status(self) -> str:
        if self.old_per_op_ns is None:
            return "added"
        if self.new_per_op_ns is None:
            return "removed"
        if self.ratio <= 1.0 - NOISE_BAND:
            return "faster"
        if self.ratio >= 1.0 + NOISE_BAND:
            return "slower"
        return "~"

    @property
    def ratio(self) -> float:
        """new/old per-op cost; < 1 means the new run is faster."""
        if (
            self.old_per_op_ns is None
            or self.new_per_op_ns is None
            or not self.old_per_op_ns
        ):
            return float("nan")
        return self.new_per_op_ns / self.old_per_op_ns

    @property
    def percent(self) -> float:
        """Signed percentage change in per-op cost (+ means slower)."""
        return (self.ratio - 1.0) * 100.0


def load_bench(path: str) -> dict:
    """Load and schema-validate a BENCH JSON file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_bench(doc)
    return doc


def compare_documents(old: dict, new: dict) -> list[BenchDelta]:
    """Align two validated documents by benchmark name."""
    if old["kind"] != new["kind"]:
        raise BenchSchemaError(
            f"cannot compare kind {old['kind']!r} against {new['kind']!r}"
        )
    old_entries = {entry["name"]: entry for entry in old["benchmarks"]}
    new_entries = {entry["name"]: entry for entry in new["benchmarks"]}
    deltas = []
    for name in sorted(old_entries | new_entries):
        old_entry = old_entries.get(name)
        new_entry = new_entries.get(name)
        deltas.append(
            BenchDelta(
                name=name,
                group=(new_entry or old_entry)["group"],
                old_per_op_ns=old_entry["per_op_ns"] if old_entry else None,
                new_per_op_ns=new_entry["per_op_ns"] if new_entry else None,
            )
        )
    return deltas


def gate_failures(
    deltas: list[BenchDelta],
    gated: list[str],
    threshold: float = GATE_THRESHOLD,
) -> list[str]:
    """Gate messages for regressions beyond ``threshold`` on gated names.

    Only benchmarks listed in ``gated`` can fail the gate; a gated name
    *missing* from the comparison also fails (a silently-dropped gate is
    a gate that never fires again).  Non-gated regressions never appear
    here — they stay advisory in the rendered comparison.
    """
    by_name = {delta.name: delta for delta in deltas}
    failures = []
    for name in gated:
        delta = by_name.get(name)
        if delta is None:
            failures.append(f"{name}: gated benchmark missing from comparison")
            continue
        if delta.status in ("added", "removed"):
            failures.append(f"{name}: gated benchmark {delta.status} — cannot gate")
            continue
        if delta.ratio >= 1.0 + threshold:
            failures.append(
                f"{name}: regressed {delta.percent:+.1f}% per-op "
                f"(gate is +{threshold:.0%})"
            )
    return failures


def _fmt_per_op(value: float | None) -> str:
    if value is None:
        return "-"
    if value < 1e3:
        return f"{value:,.0f}ns"
    if value < 1e6:
        return f"{value / 1e3:.2f}us"
    if value < 1e9:
        return f"{value / 1e6:.2f}ms"
    return f"{value / 1e9:.3f}s"


def render_comparison(deltas: list[BenchDelta]) -> str:
    """Human-readable comparison table (one line per benchmark)."""
    header = f"{'benchmark':<28} {'old/op':>10} {'new/op':>10} {'delta':>9}  status"
    lines = [header, "-" * len(header)]
    for delta in deltas:
        if delta.status in ("added", "removed"):
            change = "-"
        else:
            change = f"{delta.percent:+.1f}%"
        lines.append(
            f"{delta.name:<28} {_fmt_per_op(delta.old_per_op_ns):>10} "
            f"{_fmt_per_op(delta.new_per_op_ns):>10} {change:>9}  {delta.status}"
        )
    regressions = sum(1 for d in deltas if d.status == "slower")
    improvements = sum(1 for d in deltas if d.status == "faster")
    lines.append(
        f"{len(deltas)} benchmarks: {improvements} faster, {regressions} slower, "
        f"{len(deltas) - improvements - regressions} within ±{NOISE_BAND:.0%}"
    )
    return "\n".join(lines)
