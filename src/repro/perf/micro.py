"""Microbenchmarks: the kernel and telemetry hot paths in isolation.

Each microbenchmark times one primitive against its frozen pre-overhaul
counterpart in :mod:`repro.perf.reference`, so every entry in
``BENCH_kernel.json`` carries a measured ``speedup`` — the number that
justified (or would veto) the optimization.

Workload shapes are deterministic: event times come from the
golden-ratio low-discrepancy sequence, not an RNG, so two bench runs
schedule byte-identical calendars and differ only in wall time.
"""

from __future__ import annotations

from typing import Callable

from repro.perf.reference import (
    ReferenceCounterProbe,
    ReferenceSimulator,
    ReferenceTimeSeries,
    reference_interval_average,
)
from repro.perf.timing import attach_baseline, min_of_k, summarize
from repro.sim.engine import Simulator
from repro.telemetry.probes import CounterProbe
from repro.telemetry.series import TimeSeries, interval_average

__all__ = ["kernel_microbenchmarks"]

_PHI = 0.6180339887498949  # golden-ratio conjugate: low-discrepancy offsets


def _scattered_times(n: int, horizon: float = 1000.0) -> list[float]:
    """n deterministic, duplicate-free times scattered over [0, horizon)."""
    return [((i * _PHI) % 1.0) * horizon for i in range(n)]


def _sorted_times(n: int, horizon: float = 1000.0) -> list[float]:
    return sorted(_scattered_times(n, horizon))


# --- Event churn -----------------------------------------------------------


def _churn(sim, times) -> None:
    for t in times:
        sim.at(t, _noop)
    sim.run()


def _noop() -> None:
    return None


def _bench_event_churn(n: int, k: int) -> dict:
    times = _scattered_times(n)
    live = min_of_k(
        lambda sim: _churn(sim, times), k=k, ops=n, setup=Simulator
    )
    ref = min_of_k(
        lambda sim: _churn(sim, times), k=k, ops=n, setup=ReferenceSimulator
    )
    entry = summarize("event_churn", "micro", "events/s", live)
    entry["meta"] = {"events": n, "pattern": "schedule-all-then-run"}
    return attach_baseline(entry, ref)


def _interleaved(sim, times) -> None:
    # Schedule-from-callback: every fired event schedules the next one,
    # the shape of per-packet transmission events.  Each kernel chains
    # through its cheapest fire-and-forget primitive — ``call_in`` on the
    # live kernel (what Link uses), plain ``schedule`` on the reference
    # kernel, which has nothing cheaper.
    chain = getattr(sim, "call_in", None) or sim.schedule
    it = iter(times)

    def step() -> None:
        t = next(it, None)
        if t is not None:
            chain(t, step)

    chain(0.0, step)
    sim.run()


def _bench_event_chain(n: int, k: int) -> dict:
    deltas = [((i * _PHI) % 1.0) * 0.01 for i in range(n)]
    live = min_of_k(
        lambda sim: _interleaved(sim, deltas), k=k, ops=n, setup=Simulator
    )
    ref = min_of_k(
        lambda sim: _interleaved(sim, deltas),
        k=k,
        ops=n,
        setup=ReferenceSimulator,
    )
    entry = summarize("event_chain", "micro", "events/s", live)
    entry["meta"] = {"events": n, "pattern": "fire-and-forget chain"}
    return attach_baseline(entry, ref)


def _cancel_churn(sim, times) -> None:
    events = [sim.at(t, _noop) for t in times]
    for i, event in enumerate(events):
        if i % 3:  # cancel 2/3: enough tombstones to trigger compaction
            event.cancel()
    sim.run()


def _bench_cancel_churn(n: int, k: int) -> dict:
    times = _scattered_times(n)
    live = min_of_k(
        lambda sim: _cancel_churn(sim, times), k=k, ops=n, setup=Simulator
    )
    ref = min_of_k(
        lambda sim: _cancel_churn(sim, times),
        k=k,
        ops=n,
        setup=ReferenceSimulator,
    )
    entry = summarize("event_cancel_churn", "micro", "events/s", live)
    entry["meta"] = {"events": n, "cancelled_fraction": 2 / 3}
    return attach_baseline(entry, ref)


def _same_time_burst(sim, n: int) -> None:
    # All events land at the current time: the at() fast path (FIFO
    # deque) versus a heap absorbing n equal keys.
    for _ in range(n):
        sim.at(sim.now, _noop)
    sim.run()


def _bench_same_time_burst(n: int, k: int) -> dict:
    live = min_of_k(
        lambda sim: _same_time_burst(sim, n), k=k, ops=n, setup=Simulator
    )
    ref = min_of_k(
        lambda sim: _same_time_burst(sim, n),
        k=k,
        ops=n,
        setup=ReferenceSimulator,
    )
    entry = summarize("event_same_time_burst", "micro", "events/s", live)
    entry["meta"] = {"events": n, "pattern": "at(now)"}
    return attach_baseline(entry, ref)


# --- Probe emission --------------------------------------------------------


def _emit(probe, times) -> None:
    increment = probe.increment
    for t in times:
        increment(t)


def _bench_probe_emission(n: int, k: int) -> dict:
    times = _sorted_times(n)
    live = min_of_k(
        lambda p: _emit(p, times), k=k, ops=n, setup=CounterProbe
    )
    ref = min_of_k(
        lambda p: _emit(p, times), k=k, ops=n, setup=ReferenceCounterProbe
    )
    entry = summarize("probe_emission", "micro", "increments/s", live)
    entry["meta"] = {"increments": n}
    return attach_baseline(entry, ref)


# --- TimeSeries bulk loading ----------------------------------------------


def _bench_timeseries_extend(n: int, k: int) -> dict:
    times = _sorted_times(n)
    values = [float(i) for i in range(n)]
    live = min_of_k(
        lambda s: s.extend(times, values), k=k, ops=n, setup=TimeSeries
    )
    ref = min_of_k(
        lambda s: s.extend(times, values),
        k=k,
        ops=n,
        setup=ReferenceTimeSeries,
    )
    entry = summarize("timeseries_extend", "micro", "samples/s", live)
    entry["meta"] = {"samples": n}
    return attach_baseline(entry, ref)


# --- Windowed averaging ----------------------------------------------------


def _bench_interval_average(n: int, k: int, windows: int = 200) -> dict:
    series = TimeSeries("bench")
    series.extend(_sorted_times(n), [float(i) for i in range(n)])
    span = 1000.0 / windows

    def live_workload() -> None:
        for i in range(windows):
            interval_average(series, i * span, i * span + span)

    samples = list(zip(series.times, series.values))

    def ref_workload() -> None:
        for i in range(windows):
            reference_interval_average(samples, i * span, i * span + span)

    live = min_of_k(live_workload, k=k, ops=windows)
    ref = min_of_k(ref_workload, k=k, ops=windows)
    entry = summarize("interval_average", "micro", "windows/s", live)
    entry["meta"] = {"samples": n, "windows": windows}
    return attach_baseline(entry, ref)


# --- Catalog ---------------------------------------------------------------

_CATALOG: "list[tuple[str, Callable[[int, int], dict], int, int]]" = [
    # (name, builder, full_n, quick_n)
    ("event_churn", _bench_event_churn, 100_000, 10_000),
    ("event_chain", _bench_event_chain, 50_000, 5_000),
    ("event_cancel_churn", _bench_cancel_churn, 100_000, 10_000),
    ("event_same_time_burst", _bench_same_time_burst, 50_000, 5_000),
    ("probe_emission", _bench_probe_emission, 200_000, 20_000),
    ("timeseries_extend", _bench_timeseries_extend, 200_000, 20_000),
    ("interval_average", _bench_interval_average, 100_000, 10_000),
]


def kernel_microbenchmarks(quick: bool = False, k: int = 0) -> list[dict]:
    """Run the microbenchmark catalog; returns BENCH entries."""
    repeats = k or (2 if quick else 5)
    entries = []
    for _, builder, full_n, quick_n in _CATALOG:
        entries.append(builder(quick_n if quick else full_n, repeats))
    return entries
