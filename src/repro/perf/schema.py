"""The BENCH JSON schema: one deterministic shape, validated by hand.

``python -m repro bench`` emits two documents — ``BENCH_kernel.json``
(micro/macro kernel benchmarks) and ``BENCH_figures.json`` (per-figure
job timings) — and ``bench --sweep`` a third, ``BENCH_sweep.json``
(end-to-end sweep throughput with a per-phase breakdown in ``meta``).
The *values* are wall-clock measurements and vary run to
run; the *schema* is deterministic: a fixed top-level key set, a fixed
per-benchmark key set, benchmarks sorted by name, and ``sort_keys=True``
serialization, so two BENCH files always diff structurally clean and
``bench --compare`` can align entries by name.

Validation is hand-rolled (no jsonschema dependency in the container);
:func:`validate_bench` raises :class:`BenchSchemaError` naming the first
offending path.
"""

from __future__ import annotations

import json
import math
import platform
from typing import Any

__all__ = [
    "BENCH_SCHEMA",
    "BenchSchemaError",
    "new_document",
    "dump_document",
    "validate_bench",
]

#: Version tag; bump on any structural change so --compare refuses to
#: diff incompatible files.
BENCH_SCHEMA = "repro-bench/1"

#: Exact top-level key set of a BENCH document.
_DOC_KEYS = {"schema", "kind", "quick", "python", "machine", "benchmarks"}
#: Required keys of each benchmark entry.
_ENTRY_KEYS = {"name", "group", "unit", "ops", "repeats", "best_s", "per_op_ns", "rate"}
#: Optional keys of each benchmark entry.
_ENTRY_OPTIONAL = {"baseline", "speedup", "meta"}
#: Required keys of a baseline sub-object.
_BASELINE_KEYS = {"best_s", "per_op_ns", "rate"}

_KINDS = ("kernel", "figures", "sweep")
_GROUPS = ("micro", "macro", "figure", "sweep")


class BenchSchemaError(ValueError):
    """A BENCH document does not conform to :data:`BENCH_SCHEMA`."""


def new_document(kind: str, quick: bool, benchmarks: list[dict]) -> dict:
    """Assemble a schema-conforming document (benchmarks sorted by name)."""
    if kind not in _KINDS:
        raise ValueError(f"kind must be one of {_KINDS}, not {kind!r}")
    return {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "quick": bool(quick),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": sorted(benchmarks, key=lambda b: b["name"]),
    }


def dump_document(doc: dict) -> str:
    """Serialize with sorted keys and a trailing newline (diff-friendly)."""
    validate_bench(doc)
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _require_number(value: Any, path: str, allow_inf: bool = False) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BenchSchemaError(f"{path}: expected a number, got {value!r}")
    if math.isnan(value):
        raise BenchSchemaError(f"{path}: NaN is not a valid measurement")
    if not allow_inf and math.isinf(value):
        raise BenchSchemaError(f"{path}: infinite measurement")
    if value < 0:
        raise BenchSchemaError(f"{path}: negative measurement {value!r}")


def validate_bench(doc: Any) -> None:
    """Raise :class:`BenchSchemaError` unless ``doc`` conforms."""
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"document must be an object, got {type(doc).__name__}")
    keys = set(doc)
    if keys != _DOC_KEYS:
        missing = sorted(_DOC_KEYS - keys)
        extra = sorted(keys - _DOC_KEYS)
        raise BenchSchemaError(
            f"top-level keys mismatch: missing {missing}, unexpected {extra}"
        )
    if doc["schema"] != BENCH_SCHEMA:
        raise BenchSchemaError(
            f"schema: expected {BENCH_SCHEMA!r}, got {doc['schema']!r}"
        )
    if doc["kind"] not in _KINDS:
        raise BenchSchemaError(f"kind: expected one of {_KINDS}, got {doc['kind']!r}")
    if not isinstance(doc["quick"], bool):
        raise BenchSchemaError(f"quick: expected a bool, got {doc['quick']!r}")
    for field in ("python", "machine"):
        if not isinstance(doc[field], str):
            raise BenchSchemaError(f"{field}: expected a string")
    benches = doc["benchmarks"]
    if not isinstance(benches, list) or not benches:
        raise BenchSchemaError("benchmarks: expected a non-empty list")
    names = [entry.get("name") for entry in benches if isinstance(entry, dict)]
    if names != sorted(names):
        raise BenchSchemaError("benchmarks: entries must be sorted by name")
    if len(set(names)) != len(names):
        raise BenchSchemaError("benchmarks: duplicate names")
    for entry in benches:
        _validate_entry(entry)


def _validate_entry(entry: Any) -> None:
    if not isinstance(entry, dict):
        raise BenchSchemaError(f"benchmark entry must be an object, got {entry!r}")
    name = entry.get("name", "<unnamed>")
    keys = set(entry)
    missing = sorted(_ENTRY_KEYS - keys)
    extra = sorted(keys - _ENTRY_KEYS - _ENTRY_OPTIONAL)
    if missing or extra:
        raise BenchSchemaError(
            f"benchmarks[{name}]: missing {missing}, unexpected {extra}"
        )
    for field in ("name", "group", "unit"):
        if not isinstance(entry[field], str) or not entry[field]:
            raise BenchSchemaError(
                f"benchmarks[{name}].{field}: expected a non-empty string"
            )
    if entry["group"] not in _GROUPS:
        raise BenchSchemaError(
            f"benchmarks[{name}].group: expected one of {_GROUPS}, "
            f"got {entry['group']!r}"
        )
    for field in ("ops", "repeats"):
        value = entry[field]
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise BenchSchemaError(
                f"benchmarks[{name}].{field}: expected a positive int, got {value!r}"
            )
    for field in ("best_s", "per_op_ns", "rate"):
        _require_number(entry[field], f"benchmarks[{name}].{field}")
    if "baseline" in entry:
        baseline = entry["baseline"]
        if not isinstance(baseline, dict) or set(baseline) != _BASELINE_KEYS:
            raise BenchSchemaError(
                f"benchmarks[{name}].baseline: expected keys {sorted(_BASELINE_KEYS)}"
            )
        for field in sorted(_BASELINE_KEYS):
            _require_number(baseline[field], f"benchmarks[{name}].baseline.{field}")
        if "speedup" not in entry:
            raise BenchSchemaError(
                f"benchmarks[{name}]: baseline present but no speedup"
            )
    if "speedup" in entry:
        _require_number(entry["speedup"], f"benchmarks[{name}].speedup")
    if "meta" in entry and not isinstance(entry["meta"], dict):
        raise BenchSchemaError(f"benchmarks[{name}].meta: expected an object")
