"""Frozen pre-overhaul implementations of the simulation hot path.

This module is a faithful snapshot of the simulation kernel as it stood
*before* the fast-path overhaul — the event calendar (object-keyed heap,
per-sift ``Event.__lt__`` dispatch, an Event allocation for every
schedule), the per-packet forwarding stack (link, node, FIFO queue with
no idle bypass), and the telemetry hot path (closure-per-call counter
windows, the per-sample ``TimeSeries.extend`` loop and the linear
``interval_average`` scan).  It exists for two reasons:

1. **Benchmark baseline.**  ``python -m repro bench`` runs every micro-
   and macrobenchmark twice — once against the live kernel, once against
   these reference implementations — so ``BENCH_kernel.json`` records a
   measured speedup against the exact code the overhaul replaced, not
   against a guess.
2. **Ordering oracle.**  The property tests in
   ``tests/test_sim_engine_fastpath.py`` drive random schedule / cancel /
   compaction churn through both kernels and assert the live kernel
   fires events in exactly the reference ``(time, seq)`` order.

Nothing outside ``repro.perf`` and the test suite may import this
module; it is deliberately *not* re-exported from ``repro.perf``'s
public surface beyond the names below.
"""

from __future__ import annotations

import bisect
import heapq
import math
from array import array
from collections import deque
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = [
    "ReferenceEvent",
    "ReferenceSimulator",
    "ReferenceCounterProbe",
    "ReferenceTimeSeries",
    "ReferenceQueueDiscipline",
    "ReferenceDropTailQueue",
    "ReferenceLink",
    "ReferenceNode",
    "reference_interval_average",
]


class ReferenceEvent:
    """Pre-overhaul event: ordering via a Python-level ``__lt__``."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[ReferenceSimulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._in_heap = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None and self._in_heap:
            self._sim._note_cancelled()

    def __lt__(self, other: "ReferenceEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class ReferenceSimulator:
    """Pre-overhaul kernel: a heap of :class:`ReferenceEvent` objects.

    Every sift inside ``heappush`` / ``heappop`` dispatches to
    ``ReferenceEvent.__lt__`` — a Python function call per comparison —
    which is exactly the overhead the tuple-keyed calendar removed.  The
    public surface matches :class:`repro.sim.engine.Simulator`, so the
    network stack runs on either kernel unchanged.
    """

    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._heap: list[ReferenceEvent] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._cancelled = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap) - self._cancelled

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled > self.COMPACT_MIN_CANCELLED
            and self._cancelled > len(self._heap) // 2
        ):
            for event in self._heap:
                if event.cancelled:
                    event._in_heap = False
            self._heap = [event for event in self._heap if not event.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any):
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        return self.at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any):
        if math.isnan(time):
            raise ValueError("cannot schedule at time NaN")
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}: clock is already at {self._now}"
            )
        event = ReferenceEvent(time, self._seq, fn, args, sim=self)
        event._in_heap = True
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None) -> None:
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                event._in_heap = False
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = event.time
                event.fn(*event.args)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        self._stopped = True


class ReferenceCounterProbe:
    """Pre-overhaul counter: tail reads per increment, closure per window.

    ``increment`` re-read ``self._totals[-1]`` on every event and
    ``count_in`` built a ``cumulative_before`` closure per call, then
    truncated the difference through ``int()`` — the accounting bug the
    overhaul fixed for fractional (byte-weighted) increments.
    """

    kind = "counter"

    def __init__(self, name: str = ""):
        self.name = name
        self._times: array = array("d")
        self._totals: array = array("d")

    @property
    def times(self) -> Sequence[float]:
        return self._times

    @property
    def values(self) -> Sequence[float]:
        return self._totals

    @property
    def count(self) -> int:
        return int(self._totals[-1]) if self._totals else 0

    def increment(self, time: float, amount: float = 1) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"events must be time-ordered: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._totals.append((self._totals[-1] if self._totals else 0.0) + amount)

    def count_in(self, start: float, end: float) -> int:
        def cumulative_before(t: float) -> float:
            idx = bisect.bisect_left(self._times, t) - 1
            return self._totals[idx] if idx >= 0 else 0.0

        return int(cumulative_before(end) - cumulative_before(start))


class ReferenceTimeSeries:
    """Pre-overhaul series: ``extend`` is a Python-level append per sample."""

    __slots__ = ("_times", "_values", "name")

    def __init__(self, name: str = ""):
        self.name = name
        self._times: array = array("d")
        self._values: array = array("d")

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self):
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> Sequence[float]:
        return self._times

    @property
    def values(self) -> Sequence[float]:
        return self._values

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def extend(self, times: Iterable[float], values: Iterable[float]) -> None:
        for time, value in zip(times, values):
            self.append(time, value)


class ReferenceQueueDiscipline:
    """Pre-overhaul FIFO queue: two clock reads per enqueue, no bypass."""

    def __init__(self, capacity_pkts: int):
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity_pkts = capacity_pkts
        self._buffer: "deque" = deque()
        self._bytes = 0
        self.observer = None
        self.telemetry = None
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def byte_length(self) -> int:
        return self._bytes

    def admit(self, packet) -> bool:
        return len(self._buffer) < self.capacity_pkts

    def enqueue(self, packet) -> bool:
        if self.telemetry is not None:
            self.telemetry.arrivals.increment(self._clock())
        if self.observer is not None:
            self.observer.on_arrival(packet)
        if not self.admit(packet):
            if self.telemetry is not None:
                self.telemetry.drops.increment(self._clock())
            if self.observer is not None:
                self.observer.on_drop(packet)
            return False
        packet.enqueued_at = self._clock()
        self._buffer.append(packet)
        self._bytes += packet.size
        return True

    def dequeue(self):
        if not self._buffer:
            return None
        packet = self._buffer.popleft()
        self._bytes -= packet.size
        return packet


class ReferenceDropTailQueue(ReferenceQueueDiscipline):
    """Pre-overhaul plain FIFO tail-drop queue."""


class ReferenceLink:
    """Pre-overhaul link: every packet takes the full enqueue/dequeue
    round trip and both per-packet events are cancellable
    :class:`ReferenceEvent` allocations via ``sim.schedule``."""

    def __init__(
        self,
        sim,
        bandwidth_bps: float,
        delay_s: float,
        queue=None,
        name: str = "link",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue = queue if queue is not None else ReferenceDropTailQueue(1000)
        self.queue.bind_clock(lambda: sim.now)
        self.name = name
        self._receiver = None
        self._busy = False
        self.bytes_sent = 0
        self.packets_sent = 0
        self._taps: list = []

    def connect(self, receiver) -> None:
        self._receiver = receiver

    def add_tap(self, tap) -> None:
        self._taps.append(tap)

    def send(self, packet) -> None:
        if self._receiver is None:
            raise RuntimeError(f"link {self.name!r} is not connected")
        if self.queue.enqueue(packet) and not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx_time = packet.size * 8.0 / self.bandwidth_bps
        self.sim.schedule(tx_time, self._transmission_done, packet)

    def _transmission_done(self, packet) -> None:
        self.bytes_sent += packet.size
        self.packets_sent += 1
        for tap in self._taps:
            tap(packet)
        self.sim.schedule(self.delay_s, self._receiver, packet)
        self._start_transmission()


class ReferenceNode:
    """Pre-overhaul node: forwarding goes through a separate ``_forward``
    call per packet."""

    def __init__(self, sim, address: int, name: str = ""):
        self.sim = sim
        self.address = address
        self.name = name or f"node{address}"
        self._routes: dict = {}
        self._default_route = None
        self._flow_handlers: dict = {}

    def add_route(self, dst: int, link) -> None:
        self._routes[dst] = link

    def set_default_route(self, link) -> None:
        self._default_route = link

    def bind_flow(self, flow_id: int, handler) -> None:
        if flow_id in self._flow_handlers:
            raise ValueError(f"flow {flow_id} already bound on {self.name}")
        self._flow_handlers[flow_id] = handler

    def unbind_flow(self, flow_id: int) -> None:
        self._flow_handlers.pop(flow_id, None)

    def send(self, packet) -> None:
        self._forward(packet)

    def receive(self, packet) -> None:
        if packet.dst == self.address:
            handler = self._flow_handlers.get(packet.flow_id)
            if handler is not None:
                handler(packet)
            return
        self._forward(packet)

    def _forward(self, packet) -> None:
        link = self._routes.get(packet.dst, self._default_route)
        if link is None:
            raise RuntimeError(f"{self.name}: no route for packet to {packet.dst}")
        link.send(packet)


def reference_interval_average(
    samples: Iterable[tuple[float, float]], start: float, end: float
) -> float:
    """Pre-overhaul linear scan over every sample, windowed or not."""
    total = 0.0
    count = 0
    for t, v in samples:
        if start <= t < end:
            total += v
            count += 1
    return total / count if count else math.nan
