"""Structured JSONL run telemetry for the execution layer.

Every executed batch can append provenance records to a run log — one
JSON object per line, written and flushed as events happen, so a crashed
run still leaves a complete record of everything that finished.  The log
is the executor's flight recorder: it answers "what ran, where, how many
times, and how long did it take" without re-running anything.

Record schema (``event="job"``, one per submitted job)::

    {"ts": 1722945600.123, "event": "job",
     "figure": "fig04", "index": 3, "hash": "3fa2…",   # full content hash
     "status": "computed",      # computed | cached | deduplicated | failed
     "attempts": 2,             # executions performed (0 for cached/dedup)
     "retried": true,           # attempts > 1
     "timed_out": false,        # a per-job timeout fired for this job
     "degraded": false,         # computed in-process after pool degradation
     "worker_pid": 4242,        # pid that produced the payload (null if none)
     "wall_s": 1.234,           # wall-clock of the successful attempt
     "dispatch_order": 0,       # rank in the execution order (0 = first
                                # submitted; computed jobs only)
     "predicted_wall_s": 1.1}   # the cost model's estimate at dispatch
                                # time (computed jobs only)

Plus one summary record per ``Executor.map`` call (``event="map"``) with
the full :class:`~repro.experiments.executor.ExecutionReport` accounting
(jobs / computed / cache_hits / deduplicated / retries / failures /
timeouts / salvaged / pool_rebuilds / degraded, the per-stage wall-clock
including scheduler phases — startup_s / dispatch_s / transport_s /
compute_s — the dispatch mode, the inline-fast-path count, and
``load_balance``: the busiest worker slot's busy time over the mean,
1.0 meaning a perfectly balanced map).

Point the CLI at a log with ``--run-log PATH`` or set ``REPRO_RUN_LOG``
for the benchmark harness; records append, so one log can span a whole
sweep study.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Optional, Union

__all__ = ["RunLog"]


class RunLog:
    """Append-only JSONL event log (one JSON object per line).

    Only the coordinating process writes; every record is flushed
    immediately so partial runs still leave complete provenance for the
    jobs that finished.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[Any] = None

    def record(self, **fields: Any) -> None:
        """Append one event; a ``ts`` wall-clock field is added first."""
        if self._handle is None:
            self._handle = self.path.open("a")
        line = json.dumps(
            {"ts": round(time.time(), 3), **fields},
            allow_nan=True,
            sort_keys=True,
        )
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunLog {self.path}>"
