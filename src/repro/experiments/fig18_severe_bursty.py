"""Figure 18: TFRC vs TCP(1/8) under a severely bursty loss pattern.

Paper: a long low-congestion phase (every 200th packet dropped) followed by
a heavy-congestion phase (every 4th dropped) is designed so that the heavy
phase spans about six loss intervals — enough for TFRC to lose all memory
of the good times — while the low phase spans only three or four, never
fully displacing the bad memory.  TFRC then does worse than TCP(1/8), and
even than TCP(1/2), in both smoothness and throughput.

At the scaled-down operating point the flow's packet rate differs from the
paper's, so the *fast* phase durations are adjusted (low phase 3 s instead
of 6 s) to preserve the pattern's defining property: 3-4 loss intervals in
the low phase, 6+ in the heavy phase.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.fig17_mild_bursty import loss_pattern_table
from repro.experiments.jobs import DropperSpec, Job, indexed, job
from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import LossPatternConfig
from repro.net.droppers import severe_bursty_phases

__all__ = ["default_protocols", "default_phases", "jobs", "reduce", "run"]


def default_protocols() -> list[Protocol]:
    return [tfrc(6), tcp(8), tcp(2)]


def default_phases(scale: str) -> list[tuple[float, int]]:
    if scale == "fast":
        return [(3.0, 200), (1.0, 4)]
    return severe_bursty_phases()


def jobs(
    scale: str = "fast",
    protocols: list[Protocol] | None = None,
    phases: Sequence[tuple[float, int]] | None = None,
    **overrides,
) -> list[Job]:
    cfg = pick_config(LossPatternConfig, scale, **overrides)
    dropper = DropperSpec.phase(
        list(phases) if phases is not None else default_phases(scale)
    )
    return indexed(
        job(
            "fig18",
            "loss_pattern",
            config=cfg,
            protocol=protocol,
            params={"dropper": dropper},
            scale=scale,
        )
        for protocol in (protocols if protocols is not None else default_protocols())
    )


def reduce(results) -> Table:
    return loss_pattern_table(
        results,
        title="Figure 18: severely bursty loss pattern (low phase then 1-in-4 drops)",
        notes=(
            "Paper: TFRC performs considerably worse than TCP(1/8), and even "
            "worse than TCP(1/2), in both smoothness and throughput — the "
            "pattern exploits the loss-interval averaging."
        ),
    )


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
