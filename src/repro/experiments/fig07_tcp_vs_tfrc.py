"""Figure 7: throughput of TCP and TFRC flows under 3:1 oscillation.

Paper: when the square-wave period is between about one and ten seconds,
the TCP flows receive more throughput than the TFRC flows; overall link
utilization dips when the period is around 0.2 s (4 RTTs).  Despite much
trying, the paper found no varying-bandwidth scenario where TFRC beats TCP
in the long term.
"""

from __future__ import annotations

from repro.experiments.fairness_vs_tcp import fairness_jobs, fairness_reduce
from repro.experiments.jobs import Job
from repro.experiments.protocols import tfrc
from repro.experiments.runner import Table

__all__ = ["jobs", "reduce", "run"]

COMPETITOR = tfrc(6)
PAPER_CLAIM = (
    "Paper: TCP > TFRC for periods ~1-10 s; utilization dips near a "
    "period of 4 RTTs; TFRC never beats TCP in the long term."
)


def jobs(scale: str = "fast", **kwargs) -> list[Job]:
    return fairness_jobs("fig07", COMPETITOR, scale, **kwargs)


def reduce(results) -> Table:
    return fairness_reduce(results, "Figure 7", COMPETITOR.name, PAPER_CLAIM)


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
