"""Figure 6: aggregate throughput with a web flash crowd.

Paper: a flash crowd of short TCP transfers (10 packets, 200 flows/s for
5 s) starts at t = 25 s against long-running SlowCC background traffic.
Because the crowd's flows are in slow-start they grab bandwidth rapidly
whether the background is TCP(1/2) or TFRC(256) *with* self-clocking; only
TFRC(256) without self-clocking is slow to yield.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import FlashCrowdConfig

__all__ = ["default_protocols", "jobs", "reduce", "run"]


def default_protocols() -> list[Protocol]:
    return [tcp(2), tfrc(256), tfrc(256, conservative=True)]


def jobs(
    scale: str = "fast",
    protocols: Sequence[Protocol] | None = None,
    **overrides,
) -> list[Job]:
    cfg = pick_config(FlashCrowdConfig, scale, **overrides)
    return indexed(
        job("fig06", "flash_crowd", config=cfg, protocol=protocol, scale=scale)
        for protocol in (protocols if protocols is not None else default_protocols())
    )


def reduce(results) -> Table:
    cfg = results[0].job.config
    table = Table(
        title="Figure 6: aggregate throughput around a flash crowd",
        columns=["background", "time_s", "background_mbps", "crowd_mbps"],
        notes=(
            f"Crowd: {cfg.crowd_rate_per_s:g} flows/s x {cfg.crowd_duration_s:g} s of "
            f"{cfg.transfer_packets}-packet TCP transfers starting at t={cfg.crowd_start:g} s. "
            "Paper: the crowd grabs bandwidth quickly against TCP and against "
            "TFRC(256) with self-clocking; TFRC(256) without it yields slowly."
        ),
    )
    for result in results:
        crowd = {t: v for t, v in result.value["crowd"]}
        for t, bg in result.value["background"]:
            table.add(result.value["protocol"], t, bg / 1e6, crowd.get(t, 0.0) / 1e6)
    return table


def run(
    scale: str = "fast",
    protocols: Sequence[Protocol] | None = None,
    *,
    executor=None,
    cache=None,
    **overrides,
) -> Table:
    from repro.experiments.executor import execute

    return reduce(
        execute(jobs(scale, protocols=protocols, **overrides), executor, cache)
    )
