"""Figure 6: aggregate throughput with a web flash crowd.

Paper: a flash crowd of short TCP transfers (10 packets, 200 flows/s for
5 s) starts at t = 25 s against long-running SlowCC background traffic.
Because the crowd's flows are in slow-start they grab bandwidth rapidly
whether the background is TCP(1/2) or TFRC(256) *with* self-clocking; only
TFRC(256) without self-clocking is slow to yield.
"""

from __future__ import annotations

from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import FlashCrowdConfig, run_flash_crowd

__all__ = ["default_protocols", "run"]


def default_protocols() -> list[Protocol]:
    return [tcp(2), tfrc(256), tfrc(256, conservative=True)]


def run(scale: str = "fast", protocols: list[Protocol] | None = None, **overrides) -> Table:
    cfg = pick_config(FlashCrowdConfig, scale, **overrides)
    table = Table(
        title="Figure 6: aggregate throughput around a flash crowd",
        columns=["background", "time_s", "background_mbps", "crowd_mbps"],
        notes=(
            f"Crowd: {cfg.crowd_rate_per_s:g} flows/s x {cfg.crowd_duration_s:g} s of "
            f"{cfg.transfer_packets}-packet TCP transfers starting at t={cfg.crowd_start:g} s. "
            "Paper: the crowd grabs bandwidth quickly against TCP and against "
            "TFRC(256) with self-clocking; TFRC(256) without it yields slowly."
        ),
    )
    for protocol in protocols if protocols is not None else default_protocols():
        result = run_flash_crowd(protocol, cfg)
        crowd = dict(result.crowd_series)
        for t, bg in result.background_series:
            table.add(result.protocol, t, bg / 1e6, crowd.get(t, 0.0) / 1e6)
    return table
