"""One experiment module per paper figure, plus shared scenario machinery.

``repro.experiments.figXX_*.run(scale)`` regenerates the data behind paper
figure XX as a :class:`~repro.experiments.runner.Table`; ``scale="fast"``
uses the CI-sized configuration, ``scale="paper"`` the paper's parameters.

Every figure module also exposes the declarative pipeline underneath:
``jobs(scale) -> list[Job]`` describes the simulation points and
``reduce(results) -> Table`` formats them, so work can be executed
serially, across a process pool (:class:`ParallelExecutor`) and/or
against the content-addressed :class:`ResultCache`.
"""

from repro.experiments import (
    ext_queue_dynamics,
    ext_responsiveness,
    fig03_cbr_restart,
    fig04_stabilization_time,
    fig05_stabilization_cost,
    fig06_flash_crowd,
    fig07_tcp_vs_tfrc,
    fig08_tcp_vs_tcp8,
    fig09_tcp_vs_sqrt,
    fig10_convergence_tcp,
    fig11_convergence_analysis,
    fig12_convergence_tfrc,
    fig13_fk_utilization,
    fig14_oscillation_utilization,
    fig15_oscillation_droprate,
    fig16_extreme_oscillation,
    fig17_mild_bursty,
    fig18_severe_bursty,
    fig19_iiad_sqrt,
    fig20_timeout_models,
)
from repro.experiments.cache import CacheStats, ResultCache, default_cache_dir
from repro.experiments.executor import (
    ExecutionError,
    ExecutionReport,
    Executor,
    JobResult,
    ParallelExecutor,
    SerialExecutor,
    execute,
    make_executor,
)
from repro.experiments.faults import FaultSpec, InjectedFault
from repro.experiments.jobs import DropperSpec, Job, execute_job, job
from repro.experiments.runlog import RunLog
from repro.experiments.protocols import (
    Protocol,
    ProtocolSpec,
    iiad,
    rap,
    spec_of,
    sqrt,
    tcp,
    tcp_b,
    tear,
    tfrc,
)
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import (
    CbrRestartConfig,
    CbrRestartResult,
    ConvergenceConfig,
    DoublingConfig,
    DoublingResult,
    FlashCrowdConfig,
    FlashCrowdResult,
    LossPatternConfig,
    LossPatternResult,
    OscillationConfig,
    OscillationResult,
    run_cbr_restart,
    run_convergence,
    run_doubling,
    run_flash_crowd,
    run_loss_pattern,
    run_oscillation,
)

EXTENSIONS = {
    "responsiveness": ext_responsiveness,
    "queue_dynamics": ext_queue_dynamics,
}

ALL_FIGURES = {
    "fig03": fig03_cbr_restart,
    "fig04": fig04_stabilization_time,
    "fig05": fig05_stabilization_cost,
    "fig06": fig06_flash_crowd,
    "fig07": fig07_tcp_vs_tfrc,
    "fig08": fig08_tcp_vs_tcp8,
    "fig09": fig09_tcp_vs_sqrt,
    "fig10": fig10_convergence_tcp,
    "fig11": fig11_convergence_analysis,
    "fig12": fig12_convergence_tfrc,
    "fig13": fig13_fk_utilization,
    "fig14": fig14_oscillation_utilization,
    "fig15": fig15_oscillation_droprate,
    "fig16": fig16_extreme_oscillation,
    "fig17": fig17_mild_bursty,
    "fig18": fig18_severe_bursty,
    "fig19": fig19_iiad_sqrt,
    "fig20": fig20_timeout_models,
}

__all__ = [
    "ALL_FIGURES",
    "EXTENSIONS",
    "CacheStats",
    "CbrRestartConfig",
    "CbrRestartResult",
    "ConvergenceConfig",
    "DoublingConfig",
    "DoublingResult",
    "DropperSpec",
    "ExecutionError",
    "ExecutionReport",
    "Executor",
    "FaultSpec",
    "InjectedFault",
    "FlashCrowdConfig",
    "FlashCrowdResult",
    "Job",
    "JobResult",
    "LossPatternConfig",
    "LossPatternResult",
    "OscillationConfig",
    "OscillationResult",
    "ParallelExecutor",
    "Protocol",
    "ProtocolSpec",
    "ResultCache",
    "RunLog",
    "SerialExecutor",
    "Table",
    "default_cache_dir",
    "execute",
    "execute_job",
    "iiad",
    "job",
    "make_executor",
    "pick_config",
    "rap",
    "spec_of",
    "run_cbr_restart",
    "run_convergence",
    "run_doubling",
    "run_flash_crowd",
    "run_loss_pattern",
    "run_oscillation",
    "sqrt",
    "tcp",
    "tcp_b",
    "tear",
    "tfrc",
]
