"""Figure 16: utilization under extreme 10:1 bandwidth oscillations.

Paper: with 10:1 changes in available bandwidth none of the mechanisms is
particularly successful, and for certain oscillation frequencies TFRC does
particularly badly relative to TCP.
"""

from __future__ import annotations

from repro.experiments.jobs import Job
from repro.experiments.oscillation_utilization import reduce_sweep, sweep_jobs
from repro.experiments.runner import Table

__all__ = ["jobs", "reduce", "run"]

CBR_FRACTION = 0.9
TITLE = "Figure 16: utilization vs CBR ON/OFF time (10:1 oscillation)"
NOTES = (
    "Paper: all protocols suffer; TFRC is worst at some oscillation "
    "frequencies."
)


def jobs(scale: str = "fast", **kwargs) -> list[Job]:
    kwargs.setdefault("cbr_fraction", CBR_FRACTION)
    return sweep_jobs("fig16", scale, **kwargs)


def reduce(results) -> Table:
    return reduce_sweep(results, metric="utilization", title=TITLE, notes=NOTES)


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
