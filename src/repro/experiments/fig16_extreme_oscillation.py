"""Figure 16: utilization under extreme 10:1 bandwidth oscillations.

Paper: with 10:1 changes in available bandwidth none of the mechanisms is
particularly successful, and for certain oscillation frequencies TFRC does
particularly badly relative to TCP.
"""

from __future__ import annotations

from repro.experiments.oscillation_utilization import sweep, table_from_sweep
from repro.experiments.runner import Table

__all__ = ["run"]


def run(scale: str = "fast", **kwargs) -> Table:
    results = sweep(scale, cbr_fraction=0.9, **kwargs)
    return table_from_sweep(
        results,
        metric="utilization",
        title="Figure 16: utilization vs CBR ON/OFF time (10:1 oscillation)",
        notes=(
            "Paper: all protocols suffer; TFRC is worst at some oscillation "
            "frequencies."
        ),
    )
