"""Extension: measuring responsiveness directly (Section 3's metric).

The paper defines **responsiveness** as the number of RTTs of persistent
congestion — one packet loss per round-trip time — until the sender halves
its sending rate: 1 RTT for TCP, and "the responsiveness of the currently
proposed TFRC schemes tends to vary between 4 and 6 round-trip times".

The measurement here follows the definition exactly: a flow is first held
at a steady operating point by mild periodic loss (so the control variable
is finite and stationary), then the loss process switches to one loss per
RTT, and we count RTTs until the sender's control variable (congestion
window for window-based senders, allowed rate for rate-based ones) falls
to half its value at the onset.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.experiments.protocols import Protocol, sqrt, tcp, tfrc
from repro.experiments.runner import Table
from repro.net.droppers import Dropper, PeriodicDropper, TimedDropper
from repro.net.packet import Packet
from repro.net.paths import single_path
from repro.sim.engine import Simulator

__all__ = [
    "SwitchDropper",
    "jobs",
    "measure_aggressiveness_pkts_per_rtt",
    "measure_responsiveness_rtts",
    "reduce",
    "run",
    "run_aggressiveness",
]


class SwitchDropper(Dropper):
    """Delegate to one dropper before ``t_switch`` and another after."""

    def __init__(self, t_switch: float, before: Dropper, after: Dropper, clock):
        super().__init__(clock)
        self.t_switch = t_switch
        self.before = before
        self.after = after

    def should_drop(self, packet: Packet) -> bool:
        active = self.before if self._clock() < self.t_switch else self.after
        return active.should_drop(packet)


def _control_variable(sender) -> float:
    """The sender's rate-determining state: cwnd or allowed rate."""
    if hasattr(sender, "cwnd"):
        return float(sender.cwnd)
    if hasattr(sender, "rate_bps"):
        return float(sender.rate_bps)
    if hasattr(sender, "w"):
        return float(sender.w)
    raise TypeError(f"cannot find a control variable on {type(sender)!r}")


def measure_responsiveness_rtts(
    protocol: Protocol,
    rtt_s: float = 0.05,
    warmup_s: float = 40.0,
    observe_rtts: int = 400,
    bandwidth_bps: float = 1e7,
    steady_loss_period: int = 500,
) -> Optional[float]:
    """RTTs of one-loss-per-RTT congestion until the control halves.

    Returns None when the sender has not halved within ``observe_rtts``
    (effectively unresponsive on this timescale).
    """
    sim = Simulator()
    sender, receiver = protocol.make(sim)
    clock = lambda: sim.now  # noqa: E731 - tiny closure over the sim
    dropper = SwitchDropper(
        warmup_s,
        before=PeriodicDropper(steady_loss_period),
        after=TimedDropper(rtt_s, clock=clock, start_at=warmup_s),
        clock=clock,
    )
    single_path(
        sim, sender, receiver, rtt_s=rtt_s, bandwidth_bps=bandwidth_bps,
        dropper=dropper,
    )
    sender.start()
    sim.run(until=warmup_s)
    baseline = _control_variable(sender)
    if baseline <= 0:
        return None
    # Sample the control variable each RTT of the congestion period.
    samples: list[float] = []

    def sample() -> None:
        samples.append(_control_variable(sender))

    for k in range(1, observe_rtts + 1):
        sim.at(warmup_s + k * rtt_s, sample)
    sim.run(until=warmup_s + (observe_rtts + 1) * rtt_s)
    for k, value in enumerate(samples, start=1):
        if value <= baseline / 2.0:
            return float(k)
    return None


def default_protocols() -> list[tuple[str, Protocol, float]]:
    return [
        ("TCP(1/2)", tcp(2), 1.0),
        ("TCP(1/8)", tcp(8), 6.0),
        ("SQRT(1/2)", sqrt(2), math.nan),
        ("TFRC(6)", tfrc(6), 5.0),
        ("TFRC(256)", tfrc(256), math.nan),
    ]


def jobs(scale: str = "fast", observe_rtts: Optional[int] = None) -> list:
    from repro.experiments.jobs import indexed, job

    observe = (
        observe_rtts
        if observe_rtts is not None
        else (400 if scale == "fast" else 1000)
    )
    return indexed(
        job(
            "ext_responsiveness",
            "responsiveness",
            protocol=protocol,
            params={"observe_rtts": int(observe)},
            scale=scale,
            tags={"label": name, "reference": reference},
        )
        for name, protocol, reference in default_protocols()
    )


def reduce(results) -> Table:
    table = Table(
        title="Responsiveness: RTTs of one-loss-per-RTT congestion to halve the rate",
        columns=["protocol", "measured_rtts", "paper_reference"],
        notes=(
            "Paper (Section 3): TCP halves in 1 RTT; proposed TFRC variants "
            "in 4-6 RTTs; AIMD(b) needs ceil(log(.5)/log(1-b)) loss events; "
            "extreme variants do not halve on hundreds of RTTs ('-').  The "
            "measured values include ~2-4 RTTs of loss-detection (three "
            "dupacks), recovery-exit and sampling latency on top of the "
            "idealized decision count."
        ),
    )
    for result in results:
        measured = result.value
        table.add(
            result.job.tag("label"),
            measured if measured is not None else math.nan,
            result.job.tag("reference"),
        )
    return table


def run(scale: str = "fast", *, executor=None, cache=None, **overrides) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **overrides), executor, cache))


def measure_aggressiveness_pkts_per_rtt(
    protocol: Protocol,
    rtt_s: float = 0.05,
    warmup_s: float = 40.0,
    observe_rtts: int = 60,
    bandwidth_bps: float = 1e7,
    steady_loss_period: int = 200,
) -> float:
    """Maximum control-variable increase in one RTT once congestion ends.

    The paper (via Floyd et al.'s companion report) defines aggressiveness
    as the maximum increase in the sending rate in one RTT absent
    congestion: ``a`` packets/RTT for AIMD(a, b), and 0.14-0.28 packets/sec
    for TFRC depending on history discounting.  Here the flow is held at a
    steady point by periodic loss, the loss stops, and the largest per-RTT
    increase of the control variable (in packets per RTT) over the
    following RTTs is reported.
    """
    sim = Simulator()
    sender, receiver = protocol.make(sim)
    clock = lambda: sim.now  # noqa: E731 - tiny closure over the sim
    dropper = SwitchDropper(
        warmup_s,
        before=PeriodicDropper(steady_loss_period),
        after=PeriodicDropper(10**9),  # congestion ends
        clock=clock,
    )
    single_path(
        sim, sender, receiver, rtt_s=rtt_s, bandwidth_bps=bandwidth_bps,
        dropper=dropper,
    )
    sender.start()
    sim.run(until=warmup_s)
    packet_bits = getattr(sender, "packet_size", 1000) * 8.0

    def in_packets_per_rtt() -> float:
        value = _control_variable(sender)
        if hasattr(sender, "cwnd") or hasattr(sender, "w"):
            return value  # already a window in packets
        return value * rtt_s / packet_bits  # rate-based: bps -> pkts/RTT

    samples = [in_packets_per_rtt()]

    def sample() -> None:
        samples.append(in_packets_per_rtt())

    for k in range(1, observe_rtts + 1):
        sim.at(warmup_s + k * rtt_s, sample)
    sim.run(until=warmup_s + (observe_rtts + 1) * rtt_s)
    return max(b - a for a, b in zip(samples, samples[1:]))


def run_aggressiveness(scale: str = "fast", **overrides) -> Table:
    """Aggressiveness table: measured vs the analytic a(b) values."""
    from repro.cc.aimd import tcp_compatible_a

    protocols = [
        ("TCP(1/2)", tcp(2), tcp_compatible_a(0.5)),
        ("TCP(1/8)", tcp(8), tcp_compatible_a(0.125)),
        ("TFRC(6) no-disc", tfrc(6, history_discounting=False), math.nan),
        ("TFRC(6) disc", tfrc(6, history_discounting=True), math.nan),
    ]
    table = Table(
        title="Aggressiveness: max control increase per RTT absent congestion",
        columns=["protocol", "measured_pkts_per_rtt", "analytic_a"],
        notes=(
            "AIMD(a, b) increases by exactly a packets/RTT; TFRC's increase "
            "is far smaller and grows with history discounting (paper: "
            "0.14-0.28 packets/sec, i.e. ~0.007-0.014 packets/RTT at 50 ms)."
        ),
    )
    for name, protocol, analytic in protocols:
        measured = measure_aggressiveness_pkts_per_rtt(protocol)
        table.add(name, measured, analytic)
    return table
