"""Experiment result tables and formatting.

Every figure module produces a :class:`Table`: named columns, one row per
simulation point, and free-form notes recording the paper's corresponding
claim.  The benchmark harness prints these tables, giving the same
rows/series the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Table", "pick_config"]


def pick_config(config_cls: type, scale: str, **overrides: Any):
    """Build a scenario config at ``scale`` ("fast" or "paper").

    Unknown override names raise a :class:`TypeError` that names the
    config class and its valid fields, instead of the bare dataclass
    constructor error.
    """
    if scale not in ("fast", "paper"):
        raise ValueError(f"unknown scale {scale!r}; use 'fast' or 'paper'")
    try:
        if scale == "fast":
            return config_cls.fast(**overrides)
        return config_cls(**overrides)
    except TypeError as exc:
        import dataclasses

        if dataclasses.is_dataclass(config_cls):
            valid = [f.name for f in dataclasses.fields(config_cls)]
            unknown = sorted(set(overrides) - set(valid))
            if unknown:
                raise TypeError(
                    f"unknown {config_cls.__name__} override(s) "
                    f"{', '.join(map(repr, unknown))}; "
                    f"valid fields: {', '.join(valid)}"
                ) from exc
        raise


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A formatted experiment result."""

    title: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: str = ""

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def _column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r} in table {self.title!r}; "
                f"available columns: {', '.join(self.columns)}"
            ) from None

    def column(self, name: str) -> list[Any]:
        """All values of one column, by name.

        Raises :class:`KeyError` naming the available columns when
        ``name`` is not one of them.
        """
        index = self._column_index(name)
        return [row[index] for row in self.rows]

    def rows_where(self, name: str, value: Any) -> list[tuple]:
        """Rows whose ``name`` column equals ``value`` (KeyError if absent)."""
        index = self._column_index(name)
        return [row for row in self.rows if row[index] == value]

    def format(self) -> str:
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
            for i, header in enumerate(self.columns)
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(w) for h, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()
