"""Shared harness for Figures 14-16: utilization under oscillation.

Ten identical flows (all using the same congestion control) compete with an
ON/OFF CBR source.  The x-axis is the CBR ON(=OFF) time; the y-axis either
the flows' aggregate throughput as a fraction of the mean available
bandwidth (Figures 14/16) or the packet drop rate (Figure 15).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import OscillationConfig, OscillationResult, run_oscillation

__all__ = ["default_protocols", "default_on_times", "sweep", "table_from_sweep"]


def default_protocols() -> list[Protocol]:
    return [tcp(8), tcp(2), tfrc(6)]


def default_on_times(scale: str) -> list[float]:
    if scale == "fast":
        return [0.05, 0.2, 0.8, 3.2]
    return [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4]


def sweep(
    scale: str = "fast",
    cbr_fraction: float = 2.0 / 3.0,
    on_times: Sequence[float] | None = None,
    protocols: list[Protocol] | None = None,
    n_flows: int | None = None,
    **overrides,
) -> dict[tuple[str, float], OscillationResult]:
    """Identical-flow oscillation runs across protocols x ON times."""
    cfg = pick_config(OscillationConfig, scale, cbr_fraction=cbr_fraction, **overrides)
    if n_flows is None:
        n_flows = 10 if scale == "paper" else 6
    from dataclasses import replace

    cfg = replace(cfg, n_flows_a=n_flows, n_flows_b=0)
    results: dict[tuple[str, float], OscillationResult] = {}
    for protocol in protocols if protocols is not None else default_protocols():
        for on_s in on_times if on_times is not None else default_on_times(scale):
            # ON time == OFF time; the square-wave period is twice that.
            results[(protocol.name, on_s)] = run_oscillation(
                protocol, None, 2.0 * on_s, cfg
            )
    return results


def table_from_sweep(
    results: dict[tuple[str, float], OscillationResult],
    metric: str,
    title: str,
    notes: str,
) -> Table:
    table = Table(title=title, columns=["protocol", "on_off_s", "value"], notes=notes)
    for (name, on_s), result in sorted(results.items()):
        value = result.utilization if metric == "utilization" else result.drop_rate
        table.add(name, on_s, value)
    return table
