"""Shared harness for Figures 14-16: utilization under oscillation.

Ten identical flows (all using the same congestion control) compete with an
ON/OFF CBR source.  The x-axis is the CBR ON(=OFF) time; the y-axis either
the flows' aggregate throughput as a fraction of the mean available
bandwidth (Figures 14/16) or the packet drop rate (Figure 15).

``sweep_jobs``/``reduce_sweep`` are the declarative pipeline used by the
figure modules; ``sweep``/``table_from_sweep`` remain for callers (such as
the benchmark suite) that want the rich :class:`OscillationResult` objects.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import OscillationConfig, OscillationResult, run_oscillation

__all__ = [
    "default_protocols",
    "default_on_times",
    "reduce_sweep",
    "sweep",
    "sweep_jobs",
    "table_from_sweep",
]


def default_protocols() -> list[Protocol]:
    return [tcp(8), tcp(2), tfrc(6)]


def default_on_times(scale: str) -> list[float]:
    if scale == "fast":
        return [0.05, 0.2, 0.8, 3.2]
    return [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4]


def _sweep_config(
    scale: str,
    cbr_fraction: float,
    n_flows: int | None,
    **overrides,
) -> OscillationConfig:
    cfg = pick_config(OscillationConfig, scale, cbr_fraction=cbr_fraction, **overrides)
    if n_flows is None:
        n_flows = 10 if scale == "paper" else 6
    return replace(cfg, n_flows_a=n_flows, n_flows_b=0)


def sweep_jobs(
    figure: str,
    scale: str = "fast",
    cbr_fraction: float = 2.0 / 3.0,
    on_times: Sequence[float] | None = None,
    protocols: list[Protocol] | None = None,
    n_flows: int | None = None,
    **overrides,
) -> list[Job]:
    """One job per (protocol, ON time): identical-flow oscillation runs."""
    cfg = _sweep_config(scale, cbr_fraction, n_flows, **overrides)
    return indexed(
        job(
            figure,
            "oscillation",
            config=cfg,
            protocol=protocol,
            # ON time == OFF time; the square-wave period is twice that.
            params={"period_s": 2.0 * float(on_s), "protocol_b": None},
            scale=scale,
            tags={"on_s": float(on_s)},
        )
        for protocol in (protocols if protocols is not None else default_protocols())
        for on_s in (on_times if on_times is not None else default_on_times(scale))
    )


def reduce_sweep(results, metric: str, title: str, notes: str) -> Table:
    """Fold oscillation payloads into the Figures 14-16 table shape."""
    table = Table(title=title, columns=["protocol", "on_off_s", "value"], notes=notes)
    keyed = {
        (result.value["protocol_a"], result.job.tag("on_s")): result.value
        for result in results
    }
    for (name, on_s), payload in sorted(keyed.items()):
        value = payload["utilization"] if metric == "utilization" else payload["drop_rate"]
        table.add(name, on_s, value)
    return table


def sweep(
    scale: str = "fast",
    cbr_fraction: float = 2.0 / 3.0,
    on_times: Sequence[float] | None = None,
    protocols: list[Protocol] | None = None,
    n_flows: int | None = None,
    **overrides,
) -> dict[tuple[str, float], OscillationResult]:
    """Identical-flow oscillation runs across protocols x ON times.

    Legacy serial entry point returning the rich result objects; the
    figure modules themselves go through ``sweep_jobs``/``reduce_sweep``.
    """
    cfg = _sweep_config(scale, cbr_fraction, n_flows, **overrides)
    results: dict[tuple[str, float], OscillationResult] = {}
    for protocol in protocols if protocols is not None else default_protocols():
        for on_s in on_times if on_times is not None else default_on_times(scale):
            # ON time == OFF time; the square-wave period is twice that.
            results[(protocol.name, on_s)] = run_oscillation(
                protocol, None, 2.0 * on_s, cfg
            )
    return results


def table_from_sweep(
    results: dict[tuple[str, float], OscillationResult],
    metric: str,
    title: str,
    notes: str,
) -> Table:
    table = Table(title=title, columns=["protocol", "on_off_s", "value"], notes=notes)
    for (name, on_s), result in sorted(results.items()):
        value = result.utilization if metric == "utilization" else result.drop_rate
        table.add(name, on_s, value)
    return table
