"""Named protocol factories matching the paper's notation.

The paper parameterizes each family by a slowness parameter gamma:
TCP(1/gamma), RAP(1/gamma), SQRT(1/gamma) use multiplicative decrease
b = 1/gamma; TFRC(gamma) averages gamma loss intervals.  These factories
produce fresh (sender, receiver) pairs per flow so experiments can spawn
any number of identical flows.

Every factory also records a declarative :class:`ProtocolSpec` on the
returned :class:`Protocol`.  A spec is a pure ``(family, params)`` value:
picklable, hashable and content-addressable, so the experiment job layer
(:mod:`repro.experiments.jobs`) can ship protocol descriptions to worker
processes and into the on-disk result cache, then rebuild the live
``Protocol`` with :meth:`ProtocolSpec.build`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.cc.base import Receiver, Sender
from repro.cc.binomial import iiad_rule, sqrt_rule, tcp_rule
from repro.cc.rap import new_rap_flow
from repro.cc.tcp import new_tcp_flow
from repro.cc.tear import new_tear_flow
from repro.cc.tfrc import new_tfrc_flow
from repro.sim.engine import Simulator
from repro.units import Bytes, Ratio

__all__ = [
    "PROTOCOL_FAMILIES",
    "Protocol",
    "ProtocolSpec",
    "spec_of",
    "tcp",
    "tcp_b",
    "sqrt",
    "iiad",
    "rap",
    "tfrc",
    "tear",
    "standard_gammas",
]

AgentPair = Callable[[Simulator], "tuple[Sender, Receiver]"]


@dataclass(frozen=True)
class ProtocolSpec:
    """A declarative, picklable description of a protocol configuration.

    ``family`` names a factory in :data:`PROTOCOL_FAMILIES`; ``params`` is
    a sorted tuple of ``(name, value)`` keyword arguments for it.  Two
    specs compare (and hash) equal exactly when they describe the same
    configuration, which is what makes experiment jobs content-addressable.
    """

    family: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, family: str, **params: Any) -> "ProtocolSpec":
        return cls(family=family, params=tuple(sorted(params.items())))

    def build(self) -> "Protocol":
        """Reconstruct the live :class:`Protocol` this spec describes."""
        try:
            factory = PROTOCOL_FAMILIES[self.family]
        except KeyError:
            raise KeyError(
                f"unknown protocol family {self.family!r}; "
                f"available: {', '.join(sorted(PROTOCOL_FAMILIES))}"
            ) from None
        return factory(**dict(self.params))

    def describe(self) -> dict:
        """A canonical JSON-able description (used for content hashing)."""
        return {
            "__protocol__": self.family,
            "params": {name: value for name, value in self.params},
        }


@dataclass(frozen=True)
class Protocol:
    """A named congestion-control configuration."""

    name: str
    make: AgentPair
    rate_based: bool = False
    self_clocked: bool = True
    spec: Optional[ProtocolSpec] = field(default=None, compare=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def spec_of(protocol: Union[Protocol, ProtocolSpec]) -> ProtocolSpec:
    """The :class:`ProtocolSpec` for a protocol (or a spec, unchanged).

    Raises a clear ``TypeError`` for hand-rolled :class:`Protocol` objects
    that carry no spec: those hold arbitrary callables and cannot be
    shipped to worker processes or content-addressed.
    """
    if isinstance(protocol, ProtocolSpec):
        return protocol
    if isinstance(protocol, Protocol):
        if protocol.spec is None:
            raise TypeError(
                f"protocol {protocol.name!r} has no declarative spec; build it "
                "with a factory from repro.experiments.protocols (tcp, sqrt, "
                "rap, tfrc, ...) or pass a ProtocolSpec directly"
            )
        return protocol.spec
    raise TypeError(f"expected Protocol or ProtocolSpec, got {type(protocol)!r}")


def standard_gammas() -> list[int]:
    """The gamma sweep used by Figures 4 and 5: 1 to 256."""
    return [1, 2, 4, 8, 16, 32, 64, 128, 256]


def tcp(gamma: float = 2.0, packet_size: Bytes = 1000) -> Protocol:
    """TCP(1/gamma): window-based AIMD with the full TCP machinery."""
    return tcp_b(1.0 / gamma, packet_size)


def tcp_b(b: Ratio, packet_size: Bytes = 1000) -> Protocol:
    """TCP(b) by decrease factor (TCP(0.5) is standard TCP)."""
    return Protocol(
        name=f"TCP({b:g})",
        make=lambda sim: new_tcp_flow(sim, rule=tcp_rule(b), packet_size=packet_size),
        spec=ProtocolSpec.of("tcp_b", b=float(b), packet_size=int(packet_size)),
    )


def sqrt(gamma: float = 2.0, packet_size: Bytes = 1000) -> Protocol:
    """SQRT(1/gamma): the k = l = 1/2 binomial on the TCP machinery."""
    b = 1.0 / gamma
    return Protocol(
        name=f"SQRT({b:g})",
        make=lambda sim: new_tcp_flow(sim, rule=sqrt_rule(b), packet_size=packet_size),
        spec=ProtocolSpec.of("sqrt", gamma=float(gamma), packet_size=int(packet_size)),
    )


def iiad(b: Ratio = 1.0, packet_size: Bytes = 1000) -> Protocol:
    """IIAD: inverse-increase additive-decrease binomial."""
    return Protocol(
        name="IIAD",
        make=lambda sim: new_tcp_flow(sim, rule=iiad_rule(b), packet_size=packet_size),
        spec=ProtocolSpec.of("iiad", b=float(b), packet_size=int(packet_size)),
    )


def rap(gamma: float = 2.0, packet_size: Bytes = 1000) -> Protocol:
    """RAP(1/gamma): rate-based AIMD, no self-clocking."""
    b = 1.0 / gamma
    return Protocol(
        name=f"RAP({b:g})",
        make=lambda sim: new_rap_flow(sim, b=b, packet_size=packet_size),
        rate_based=True,
        self_clocked=False,
        spec=ProtocolSpec.of("rap", gamma=float(gamma), packet_size=int(packet_size)),
    )


def tfrc(
    k: int = 6,
    conservative: bool = False,
    history_discounting: bool = True,
    packet_size: Bytes = 1000,
) -> Protocol:
    """TFRC(k), optionally with the paper's self-clocking (conservative_)."""
    suffix = "+SC" if conservative else ""
    return Protocol(
        name=f"TFRC({k}){suffix}",
        make=lambda sim: new_tfrc_flow(
            sim,
            n_intervals=k,
            conservative=conservative,
            history_discounting=history_discounting,
            packet_size=packet_size,
        ),
        rate_based=True,
        self_clocked=conservative,
        spec=ProtocolSpec.of(
            "tfrc",
            k=int(k),
            conservative=bool(conservative),
            history_discounting=bool(history_discounting),
            packet_size=int(packet_size),
        ),
    )


def tear(epochs: int = 8, packet_size: Bytes = 1000) -> Protocol:
    """TEAR: receiver-based TCP emulation (extension; not in the figures)."""
    return Protocol(
        name=f"TEAR({epochs})",
        make=lambda sim: new_tear_flow(sim, epochs=epochs, packet_size=packet_size),
        rate_based=True,
        self_clocked=False,
        spec=ProtocolSpec.of("tear", epochs=int(epochs), packet_size=int(packet_size)),
    )


#: Registry mapping spec family names to the factories above.  Keys are the
#: vocabulary :class:`ProtocolSpec` understands; extend it to register new
#: protocol families with the declarative job layer.
PROTOCOL_FAMILIES: dict[str, Callable[..., Protocol]] = {
    "tcp": tcp,
    "tcp_b": tcp_b,
    "sqrt": sqrt,
    "iiad": iiad,
    "rap": rap,
    "tfrc": tfrc,
    "tear": tear,
}
