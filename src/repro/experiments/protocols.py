"""Named protocol factories matching the paper's notation.

The paper parameterizes each family by a slowness parameter gamma:
TCP(1/gamma), RAP(1/gamma), SQRT(1/gamma) use multiplicative decrease
b = 1/gamma; TFRC(gamma) averages gamma loss intervals.  These factories
produce fresh (sender, receiver) pairs per flow so experiments can spawn
any number of identical flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cc.base import Receiver, Sender
from repro.cc.binomial import iiad_rule, sqrt_rule, tcp_rule
from repro.cc.rap import new_rap_flow
from repro.cc.tcp import new_tcp_flow
from repro.cc.tear import new_tear_flow
from repro.cc.tfrc import new_tfrc_flow
from repro.sim.engine import Simulator

__all__ = [
    "Protocol",
    "tcp",
    "tcp_b",
    "sqrt",
    "iiad",
    "rap",
    "tfrc",
    "tear",
    "standard_gammas",
]

AgentPair = Callable[[Simulator], "tuple[Sender, Receiver]"]


@dataclass(frozen=True)
class Protocol:
    """A named congestion-control configuration."""

    name: str
    make: AgentPair
    rate_based: bool = False
    self_clocked: bool = True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def standard_gammas() -> list[int]:
    """The gamma sweep used by Figures 4 and 5: 1 to 256."""
    return [1, 2, 4, 8, 16, 32, 64, 128, 256]


def tcp(gamma: float = 2.0, packet_size: int = 1000) -> Protocol:
    """TCP(1/gamma): window-based AIMD with the full TCP machinery."""
    return tcp_b(1.0 / gamma, packet_size)


def tcp_b(b: float, packet_size: int = 1000) -> Protocol:
    """TCP(b) by decrease factor (TCP(0.5) is standard TCP)."""
    return Protocol(
        name=f"TCP({b:g})",
        make=lambda sim: new_tcp_flow(sim, rule=tcp_rule(b), packet_size=packet_size),
    )


def sqrt(gamma: float = 2.0, packet_size: int = 1000) -> Protocol:
    """SQRT(1/gamma): the k = l = 1/2 binomial on the TCP machinery."""
    b = 1.0 / gamma
    return Protocol(
        name=f"SQRT({b:g})",
        make=lambda sim: new_tcp_flow(sim, rule=sqrt_rule(b), packet_size=packet_size),
    )


def iiad(b: float = 1.0, packet_size: int = 1000) -> Protocol:
    """IIAD: inverse-increase additive-decrease binomial."""
    return Protocol(
        name="IIAD",
        make=lambda sim: new_tcp_flow(sim, rule=iiad_rule(b), packet_size=packet_size),
    )


def rap(gamma: float = 2.0, packet_size: int = 1000) -> Protocol:
    """RAP(1/gamma): rate-based AIMD, no self-clocking."""
    b = 1.0 / gamma
    return Protocol(
        name=f"RAP({b:g})",
        make=lambda sim: new_rap_flow(sim, b=b, packet_size=packet_size),
        rate_based=True,
        self_clocked=False,
    )


def tfrc(
    k: int = 6,
    conservative: bool = False,
    history_discounting: bool = True,
    packet_size: int = 1000,
) -> Protocol:
    """TFRC(k), optionally with the paper's self-clocking (conservative_)."""
    suffix = "+SC" if conservative else ""
    return Protocol(
        name=f"TFRC({k}){suffix}",
        make=lambda sim: new_tfrc_flow(
            sim,
            n_intervals=k,
            conservative=conservative,
            history_discounting=history_discounting,
            packet_size=packet_size,
        ),
        rate_based=True,
        self_clocked=conservative,
    )


def tear(epochs: int = 8, packet_size: int = 1000) -> Protocol:
    """TEAR: receiver-based TCP emulation (extension; not in the figures)."""
    return Protocol(
        name=f"TEAR({epochs})",
        make=lambda sim: new_tear_flow(sim, epochs=epochs, packet_size=packet_size),
        rate_based=True,
        self_clocked=False,
    )
