"""Figure 14: effect of 3:1 bandwidth oscillation on link utilization.

Paper: short CBR bursts (ON/OFF of 50 ms) are absorbed by the RED queue and
throughput stays high for TCP(1/8), TCP and TFRC(6) alike; ON/OFF times
near 200 ms (4 RTTs) cost every protocol, dropping the flows below ~80% of
the available bandwidth.
"""

from __future__ import annotations

from repro.experiments.jobs import Job
from repro.experiments.oscillation_utilization import reduce_sweep, sweep_jobs
from repro.experiments.runner import Table

__all__ = ["jobs", "reduce", "run"]

CBR_FRACTION = 2.0 / 3.0
TITLE = "Figure 14: utilization vs CBR ON/OFF time (3:1 oscillation)"
NOTES = (
    "Paper: high utilization at 50 ms ON/OFF; a dip below ~0.8 around "
    "ON/OFF = 4 RTTs for all three protocols."
)


def jobs(scale: str = "fast", **kwargs) -> list[Job]:
    kwargs.setdefault("cbr_fraction", CBR_FRACTION)
    return sweep_jobs("fig14", scale, **kwargs)


def reduce(results) -> Table:
    return reduce_sweep(results, metric="utilization", title=TITLE, notes=NOTES)


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
