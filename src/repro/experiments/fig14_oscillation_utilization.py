"""Figure 14: effect of 3:1 bandwidth oscillation on link utilization.

Paper: short CBR bursts (ON/OFF of 50 ms) are absorbed by the RED queue and
throughput stays high for TCP(1/8), TCP and TFRC(6) alike; ON/OFF times
near 200 ms (4 RTTs) cost every protocol, dropping the flows below ~80% of
the available bandwidth.
"""

from __future__ import annotations

from repro.experiments.oscillation_utilization import sweep, table_from_sweep
from repro.experiments.runner import Table

__all__ = ["run"]


def run(scale: str = "fast", **kwargs) -> Table:
    results = sweep(scale, cbr_fraction=2.0 / 3.0, **kwargs)
    return table_from_sweep(
        results,
        metric="utilization",
        title="Figure 14: utilization vs CBR ON/OFF time (3:1 oscillation)",
        notes=(
            "Paper: high utilization at 50 ms ON/OFF; a dip below ~0.8 around "
            "ON/OFF = 4 RTTs for all three protocols."
        ),
    )
