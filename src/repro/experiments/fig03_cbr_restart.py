"""Figure 3: drop-rate time series when a CBR source restarts.

Paper: after the CBR source restarts at t = 180 s (following a 30 s idle
period), the network sees a transient drop-rate spike of roughly 40% for at
least one RTT; self-clocked algorithms return to the steady drop rate
within tens of RTTs, while very slow rate-based algorithms (TFRC(256)
without self-clocking) hold the network in overload for hundreds of RTTs.
"""

from __future__ import annotations

from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import CbrRestartConfig, run_cbr_restart

__all__ = ["default_protocols", "run"]


def default_protocols() -> list[Protocol]:
    return [
        tcp(2),
        tcp(256),
        tfrc(256),
        tfrc(256, conservative=True),
    ]


def run(scale: str = "fast", protocols: list[Protocol] | None = None, **overrides) -> Table:
    """Drop-rate series around the restart, one row per (protocol, time)."""
    cfg = pick_config(CbrRestartConfig, scale, **overrides)
    table = Table(
        title="Figure 3: drop rate after a CBR restart",
        columns=["protocol", "time_s", "loss_rate"],
        notes=(
            f"CBR on (0, {cfg.cbr_stop}) s, idle, on again at {cfg.cbr_restart} s. "
            "Paper: ~40% spike for >= 1 RTT, then recovery whose duration "
            "depends on the algorithm's response time; rate-based slow "
            "algorithms stay in overload for hundreds of RTTs."
        ),
    )
    for protocol in protocols if protocols is not None else default_protocols():
        result = run_cbr_restart(protocol, cfg)
        for t, rate in result.loss_series:
            if t >= cfg.cbr_restart - 2.0:
                table.add(result.protocol, t, rate)
    return table
