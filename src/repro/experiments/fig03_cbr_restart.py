"""Figure 3: drop-rate time series when a CBR source restarts.

Paper: after the CBR source restarts at t = 180 s (following a 30 s idle
period), the network sees a transient drop-rate spike of roughly 40% for at
least one RTT; self-clocked algorithms return to the steady drop rate
within tens of RTTs, while very slow rate-based algorithms (TFRC(256)
without self-clocking) hold the network in overload for hundreds of RTTs.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import CbrRestartConfig

__all__ = ["default_protocols", "jobs", "reduce", "run"]


def default_protocols() -> list[Protocol]:
    return [
        tcp(2),
        tcp(256),
        tfrc(256),
        tfrc(256, conservative=True),
    ]


def jobs(
    scale: str = "fast",
    protocols: Sequence[Protocol] | None = None,
    **overrides,
) -> list[Job]:
    """One CBR-restart job per protocol."""
    cfg = pick_config(CbrRestartConfig, scale, **overrides)
    return indexed(
        job("fig03", "cbr_restart", config=cfg, protocol=protocol, scale=scale)
        for protocol in (protocols if protocols is not None else default_protocols())
    )


def reduce(results) -> Table:
    """Drop-rate series around the restart, one row per (protocol, time)."""
    cfg = results[0].job.config
    table = Table(
        title="Figure 3: drop rate after a CBR restart",
        columns=["protocol", "time_s", "loss_rate"],
        notes=(
            f"CBR on (0, {cfg.cbr_stop}) s, idle, on again at {cfg.cbr_restart} s. "
            "Paper: ~40% spike for >= 1 RTT, then recovery whose duration "
            "depends on the algorithm's response time; rate-based slow "
            "algorithms stay in overload for hundreds of RTTs."
        ),
    )
    for result in results:
        for t, rate in result.value["series"]:
            if t >= cfg.cbr_restart - 2.0:
                table.add(result.value["protocol"], t, rate)
    return table


def run(
    scale: str = "fast",
    protocols: Sequence[Protocol] | None = None,
    *,
    executor=None,
    cache=None,
    **overrides,
) -> Table:
    from repro.experiments.executor import execute

    return reduce(
        execute(jobs(scale, protocols=protocols, **overrides), executor, cache)
    )
