"""Declarative experiment jobs: the unit of work behind every figure.

The experiment layer is split into three stages:

1. **Define** — each figure module exposes ``jobs(scale) -> list[Job]``.
   A :class:`Job` is a pure, picklable description of one simulation
   point: ``(scenario, scenario_config, protocol_spec, params, seed,
   scale)``.  Jobs carry a stable content hash so identical work is
   recognized across figures, runs and processes.
2. **Execute** — an executor from :mod:`repro.experiments.executor` maps
   :func:`execute_job` over the jobs (serially or across a process pool)
   and returns results in job order, optionally consulting the
   content-addressed cache in :mod:`repro.experiments.cache`.
3. **Reduce** — each figure module exposes ``reduce(results) -> Table``
   which folds the per-job payloads into the figure's table.  Reduction
   is pure formatting: it never runs simulations.

Job payloads are restricted to JSON-native values (dicts with string
keys, lists, strings, floats, ints, bools, None) so that a result read
back from the cache is byte-identical to one computed in process, and so
parallel execution cannot perturb output formatting.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.experiments.protocols import Protocol, ProtocolSpec, spec_of

__all__ = [
    "DropperSpec",
    "Job",
    "SCENARIOS",
    "canonical",
    "cbr_restart_payload",
    "content_hash",
    "execute_job",
    "indexed",
    "job",
    "oscillation_payload",
    "scenario",
]

#: Bump when the meaning of job payloads changes; combined with the
#: library version it salts the on-disk result cache (see
#: :mod:`repro.experiments.cache`), so stale blobs are never reused.
JOBS_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Declarative specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DropperSpec:
    """A picklable description of an imposed loss pattern.

    ``kind`` selects the dropper class; ``args`` its positional payload:

    * ``("count", gaps)`` — :class:`~repro.net.droppers.CountBasedDropper`
      with the given arrival-gap cycle;
    * ``("phase", phases)`` — :class:`~repro.net.droppers.PhaseDropper`
      with ``(duration_s, drop_every_n)`` phases;
    * ``("periodic", (period,))`` — drop every Nth packet;
    * ``("bernoulli", (p, seed))`` — independent loss with probability p.
    """

    kind: str
    args: tuple = ()

    @classmethod
    def count(cls, gaps: Sequence[int]) -> "DropperSpec":
        return cls("count", tuple(int(g) for g in gaps))

    @classmethod
    def phase(cls, phases: Sequence[tuple[float, int]]) -> "DropperSpec":
        return cls("phase", tuple((float(d), int(n)) for d, n in phases))

    def build(self, sim):
        """Instantiate the live dropper against a simulator clock."""
        from repro.net.droppers import (
            BernoulliDropper,
            CountBasedDropper,
            PeriodicDropper,
            PhaseDropper,
        )

        clock = lambda: sim.now  # noqa: E731 - tiny closure over the sim
        if self.kind == "count":
            return CountBasedDropper(list(self.args), clock=clock)
        if self.kind == "phase":
            return PhaseDropper([tuple(p) for p in self.args], clock=clock)
        if self.kind == "periodic":
            return PeriodicDropper(int(self.args[0]), clock=clock)
        if self.kind == "bernoulli":
            import random

            p, seed = self.args
            return BernoulliDropper(float(p), rng=random.Random(int(seed)), clock=clock)
        raise KeyError(
            f"unknown dropper kind {self.kind!r}; "
            "available: count, phase, periodic, bernoulli"
        )

    def describe(self) -> dict:
        return {"__dropper__": self.kind, "args": canonical(self.args)}


# ---------------------------------------------------------------------------
# Canonical encoding and hashing
# ---------------------------------------------------------------------------


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-able form for content hashing.

    Handles the vocabulary jobs are built from: primitives, lists/tuples,
    dicts with string keys, :class:`ProtocolSpec`, :class:`DropperSpec`
    and frozen config dataclasses (encoded with their class name so two
    different config types never collide).
    """
    if obj is None or isinstance(obj, (str, bool, int)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, ProtocolSpec):
        return obj.describe()
    if isinstance(obj, DropperSpec):
        return obj.describe()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        desc: dict[str, Any] = {"__config__": type(obj).__qualname__}
        for fld in dataclasses.fields(obj):
            desc[fld.name] = canonical(getattr(obj, fld.name))
        return desc
    if isinstance(obj, dict):
        return {str(key): canonical(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical(value) for value in obj]
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for job hashing; "
        "jobs must be built from primitives, dataclass configs, "
        "ProtocolSpec and DropperSpec values"
    )


def content_hash(description: Any) -> str:
    """Stable SHA-256 over a canonical JSON encoding of ``description``."""
    text = json.dumps(
        canonical(description), sort_keys=True, separators=(",", ":"), allow_nan=True
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Job
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Job:
    """One simulation (or analysis) point, described declaratively.

    ``scenario`` names an entry in :data:`SCENARIOS`; ``config`` is the
    scenario's frozen config dataclass; ``protocol`` the protocol under
    test; ``params`` extra computational inputs (square-wave period,
    dropper spec, ...).  ``tags`` carry display-only keys for ``reduce``
    (family labels, sweep coordinates already implied by the protocol) and
    are **excluded** from the content hash, as are ``figure`` and
    ``index`` — so Figures 4 and 5, which share a sweep, share cache
    entries too.
    """

    figure: str  # simlint: disable=H001(figure routes results to reduce() but is deliberately outside the hash so fig04/fig05 share cache entries)
    scenario: str
    config: Any = None
    protocol: Optional[ProtocolSpec] = None
    params: tuple[tuple[str, Any], ...] = ()
    seed: Optional[int] = None
    scale: str = "fast"
    tags: tuple[tuple[str, Any], ...] = dataclasses.field(default=(), compare=False)
    index: int = dataclasses.field(default=0, compare=False)
    # Record a telemetry trace while executing.  Excluded from the content
    # hash (compare=False) so tracing never forks the result cache: a traced
    # and an untraced run of the same point share one cache entry.
    trace: bool = dataclasses.field(default=False, compare=False)

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def tag(self, name: str, default: Any = None) -> Any:
        for key, value in self.tags:
            if key == name:
                return value
        return default

    def describe(self) -> dict:
        """The hashed identity of this job (figure/tags/index excluded)."""
        return {
            "scenario": self.scenario,
            "config": canonical(self.config),
            "protocol": canonical(self.protocol),
            "params": canonical(dict(self.params)),
            "seed": self.seed,
            "scale": self.scale,
        }

    @property
    def content_hash(self) -> str:
        """Stable across processes and platforms for identical work."""
        return content_hash(self.describe())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        proto = self.protocol.family if self.protocol else None
        return (
            f"<Job {self.figure}#{self.index} scenario={self.scenario} "
            f"protocol={proto} seed={self.seed} scale={self.scale}>"
        )


def job(
    figure: str,
    scenario_name: str,
    *,
    config: Any = None,
    protocol: Union[Protocol, ProtocolSpec, None] = None,
    seed: Optional[int] = None,
    scale: str = "fast",
    params: Optional[dict[str, Any]] = None,
    tags: Optional[dict[str, Any]] = None,
) -> Job:
    """Build a :class:`Job`, normalizing protocols to specs."""
    return Job(
        figure=figure,
        scenario=scenario_name,
        config=config,
        protocol=spec_of(protocol) if protocol is not None else None,
        params=tuple(sorted((params or {}).items())),
        seed=seed,
        scale=scale,
        tags=tuple(sorted((tags or {}).items())),
    )


def indexed(jobs: Iterable[Job]) -> list[Job]:
    """Assign sequential indices; executors restore this order."""
    return [replace(j, index=i) for i, j in enumerate(jobs)]


# ---------------------------------------------------------------------------
# Scenario registry and execution
# ---------------------------------------------------------------------------

SCENARIOS: dict[str, Callable[[Job], Any]] = {}


def scenario(name: str) -> Callable:
    """Register a scenario runner under ``name`` (decorator)."""

    def register(fn: Callable[[Job], Any]) -> Callable[[Job], Any]:
        SCENARIOS[name] = fn
        return fn

    return register


def execute_job(jb: Job, fault: Optional[Callable[[Job], None]] = None) -> Any:
    """Run one job and return its JSON-native payload.

    This is the function worker processes execute; it is importable at
    module top level so jobs can be dispatched through a process pool.

    ``fault`` is an optional deterministic fault-injection hook (see
    :mod:`repro.experiments.faults`): it is called with the job before
    the scenario runs and may raise, stall or kill the process, letting
    tests prove the executor's retry/timeout/degradation paths produce
    byte-identical results to a clean run.  Executors only pass a fault
    to pool workers, never to in-process execution.
    """
    if fault is not None:
        fault(jb)
    try:
        fn = SCENARIOS[jb.scenario]
    except KeyError:
        raise KeyError(
            f"unknown scenario {jb.scenario!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
    if not jb.trace:
        return fn(jb)
    from repro.telemetry import Recorder, capture

    recorder = Recorder()
    recorder.annotate("job", jb.describe())
    recorder.annotate("scenario", jb.scenario)
    with capture(recorder):
        value = fn(jb)
    return {"__trace__": recorder.export_text(), "value": value}


def _series(timeseries) -> list[list[float]]:
    return [[t, v] for t, v in timeseries]


def cbr_restart_payload(result) -> dict:
    """JSON payload for one cbr_restart point (shared with trace replay)."""
    return {
        "protocol": result.protocol,
        "steady_loss_rate": result.steady_loss_rate,
        "spike_loss_rate": result.spike_loss_rate,
        "time_rtts": result.stabilization.time_rtts,
        "time_s": result.stabilization.time_s,
        "cost": result.stabilization.cost,
        "stabilized": result.stabilization.stabilized,
        "series": _series(result.loss_series),
    }


def oscillation_payload(result) -> dict:
    """JSON payload for one oscillation point (shared with trace replay)."""
    return {
        "protocol_a": result.protocol_a,
        "protocol_b": result.protocol_b,
        "period_s": result.period_s,
        "mean_a": result.mean_a,
        "mean_b": result.mean_b,
        "shares_a": list(result.shares_a),
        "shares_b": list(result.shares_b),
        "utilization": result.utilization,
        "drop_rate": result.drop_rate,
    }


@scenario("cbr_restart")
def _cbr_restart(jb: Job) -> dict:
    """Figures 3-5: stabilization after a CBR restart."""
    from repro.experiments.scenarios import run_cbr_restart

    result = run_cbr_restart(jb.protocol.build(), jb.config)
    return cbr_restart_payload(result)


@scenario("flash_crowd")
def _flash_crowd(jb: Job) -> dict:
    """Figure 6: a web flash crowd against SlowCC background traffic."""
    from repro.experiments.scenarios import run_flash_crowd

    result = run_flash_crowd(jb.protocol.build(), jb.config)
    return {
        "protocol": result.protocol,
        "background": _series(result.background_series),
        "crowd": _series(result.crowd_series),
        "crowd_completed": result.crowd_completed,
        "crowd_spawned": result.crowd_spawned,
        "crowd_share_during": result.crowd_share_during,
    }


@scenario("oscillation")
def _oscillation(jb: Job) -> dict:
    """Figures 7-9 and 14-16: square-wave available bandwidth."""
    from repro.experiments.scenarios import run_oscillation

    spec_b = jb.param("protocol_b")
    protocol_b = spec_b.build() if spec_b is not None else None
    result = run_oscillation(
        jb.protocol.build(), protocol_b, jb.param("period_s"), jb.config
    )
    return oscillation_payload(result)


@scenario("convergence")
def _convergence(jb: Job) -> float:
    """Figures 10 and 12: one seed of the two-flow convergence scenario.

    The job's config carries exactly one seed (the figure's ``jobs()``
    fans the config's seed tuple out into one job per seed), so the
    payload is that seed's δ-fair convergence time in seconds.
    """
    from repro.experiments.scenarios import run_convergence

    return run_convergence(jb.protocol.build(), jb.config)


@scenario("doubling")
def _doubling(jb: Job) -> dict:
    """Figure 13: f(k) utilization after the available bandwidth doubles."""
    from repro.experiments.scenarios import run_doubling

    result = run_doubling(jb.protocol.build(), jb.config)
    return {
        "protocol": result.protocol,
        "f_of_k": [[k, result.f_of_k[k]] for k in jb.config.ks],
    }


@scenario("loss_pattern")
def _loss_pattern(jb: Job) -> dict:
    """Figures 17-19: a single flow under a crafted loss pattern."""
    from repro.experiments.scenarios import run_loss_pattern

    dropper: DropperSpec = jb.param("dropper")
    result = run_loss_pattern(
        jb.protocol.build(), lambda sim: dropper.build(sim), jb.config
    )
    return {
        "protocol": result.protocol,
        "throughput_bps": result.throughput_bps,
        "smoothness_cov": result.smoothness.cov,
        "worst_ratio": result.smoothness.min_ratio,
        "rate_band": result.rate_band,
        "drops": result.drops,
    }


@scenario("analysis_acks")
def _analysis_acks(jb: Job) -> float:
    """Figure 11: closed-form E[#ACKs] to delta-fair convergence."""
    from repro.analysis.convergence import acks_to_fairness

    return acks_to_fairness(jb.param("b"), jb.param("p"), jb.param("delta"))


@scenario("timeout_models")
def _timeout_models(jb: Job) -> list[float]:
    """Figure 20: the three Appendix A response models at one drop rate."""
    from repro.analysis.timeouts import figure20_series

    row = figure20_series([jb.param("p")])[0]
    return [row.pure_aimd, row.aimd_with_timeouts, row.reno]


@scenario("responsiveness")
def _responsiveness(jb: Job) -> Optional[float]:
    """Extension: RTTs of persistent congestion until the rate halves."""
    from repro.experiments.ext_responsiveness import measure_responsiveness_rtts

    return measure_responsiveness_rtts(
        jb.protocol.build(), observe_rtts=jb.param("observe_rtts")
    )


@scenario("queue_dynamics")
def _queue_dynamics(jb: Job) -> dict:
    """Extension: queue occupancy and oscillation for one population."""
    from repro.experiments.ext_queue_dynamics import measure_queue_dynamics

    protocol = jb.protocol.build()
    mean_q, cov, loss = measure_queue_dynamics(protocol, jb.param("aqm"), jb.config)
    return {
        "protocol": protocol.name,
        "mean_queue_pkts": mean_q,
        "queue_cov": cov,
        "loss_rate": loss,
    }
