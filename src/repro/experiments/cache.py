"""Content-addressed on-disk cache for experiment job results.

Every :class:`~repro.experiments.jobs.Job` has a stable content hash over
its full declarative description.  The cache keys JSON result blobs by
``sha256(job_hash : salt)`` where the salt folds in the library version
and the job-schema version, so a code upgrade (or an explicit salt
override) invalidates every stale entry without deleting anything.

With a warm cache, re-running ``python -m repro run all`` performs zero
simulations: every job is answered from disk and only the (cheap) reduce
stage runs.  Hit/miss/store accounting is kept on :attr:`ResultCache.stats`
and surfaced by the CLI.

The cache also runs in memory-only mode (``root=None``) — used by the
benchmark harness to share sweeps between figures within one session.

Two storage layouts coexist under one key space:

* **Blob files** — ``root/ab/abcdef....json``, one atomic file per
  entry.  Written by plain :meth:`ResultCache.store` calls and for
  payloads above :data:`PACK_SMALL_LIMIT`.
* **Pack files** — ``root/ab/ab.pack``, an append-only sequence of
  length-prefixed canonical-JSON frames plus an atomically-replaced
  ``ab.pack.idx`` JSON index mapping key to ``[offset, length]``.
  Written by the executor's batched-store path
  (:meth:`begin_batch` / :meth:`flush_batch`): a map's small results
  land in one append + one index write per shard instead of one fsync'd
  file per result.  Frames are appended in sorted-key order, so two runs
  computing the same batch produce byte-identical pack files no matter
  what order the scheduler finished the jobs in.

``lookup`` consults blobs first, then the active batch buffer, then the
shard's pack index, so callers never care which layout holds an entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import struct
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro import __version__
from repro.experiments.jobs import JOBS_SCHEMA_VERSION, Job

__all__ = ["CacheStats", "ResultCache", "default_cache_dir", "default_salt"]

#: Sentinel distinguishing "no entry" from a cached ``None`` payload.
MISS = object()

#: Batched stores at or below this many bytes are packed into the shard's
#: append file; larger payloads always get their own blob file.
PACK_SMALL_LIMIT = 16384

#: Length prefix of one pack frame (little-endian u32 byte count).
_PACK_PREFIX = struct.Struct("<I")

#: Pack index format version.
_PACK_INDEX_VERSION = 1


def default_salt() -> str:
    """Code-version salt: changes whenever results may change meaning."""
    return f"repro-{__version__}-schema{JOBS_SCHEMA_VERSION}"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.stores)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.stores - earlier.stores,
        )

    def __str__(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.stores} stores"


class ResultCache:
    """Content-addressed store of JSON job payloads.

    ``root=None`` keeps everything in memory (no files touched); a path
    persists blobs under ``root/ab/abcdef....json`` with atomic writes so
    concurrent runs never observe torn entries.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        salt: Optional[str] = None,
    ):
        self.root = pathlib.Path(root) if root is not None else None
        self.salt = salt if salt is not None else default_salt()
        self.stats = CacheStats()
        self._memory: dict[str, str] = {}
        self._memory_traces: dict[str, str] = {}
        #: Active batch buffer (key -> record text), or None outside a batch.
        self._batch: Optional[dict[str, str]] = None
        #: Lazily-loaded pack indexes, one dict (key -> [offset, length])
        #: per shard; ``None`` marks a shard known to have no pack.
        self._pack_indexes: dict[str, Optional[dict[str, list]]] = {}

    # -- keys ---------------------------------------------------------------

    def key(self, jb: Job) -> str:
        """Cache key: job content hash + code-version salt."""
        return hashlib.sha256(
            f"{jb.content_hash}:{self.salt}".encode("utf-8")
        ).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.json"

    def _trace_path(self, key: str) -> pathlib.Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.trace.jsonl"

    def _pack_path(self, shard: str) -> pathlib.Path:
        assert self.root is not None
        return self.root / shard / f"{shard}.pack"

    def _pack_index_path(self, shard: str) -> pathlib.Path:
        assert self.root is not None
        return self.root / shard / f"{shard}.pack.idx"

    def trace_path(self, jb: Job) -> Optional[pathlib.Path]:
        """Where ``jb``'s trace artifact lives on disk (None in memory mode)."""
        if self.root is None:
            return None
        return self._trace_path(self.key(jb))

    # -- lookup / store -----------------------------------------------------

    def lookup(self, jb: Job) -> Any:
        """The cached payload for ``jb``, or :data:`MISS`.

        Corrupt or unreadable blobs count as misses (and are recomputed);
        the cache never raises on bad disk state.
        """
        key = self.key(jb)
        text = self._read_text(key)
        if text is not None:
            try:
                record = json.loads(text)
                value = record["value"]
            except (ValueError, KeyError, TypeError):
                value = MISS
            if value is not MISS:
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return MISS

    def _read_text(self, key: str) -> Optional[str]:
        """The stored record text for ``key`` from any layout, or None."""
        if self.root is None:
            return self._memory.get(key)
        try:
            return self._path(key).read_text()
        except OSError:
            pass
        if self._batch is not None:
            buffered = self._batch.get(key)
            if buffered is not None:
                return buffered
        return self._pack_read(key)

    def store(self, jb: Job, value: Any) -> Any:
        """Persist ``value`` for ``jb``; returns the JSON round-trip of it.

        Returning the round-tripped value guarantees cold runs see exactly
        what warm runs will read back, keeping output byte-identical
        whether or not the cache was already populated.
        """
        record = {
            "salt": self.salt,
            "job": jb.describe(),
            "value": value,
        }
        # sort_keys keeps the on-disk byte layout independent of dict
        # construction order, so identical payloads are identical blobs.
        text = json.dumps(record, allow_nan=True, sort_keys=True)
        self._put_text(self.key(jb), text)
        return json.loads(text)["value"]

    def store_text(self, jb: Job, value_text: str) -> Any:
        """Persist a payload already in canonical-JSON text form.

        ``value_text`` must be ``json.dumps(value, allow_nan=True,
        sort_keys=True)`` output — exactly what the packed result
        transport ships (:mod:`repro.experiments.transport`).  The record
        is spliced around it without re-serializing the payload, and the
        resulting bytes are identical to what :meth:`store` would have
        written: the record keys ``job`` < ``salt`` < ``value`` are
        already in sorted order, and ``json.dumps`` default separators
        (``", "``/``": "``) match the splice below.
        """
        job_text = json.dumps(jb.describe(), allow_nan=True, sort_keys=True)
        salt_text = json.dumps(self.salt, sort_keys=True)
        text = f'{{"job": {job_text}, "salt": {salt_text}, "value": {value_text}}}'
        self._put_text(self.key(jb), text)
        return json.loads(value_text)

    def _put_text(self, key: str, text: str) -> None:
        """Route one record to memory, the active batch, or a blob file."""
        if self.root is None:
            self._memory[key] = text
        elif self._batch is not None and len(text) <= PACK_SMALL_LIMIT:
            self._batch[key] = text
        else:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self.stats.stores += 1

    # -- batched stores and pack files --------------------------------------
    #
    # One executor map produces many small records at once.  Batching
    # buffers them and flushes each shard's records as length-prefixed
    # frames appended to one pack file, with a JSON index replaced
    # atomically afterwards — one append + one replace per shard instead
    # of one fsync'd rename per record.  Readers only trust indexed
    # frames, so a crash mid-append strands unreferenced bytes at the
    # tail of the pack (harmless litter) and never a torn entry.

    def begin_batch(self) -> bool:
        """Start buffering small stores; True when batching is active.

        No-op (returns False) for in-memory caches, where a store is
        already just a dict insert.  Re-entrant calls keep the current
        buffer.
        """
        if self.root is None:
            return False
        if self._batch is None:
            self._batch = {}
        return True

    def flush_batch(self) -> int:
        """Write buffered records to per-shard packs; returns the count.

        Frames are appended in sorted-key order so the pack bytes are a
        pure function of the batch's contents, independent of job
        completion order.
        """
        batch, self._batch = self._batch, None
        if not batch:
            return 0
        assert self.root is not None
        by_shard: dict[str, list[str]] = {}
        for key in sorted(batch):
            by_shard.setdefault(key[:2], []).append(key)
        for shard, keys in sorted(by_shard.items()):
            index = self._load_pack_index(shard)
            if index is None:
                index = {}
            pack_path = self._pack_path(shard)
            pack_path.parent.mkdir(parents=True, exist_ok=True)
            with open(pack_path, "ab") as handle:
                offset = handle.tell()
                for key in keys:
                    payload = batch[key].encode("utf-8")
                    handle.write(_PACK_PREFIX.pack(len(payload)))
                    handle.write(payload)
                    index[key] = [offset + _PACK_PREFIX.size, len(payload)]
                    offset += _PACK_PREFIX.size + len(payload)
            self._write_pack_index(shard, index)
        return len(batch)

    def _load_pack_index(self, shard: str) -> Optional[dict[str, list]]:
        """The shard's pack index (cached), or None when it has no pack."""
        if shard in self._pack_indexes:
            return self._pack_indexes[shard]
        index: Optional[dict[str, list]] = None
        try:
            doc = json.loads(self._pack_index_path(shard).read_text())
            if doc.get("version") == _PACK_INDEX_VERSION:
                index = dict(doc["entries"])
        except (OSError, ValueError, KeyError, TypeError):
            index = None  # unreadable index: treat the shard as packless
        self._pack_indexes[shard] = index
        return index

    def _write_pack_index(self, shard: str, index: dict[str, list]) -> None:
        entries = {key: index[key] for key in sorted(index)}
        text = json.dumps(
            {"version": _PACK_INDEX_VERSION, "entries": entries}, sort_keys=True
        )
        path = self._pack_index_path(shard)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._pack_indexes[shard] = entries

    def _pack_read(self, key: str) -> Optional[str]:
        """Read one record from its shard's pack file, or None."""
        index = self._load_pack_index(key[:2])
        if index is None:
            return None
        entry = index.get(key)
        if entry is None:
            return None
        try:
            offset, length = int(entry[0]), int(entry[1])
            with open(self._pack_path(key[:2]), "rb") as handle:
                handle.seek(offset)
                payload = handle.read(length)
            if len(payload) != length:
                return None  # index promises more bytes than the pack holds
            return payload.decode("utf-8")
        except (OSError, ValueError, IndexError, TypeError):
            return None

    # -- trace artifacts ----------------------------------------------------
    #
    # A trace is the raw telemetry (JSONL, see repro.telemetry.trace) the
    # simulation emitted while computing a result.  It is stored *beside*
    # the result blob — same shard, same key, ``.trace.jsonl`` suffix — and
    # never read by lookup(), so trace artifacts cannot perturb results.

    def store_trace(self, jb: Job, text: str) -> None:
        """Persist the JSONL trace for ``jb`` next to its result blob."""
        key = self.key(jb)
        if self.root is None:
            self._memory_traces[key] = text
            return
        path = self._trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load_trace(self, jb: Job) -> Optional[str]:
        """The stored JSONL trace for ``jb``, or None."""
        key = self.key(jb)
        if self.root is None:
            return self._memory_traces.get(key)
        try:
            return self._trace_path(key).read_text()
        except OSError:
            return None

    def has_trace(self, jb: Job) -> bool:
        """True when a trace artifact exists for ``jb``."""
        key = self.key(jb)
        if self.root is None:
            return key in self._memory_traces
        return self._trace_path(key).exists()

    # -- maintenance --------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry; returns how many entries were removed.

        Also sweeps orphaned ``*.tmp`` files (left behind if a write was
        interrupted between ``mkstemp`` and ``os.replace``) and removes
        shard directories once they are empty, so litter never
        accumulates.  Swept tmp files do not count as removed entries.
        """
        if self.root is None:
            count = len(self._memory)
            self._memory.clear()
            self._memory_traces.clear()
            return count
        self._batch = None
        count = 0
        if self.root.exists():
            for blob in self.root.glob("*/*.json"):
                try:
                    blob.unlink()
                    count += 1
                except OSError:
                    pass
            # Packed entries count via their indexes; then pack + index
            # files are removed like any other artifact.
            for index_path in self.root.glob("*/*.pack.idx"):
                index = self._load_pack_index(index_path.parent.name)
                count += len(index) if index else 0
            for pack in self.root.glob("*/*.pack"):
                try:
                    pack.unlink()
                except OSError:
                    pass
            for index_path in self.root.glob("*/*.pack.idx"):
                try:
                    index_path.unlink()
                except OSError:
                    pass
            # Trace artifacts ride along with their result blobs but are
            # not entries themselves, so they are swept without counting.
            for trace in self.root.glob("*/*.trace.jsonl"):
                try:
                    trace.unlink()
                except OSError:
                    pass
            for leftover in self.root.glob("*/*.tmp"):
                try:
                    leftover.unlink()
                except OSError:
                    pass
            self._remove_empty_shards()
        self._pack_indexes = {}
        return count

    def prune(self, max_age_s: float = 86400.0) -> int:
        """Remove stale ``*.tmp`` litter and orphaned trace artifacts.

        Interrupted writes (crashed or killed processes) can strand temp
        files beside the blobs; recent ones may belong to a concurrent
        writer mid-store, so only tmp files older than ``max_age_s``
        seconds are swept.  A ``<key>.trace.jsonl`` whose result entry is
        gone (blob deleted and not packed — e.g. a selective invalidation
        or a crash between the two writes) is an orphan: ``lookup`` will
        recompute the job anyway, re-storing both artifacts, so orphans
        are pure litter and are removed regardless of age.  Empty shard
        directories are removed too.  Returns the number of files
        deleted.  No-op for in-memory caches.
        """
        if self.root is None or not self.root.exists():
            return 0
        cutoff = time.time() - max_age_s  # simlint: disable=D002(tmp-file ages are wall-clock by nature; never feeds a table)
        removed = 0
        for leftover in self.root.glob("*/*.tmp"):
            try:
                if leftover.stat().st_mtime <= cutoff:
                    leftover.unlink()
                    removed += 1
            except OSError:
                pass
        for trace in self.root.glob("*/*.trace.jsonl"):
            key = trace.name[: -len(".trace.jsonl")]
            if self._has_entry(key):
                continue
            try:
                trace.unlink()
                removed += 1
            except OSError:
                pass
        self._remove_empty_shards()
        return removed

    def _has_entry(self, key: str) -> bool:
        """True when a result entry exists for ``key`` in any layout."""
        assert self.root is not None
        if self._path(key).exists():
            return True
        if self._batch is not None and key in self._batch:
            return True
        index = self._load_pack_index(key[:2])
        return index is not None and key in index

    def _remove_empty_shards(self) -> None:
        """Drop shard subdirectories that no longer hold any files."""
        assert self.root is not None
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass

    def __len__(self) -> int:
        """Number of stored entries; tmp litter is never counted."""
        if self.root is None:
            return len(self._memory)
        if not self.root.exists():
            return 0
        keys = {
            blob.name[: -len(".json")]: True
            for blob in self.root.glob("*/*.json")
            if blob.suffix == ".json"
        }
        for index_path in self.root.glob("*/*.pack.idx"):
            index = self._load_pack_index(index_path.parent.name)
            for key in index or ():
                keys[key] = True
        return len(keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.root) if self.root is not None else "memory"
        return f"<ResultCache {where} [{self.stats}]>"
