"""Content-addressed on-disk cache for experiment job results.

Every :class:`~repro.experiments.jobs.Job` has a stable content hash over
its full declarative description.  The cache keys JSON result blobs by
``sha256(job_hash : salt)`` where the salt folds in the library version
and the job-schema version, so a code upgrade (or an explicit salt
override) invalidates every stale entry without deleting anything.

With a warm cache, re-running ``python -m repro run all`` performs zero
simulations: every job is answered from disk and only the (cheap) reduce
stage runs.  Hit/miss/store accounting is kept on :attr:`ResultCache.stats`
and surfaced by the CLI.

The cache also runs in memory-only mode (``root=None``) — used by the
benchmark harness to share sweeps between figures within one session.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro import __version__
from repro.experiments.jobs import JOBS_SCHEMA_VERSION, Job

__all__ = ["CacheStats", "ResultCache", "default_cache_dir", "default_salt"]

#: Sentinel distinguishing "no entry" from a cached ``None`` payload.
MISS = object()


def default_salt() -> str:
    """Code-version salt: changes whenever results may change meaning."""
    return f"repro-{__version__}-schema{JOBS_SCHEMA_VERSION}"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.stores)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.stores - earlier.stores,
        )

    def __str__(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.stores} stores"


class ResultCache:
    """Content-addressed store of JSON job payloads.

    ``root=None`` keeps everything in memory (no files touched); a path
    persists blobs under ``root/ab/abcdef....json`` with atomic writes so
    concurrent runs never observe torn entries.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        salt: Optional[str] = None,
    ):
        self.root = pathlib.Path(root) if root is not None else None
        self.salt = salt if salt is not None else default_salt()
        self.stats = CacheStats()
        self._memory: dict[str, str] = {}
        self._memory_traces: dict[str, str] = {}

    # -- keys ---------------------------------------------------------------

    def key(self, jb: Job) -> str:
        """Cache key: job content hash + code-version salt."""
        return hashlib.sha256(
            f"{jb.content_hash}:{self.salt}".encode("utf-8")
        ).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.json"

    def _trace_path(self, key: str) -> pathlib.Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.trace.jsonl"

    def trace_path(self, jb: Job) -> Optional[pathlib.Path]:
        """Where ``jb``'s trace artifact lives on disk (None in memory mode)."""
        if self.root is None:
            return None
        return self._trace_path(self.key(jb))

    # -- lookup / store -----------------------------------------------------

    def lookup(self, jb: Job) -> Any:
        """The cached payload for ``jb``, or :data:`MISS`.

        Corrupt or unreadable blobs count as misses (and are recomputed);
        the cache never raises on bad disk state.
        """
        key = self.key(jb)
        text: Optional[str] = None
        if self.root is None:
            text = self._memory.get(key)
        else:
            try:
                text = self._path(key).read_text()
            except OSError:
                text = None
        if text is not None:
            try:
                record = json.loads(text)
                value = record["value"]
            except (ValueError, KeyError, TypeError):
                value = MISS
            if value is not MISS:
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return MISS

    def store(self, jb: Job, value: Any) -> Any:
        """Persist ``value`` for ``jb``; returns the JSON round-trip of it.

        Returning the round-tripped value guarantees cold runs see exactly
        what warm runs will read back, keeping output byte-identical
        whether or not the cache was already populated.
        """
        record = {
            "salt": self.salt,
            "job": jb.describe(),
            "value": value,
        }
        # sort_keys keeps the on-disk byte layout independent of dict
        # construction order, so identical payloads are identical blobs.
        text = json.dumps(record, allow_nan=True, sort_keys=True)
        key = self.key(jb)
        if self.root is None:
            self._memory[key] = text
        else:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self.stats.stores += 1
        return json.loads(text)["value"]

    # -- trace artifacts ----------------------------------------------------
    #
    # A trace is the raw telemetry (JSONL, see repro.telemetry.trace) the
    # simulation emitted while computing a result.  It is stored *beside*
    # the result blob — same shard, same key, ``.trace.jsonl`` suffix — and
    # never read by lookup(), so trace artifacts cannot perturb results.

    def store_trace(self, jb: Job, text: str) -> None:
        """Persist the JSONL trace for ``jb`` next to its result blob."""
        key = self.key(jb)
        if self.root is None:
            self._memory_traces[key] = text
            return
        path = self._trace_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load_trace(self, jb: Job) -> Optional[str]:
        """The stored JSONL trace for ``jb``, or None."""
        key = self.key(jb)
        if self.root is None:
            return self._memory_traces.get(key)
        try:
            return self._trace_path(key).read_text()
        except OSError:
            return None

    def has_trace(self, jb: Job) -> bool:
        """True when a trace artifact exists for ``jb``."""
        key = self.key(jb)
        if self.root is None:
            return key in self._memory_traces
        return self._trace_path(key).exists()

    # -- maintenance --------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry; returns how many entries were removed.

        Also sweeps orphaned ``*.tmp`` files (left behind if a write was
        interrupted between ``mkstemp`` and ``os.replace``) and removes
        shard directories once they are empty, so litter never
        accumulates.  Swept tmp files do not count as removed entries.
        """
        if self.root is None:
            count = len(self._memory)
            self._memory.clear()
            self._memory_traces.clear()
            return count
        count = 0
        if self.root.exists():
            for blob in self.root.glob("*/*.json"):
                try:
                    blob.unlink()
                    count += 1
                except OSError:
                    pass
            # Trace artifacts ride along with their result blobs but are
            # not entries themselves, so they are swept without counting.
            for trace in self.root.glob("*/*.trace.jsonl"):
                try:
                    trace.unlink()
                except OSError:
                    pass
            for leftover in self.root.glob("*/*.tmp"):
                try:
                    leftover.unlink()
                except OSError:
                    pass
            self._remove_empty_shards()
        return count

    def prune(self, max_age_s: float = 86400.0) -> int:
        """Remove stale ``*.tmp`` litter older than ``max_age_s`` seconds.

        Interrupted writes (crashed or killed processes) can strand temp
        files beside the blobs; recent ones may belong to a concurrent
        writer mid-store, so only files older than the threshold are
        swept.  Empty shard directories are removed too.  Returns the
        number of tmp files deleted.  No-op for in-memory caches.
        """
        if self.root is None or not self.root.exists():
            return 0
        cutoff = time.time() - max_age_s  # simlint: disable=D002(tmp-file ages are wall-clock by nature; never feeds a table)
        removed = 0
        for leftover in self.root.glob("*/*.tmp"):
            try:
                if leftover.stat().st_mtime <= cutoff:
                    leftover.unlink()
                    removed += 1
            except OSError:
                pass
        self._remove_empty_shards()
        return removed

    def _remove_empty_shards(self) -> None:
        """Drop shard subdirectories that no longer hold any files."""
        assert self.root is not None
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass

    def __len__(self) -> int:
        """Number of stored entries; tmp litter is never counted."""
        if self.root is None:
            return len(self._memory)
        if not self.root.exists():
            return 0
        return sum(
            1 for blob in self.root.glob("*/*.json") if blob.suffix == ".json"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.root) if self.root is not None else "memory"
        return f"<ResultCache {where} [{self.stats}]>"
