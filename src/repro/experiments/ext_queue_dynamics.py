"""Extension: SlowCC's effect on bottleneck queue dynamics.

Section 2 notes prior "investigation of the effect of SlowCC proposals on
queue dynamics, including the effect on oscillations in the queue size,
both with and without active queue management".  With the queue sampler in
:meth:`repro.net.monitor.LinkMonitor.sample_queue` this is directly
measurable here: populations of identical flows (TCP vs TFRC vs TCP(1/8))
over RED and DropTail bottlenecks, comparing mean queue occupancy and its
oscillation (coefficient of variation).

Expected shape: RED holds a lower average queue than DropTail, and the
gentler AIMD variant oscillates the queue less than standard TCP.  TFRC is
run without RFC 3448's optional oscillation-prevention mechanism (as in
the paper), so its timer-driven rate shows larger queue oscillations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table
from repro.metrics.smoothness import coefficient_of_variation
from repro.net.dumbbell import Dumbbell
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.traffic.bulk import add_flows

__all__ = ["QueueDynamicsConfig", "jobs", "measure_queue_dynamics", "reduce", "run"]


@dataclass(frozen=True)
class QueueDynamicsConfig:
    bandwidth_bps: float = 5e6
    rtt_s: float = 0.05
    n_flows: int = 8
    duration_s: float = 60.0
    warmup_s: float = 20.0
    sample_period_s: float = 0.01
    seed: int = 1

    @classmethod
    def fast(cls, **overrides) -> "QueueDynamicsConfig":
        base = cls(duration_s=40.0, warmup_s=15.0)
        return replace(base, **overrides)


def measure_queue_dynamics(
    protocol: Protocol, aqm: str, cfg: QueueDynamicsConfig
) -> tuple[float, float, float]:
    """Returns (mean queue pkts, queue CoV, loss rate) for one population."""
    sim = Simulator()
    if aqm == "red":
        net = Dumbbell(
            sim, cfg.bandwidth_bps, cfg.rtt_s, rng=RngRegistry(cfg.seed)
        )
    elif aqm == "droptail":
        bdp = cfg.bandwidth_bps * cfg.rtt_s / 8000.0
        capacity = max(4, int(2.5 * bdp))
        net = Dumbbell(
            sim,
            cfg.bandwidth_bps,
            cfg.rtt_s,
            queue_factory=lambda: DropTailQueue(capacity),
            rng=RngRegistry(cfg.seed),
        )
    else:
        raise ValueError(f"unknown AQM {aqm!r}")
    series = net.monitor.sample_queue(cfg.sample_period_s)
    add_flows(
        sim, net, protocol.make, count=cfg.n_flows,
        start_jitter_s=2.0, rng=random.Random(cfg.seed),
    )
    sim.run(until=cfg.duration_s)
    window = series.window(cfg.warmup_s, cfg.duration_s)
    values = list(window.values)
    loss = net.monitor.loss_rate(cfg.warmup_s, cfg.duration_s)
    return window.mean(), coefficient_of_variation(values), loss


def default_protocols() -> tuple[Protocol, ...]:
    return (tcp(2), tcp(8), tfrc(6))


def jobs(scale: str = "fast", **overrides) -> list:
    from repro.experiments.jobs import indexed, job

    cfg = (
        QueueDynamicsConfig.fast(**overrides)
        if scale == "fast"
        else QueueDynamicsConfig(**overrides)
    )
    return indexed(
        job(
            "ext_queue_dynamics",
            "queue_dynamics",
            config=cfg,
            protocol=protocol,
            params={"aqm": aqm},
            scale=scale,
        )
        for protocol in default_protocols()
        for aqm in ("red", "droptail")
    )


def reduce(results) -> Table:
    table = Table(
        title="Queue dynamics: occupancy and oscillation by sender type and AQM",
        columns=["protocol", "aqm", "mean_queue_pkts", "queue_cov", "loss_rate"],
        notes=(
            "RED keeps the average queue well below DropTail's.  Within the "
            "window-based family, the gentler TCP(1/8) oscillates the queue "
            "less than TCP(1/2).  Rate-based TFRC (implemented without RFC "
            "3448's optional oscillation-prevention, which the paper does "
            "not use) shows the larger queue oscillations reported in the "
            "equation-based-CC literature."
        ),
    )
    for result in results:
        payload = result.value
        table.add(
            payload["protocol"],
            result.job.param("aqm"),
            payload["mean_queue_pkts"],
            payload["queue_cov"],
            payload["loss_rate"],
        )
    return table


def run(scale: str = "fast", *, executor=None, cache=None, **overrides) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **overrides), executor, cache))
