"""Deterministic fault injection for the execution layer.

Production schedulers are only trustworthy if their failure paths are
exercised; this module gives tests (and CI smoke jobs) a way to kill,
stall or fail a *specific* job on a *specific* attempt, deterministically,
so the executor's retry / rebuild / degrade machinery can be proven to
yield byte-identical results to a clean run.

A fault is described by a compact spec string, usually supplied through
the ``REPRO_FAULT_SPEC`` environment variable::

    <action>[=seconds]:<selector>[:<when>]

``action``
    * ``crash`` — hard-kill the worker process (``os._exit``), which the
      parent observes as a ``BrokenProcessPool``;
    * ``error`` — raise :class:`InjectedFault` (an ordinary exception,
      exercising the plain retry path);
    * ``hang[=S]`` — sleep ``S`` seconds (default 30), exercising the
      per-job timeout path.

``selector``
    * ``index=N`` — the job at position ``N`` of the deduplicated batch
      (submission order);
    * ``hash=PREFIX`` — any job whose content hash starts with ``PREFIX``;
    * ``*`` — every job.

``when`` (optional, default ``first``)
    * ``first`` — fire only on a job's first attempt (the retry must
      then succeed, proving recovery);
    * ``always`` — fire on every attempt (forcing degradation or
      failure);
    * ``attempt=N`` — fire only on attempt ``N``.

Examples::

    REPRO_FAULT_SPEC="crash:index=0"          # kill the worker running job 0, once
    REPRO_FAULT_SPEC="error:hash=3fa2:always" # job 3fa2… always errors
    REPRO_FAULT_SPEC="hang=5:index=1"         # job 1 stalls 5s on attempt 1
    REPRO_FAULT_SPEC="crash:*:always"         # every worker dies: degrade path

Faults are injected **only inside pool worker processes** (via the
``fault`` callable passed to :func:`repro.experiments.jobs.execute_job`);
in-process execution — serial runs and the degraded fallback — never
fires them, so a ``crash`` spec can never take down the parent process.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["FaultSpec", "InjectedFault"]

#: Exit status used by ``crash`` faults; chosen from sysexits (EX_SOFTWARE)
#: so a killed worker is distinguishable from an ordinary interpreter exit.
CRASH_EXIT_STATUS = 70


class InjectedFault(RuntimeError):
    """The exception raised by an ``error`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """A parsed fault description (see the module docstring for grammar)."""

    action: str  # "crash" | "error" | "hang"
    seconds: float = 30.0  # hang duration
    index: Optional[int] = None  # deduplicated-batch position selector
    hash_prefix: Optional[str] = None  # content-hash prefix selector
    when: str = "first"  # "first" | "always" | "attempt"
    attempt_n: int = 1  # used when ``when == "attempt"``

    @classmethod
    def parse(cls, text: Optional[str]) -> Optional["FaultSpec"]:
        """Parse a spec string; ``None``/empty gives ``None`` (no fault)."""
        text = (text or "").strip()
        if not text:
            return None
        parts = text.split(":")
        action, _, secs = parts[0].partition("=")
        if action not in ("crash", "error", "hang"):
            raise ValueError(
                f"unknown fault action {action!r}; expected crash, error or hang"
            )
        seconds = float(secs) if secs else 30.0
        index: Optional[int] = None
        hash_prefix: Optional[str] = None
        when = "first"
        attempt_n = 1
        for token in parts[1:]:
            if token == "*":
                continue  # explicit "match every job"
            if token.startswith("index="):
                index = int(token[len("index="):])
            elif token.startswith("hash="):
                hash_prefix = token[len("hash="):]
            elif token in ("first", "always"):
                when = token
            elif token.startswith("attempt="):
                when = "attempt"
                attempt_n = int(token[len("attempt="):])
            else:
                raise ValueError(
                    f"unknown fault spec token {token!r}; expected '*', "
                    "'index=N', 'hash=PREFIX', 'first', 'always' or 'attempt=N'"
                )
        return cls(
            action=action,
            seconds=seconds,
            index=index,
            hash_prefix=hash_prefix,
            when=when,
            attempt_n=attempt_n,
        )

    # -- matching and firing ------------------------------------------------

    def matches(self, jb, position: int, attempt: int) -> bool:
        """Does this fault apply to ``jb`` at ``position`` on ``attempt``?"""
        if self.when == "first" and attempt != 1:
            return False
        if self.when == "attempt" and attempt != self.attempt_n:
            return False
        if self.index is not None and position != self.index:
            return False
        if self.hash_prefix is not None and not jb.content_hash.startswith(
            self.hash_prefix
        ):
            return False
        return True

    def fire(self, jb) -> None:
        """Execute the fault action (kill / stall / raise)."""
        if self.action == "crash":
            os._exit(CRASH_EXIT_STATUS)
        if self.action == "hang":
            time.sleep(self.seconds)
            return
        raise InjectedFault(f"injected fault for job {jb!r}")

    def bind(self, position: int, attempt: int) -> Callable:
        """A ``fault(job)`` callable for :func:`execute_job`, bound to one
        (position, attempt) so workers need no shared state."""

        def fault(jb) -> None:
            if self.matches(jb, position, attempt):
                self.fire(jb)

        return fault
