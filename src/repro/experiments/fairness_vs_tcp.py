"""Shared harness for Figures 7-9: long-term fairness vs TCP.

Five TCP flows compete with five flows of another TCP-compatible protocol
while a square-wave CBR source oscillates the available bandwidth 3:1.
Each column of the paper's figures is one simulation at one square-wave
period; the series are the per-flow throughputs normalized by the fair
share, plus the per-type means.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.protocols import Protocol, tcp
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import OscillationConfig, run_oscillation

__all__ = ["default_periods", "fairness_table"]


def default_periods(scale: str) -> list[float]:
    if scale == "fast":
        return [0.2, 0.4, 1.0, 4.0, 16.0]
    return [0.2, 0.4, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]


def fairness_table(
    figure: str,
    competitor: Protocol,
    paper_claim: str,
    scale: str = "fast",
    periods: Sequence[float] | None = None,
    **overrides,
) -> Table:
    cfg = pick_config(OscillationConfig, scale, **overrides)
    periods = list(periods) if periods is not None else default_periods(scale)
    table = Table(
        title=f"{figure}: TCP vs {competitor.name} under 3:1 oscillating bandwidth",
        columns=[
            "period_s",
            "tcp_mean_share",
            "other_mean_share",
            "utilization",
            "drop_rate",
        ],
        notes=paper_claim,
    )
    reference = tcp(2)
    for period in periods:
        result = run_oscillation(reference, competitor, period, cfg)
        table.add(
            period, result.mean_a, result.mean_b, result.utilization, result.drop_rate
        )
    return table
