"""Shared harness for Figures 7-9: long-term fairness vs TCP.

Five TCP flows compete with five flows of another TCP-compatible protocol
while a square-wave CBR source oscillates the available bandwidth 3:1.
Each column of the paper's figures is one simulation at one square-wave
period; the series are the per-flow throughputs normalized by the fair
share, plus the per-type means.

``fairness_jobs`` / ``fairness_reduce`` are the declarative halves the
figure modules delegate to; ``fairness_table`` is the one-call legacy
convenience built on top of them.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.protocols import Protocol, spec_of, tcp
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import OscillationConfig

__all__ = ["default_periods", "fairness_jobs", "fairness_reduce", "fairness_table"]


def default_periods(scale: str) -> list[float]:
    if scale == "fast":
        return [0.2, 0.4, 1.0, 4.0, 16.0]
    return [0.2, 0.4, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]


def fairness_jobs(
    figure: str,
    competitor: Protocol,
    scale: str = "fast",
    periods: Sequence[float] | None = None,
    **overrides,
) -> list[Job]:
    """One mixed TCP-vs-competitor oscillation job per square-wave period."""
    cfg = pick_config(OscillationConfig, scale, **overrides)
    periods = list(periods) if periods is not None else default_periods(scale)
    reference = tcp(2)
    return indexed(
        job(
            figure,
            "oscillation",
            config=cfg,
            protocol=reference,
            scale=scale,
            params={"period_s": float(period), "protocol_b": spec_of(competitor)},
        )
        for period in periods
    )


def fairness_reduce(
    results, figure: str, competitor_name: str, paper_claim: str
) -> Table:
    table = Table(
        title=f"{figure}: TCP vs {competitor_name} under 3:1 oscillating bandwidth",
        columns=[
            "period_s",
            "tcp_mean_share",
            "other_mean_share",
            "utilization",
            "drop_rate",
        ],
        notes=paper_claim,
    )
    for result in results:
        value = result.value
        table.add(
            value["period_s"],
            value["mean_a"],
            value["mean_b"],
            value["utilization"],
            value["drop_rate"],
        )
    return table


def fairness_table(
    figure: str,
    competitor: Protocol,
    paper_claim: str,
    scale: str = "fast",
    periods: Sequence[float] | None = None,
    *,
    executor=None,
    cache=None,
    **overrides,
) -> Table:
    from repro.experiments.executor import execute

    results = execute(
        fairness_jobs(figure, competitor, scale, periods, **overrides),
        executor,
        cache,
    )
    return fairness_reduce(results, figure, competitor.name, paper_claim)
