"""Figure 17: TFRC vs TCP(1/8) under a mildly bursty loss pattern.

Paper: a repeating pattern of three losses each after 50 packet arrivals
followed by three each after 400 fits TFRC's ~6-interval averaging, so TFRC
holds a nearly constant loss estimate: it is considerably smoother than
TCP(1/8) and achieves slightly higher throughput.
"""

from __future__ import annotations

from repro.experiments.jobs import DropperSpec, Job, indexed, job
from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import LossPatternConfig
from repro.net.droppers import mild_bursty_pattern

__all__ = ["default_protocols", "jobs", "loss_pattern_table", "reduce", "run"]

LOSS_COLUMNS = [
    "protocol",
    "throughput_mbps",
    "smoothness_cov",
    "worst_ratio",
    "rate_band",
    "drops",
]


def default_protocols() -> list[Protocol]:
    return [tfrc(6), tcp(8)]


def jobs(
    scale: str = "fast",
    protocols: list[Protocol] | None = None,
    *,
    figure: str = "fig17",
    **overrides,
) -> list[Job]:
    cfg = pick_config(LossPatternConfig, scale, **overrides)
    dropper = DropperSpec.count(mild_bursty_pattern())
    return indexed(
        job(
            figure,
            "loss_pattern",
            config=cfg,
            protocol=protocol,
            params={"dropper": dropper},
            scale=scale,
        )
        for protocol in (protocols if protocols is not None else default_protocols())
    )


def loss_pattern_table(results, title: str, notes: str) -> Table:
    """Shared Figures 17-19 table: one row per protocol, in job order."""
    table = Table(title=title, columns=list(LOSS_COLUMNS), notes=notes)
    for result in results:
        payload = result.value
        table.add(
            payload["protocol"],
            payload["throughput_bps"] / 1e6,
            payload["smoothness_cov"],
            payload["worst_ratio"],
            payload["rate_band"],
            payload["drops"],
        )
    return table


def reduce(results) -> Table:
    return loss_pattern_table(
        results,
        title="Figure 17: mildly bursty loss pattern (drops at 3x50 then 3x400 arrivals)",
        notes=(
            "Paper: TFRC considerably smoother than TCP(1/8) with slightly "
            "higher throughput.  smoothness_cov is the coefficient of "
            "variation of 1 s sending-rate bins (lower = smoother); "
            "worst_ratio is the paper's consecutive-bin metric (1 = smooth)."
        ),
    )


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
