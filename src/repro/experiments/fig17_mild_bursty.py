"""Figure 17: TFRC vs TCP(1/8) under a mildly bursty loss pattern.

Paper: a repeating pattern of three losses each after 50 packet arrivals
followed by three each after 400 fits TFRC's ~6-interval averaging, so TFRC
holds a nearly constant loss estimate: it is considerably smoother than
TCP(1/8) and achieves slightly higher throughput.
"""

from __future__ import annotations

from repro.experiments.protocols import Protocol, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import LossPatternConfig, run_loss_pattern
from repro.net.droppers import CountBasedDropper, mild_bursty_pattern

__all__ = ["default_protocols", "run"]


def default_protocols() -> list[Protocol]:
    return [tfrc(6), tcp(8)]


def run(scale: str = "fast", protocols: list[Protocol] | None = None, **overrides) -> Table:
    cfg = pick_config(LossPatternConfig, scale, **overrides)
    table = Table(
        title="Figure 17: mildly bursty loss pattern (drops at 3x50 then 3x400 arrivals)",
        columns=["protocol", "throughput_mbps", "smoothness_cov", "worst_ratio", "rate_band", "drops"],
        notes=(
            "Paper: TFRC considerably smoother than TCP(1/8) with slightly "
            "higher throughput.  smoothness_cov is the coefficient of "
            "variation of 1 s sending-rate bins (lower = smoother); "
            "worst_ratio is the paper's consecutive-bin metric (1 = smooth)."
        ),
    )
    for protocol in protocols if protocols is not None else default_protocols():
        result = run_loss_pattern(
            protocol,
            lambda sim: CountBasedDropper(mild_bursty_pattern(), clock=lambda: sim.now),
            cfg,
        )
        table.add(
            result.protocol,
            result.throughput_bps / 1e6,
            result.smoothness.cov,
            result.smoothness.min_ratio,
            result.rate_band,
            result.drops,
        )
    return table
