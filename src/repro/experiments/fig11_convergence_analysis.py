"""Figure 11: analytical number of ACKs to 0.1-fair convergence.

Pure closed form: E[#ACKs] = log_{1-bp}(delta) for AIMD(a, b) flows under
packet mark rate p (Section 4.2.2's expected-window analysis).  The paper
plots delta = 0.1, p = 0.1 and notes other p values give almost identically
shaped curves.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.runner import Table

__all__ = ["default_bs", "jobs", "measure_acks_to_fairness", "reduce", "run"]


def default_bs(scale: str = "fast") -> list[float]:
    return [0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 1 / 32, 1 / 64, 1 / 128, 1 / 256]


def jobs(
    scale: str = "fast",
    bs: Sequence[float] | None = None,
    p: float = 0.1,
    delta: float = 0.1,
) -> list[Job]:
    return indexed(
        job(
            "fig11",
            "analysis_acks",
            params={"b": float(b), "p": float(p), "delta": float(delta)},
            scale=scale,
        )
        for b in (bs if bs is not None else default_bs(scale))
    )


def reduce(results) -> Table:
    first = results[0].job
    p = first.param("p")
    delta = first.param("delta")
    table = Table(
        title="Figure 11: expected ACKs to 0.1-fairness (analysis)",
        columns=["b", "expected_acks"],
        notes=(
            f"log_(1-b*p)(delta) with p={p:g}, delta={delta:g}.  Paper: fast "
            "for b > ~0.2, exponentially longer for smaller b."
        ),
    )
    for result in results:
        table.add(result.job.param("b"), result.value)
    return table


def run(
    scale: str = "fast",
    bs: Sequence[float] | None = None,
    p: float = 0.1,
    delta: float = 0.1,
    *,
    executor=None,
    cache=None,
) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, bs, p, delta), executor, cache))


def measure_acks_to_fairness(
    b: float,
    bandwidth_bps: float = 2e6,
    rtt_s: float = 0.05,
    second_start: float = 15.0,
    end: float = 300.0,
    delta: float = 0.1,
    seed: int = 1,
) -> tuple[float, float]:
    """Simulate the analysis's setting: two ECN-marked TCP(b) flows.

    The Section 4.2.2 model assumes ECN-style marking (no retransmissions)
    at a steady mark rate p.  We run two TCP(b) flows with ECN over a
    marking RED bottleneck, measure the δ-fair convergence time, and
    convert it to an ACK count (every delivered packet is ACKed).  Returns
    ``(acks, observed_mark_rate)`` for comparison with
    :func:`repro.analysis.convergence.acks_to_fairness`.
    """
    from repro.cc.base import establish
    from repro.cc.binomial import tcp_rule
    from repro.cc.tcp import new_tcp_flow
    from repro.metrics.fairness import delta_fair_convergence_time
    from repro.net.dumbbell import Dumbbell
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    net = Dumbbell(
        sim,
        bandwidth_bps=bandwidth_bps,
        rtt_s=rtt_s,
        rng=RngRegistry(seed),
        ecn_marking=True,
    )
    sender_a, sink_a = new_tcp_flow(sim, rule=tcp_rule(b), ecn=True)
    flow_a = establish(net, sender_a, sink_a)
    sender_b, sink_b = new_tcp_flow(sim, rule=tcp_rule(b), ecn=True)
    flow_b = establish(net, sender_b, sink_b)
    # Start in congestion avoidance, as the analysis assumes.
    sender_a.ssthresh = sender_b.ssthresh = 1.0
    sender_a.start_at(0.0)
    sender_b.start_at(second_start)
    sim.run(until=end)

    converge_s = delta_fair_convergence_time(
        net.accountant, flow_a, flow_b,
        start=second_start, end=end, delta=delta,
        window_s=0.25, sustain_windows=2,
    )
    if converge_s is None:
        converge_s = end - second_start
    horizon = second_start + converge_s
    acked_packets = sum(
        net.accountant.delivered_bytes(f, second_start, horizon) / 1000.0
        for f in (flow_a, flow_b)
    )
    import math

    mark_rate = net.monitor.mark_rate(second_start, horizon)
    if math.isnan(mark_rate):
        mark_rate = 0.0
    return acked_packets, mark_rate
