"""Figure 10: time to 0.1-fair convergence for two TCP(b) flows.

Paper: two TCP(b) flows on a 10 Mbps link, one starting from the full link
and one from ~1 packet/RTT.  Convergence to 0.1-fairness is quick for
b >= ~0.2 and grows rapidly as b shrinks (consistent with the analytical
log_{1-bp} delta ACK count of Figure 11).

Each (b, seed) pair is its own job — seeds run in parallel too — and
``reduce`` averages the per-seed convergence times in seed order, exactly
as the serial implementation did.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.protocols import tcp_b
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import ConvergenceConfig

__all__ = ["default_bs", "jobs", "reduce", "run"]


def default_bs(scale: str) -> list[float]:
    if scale == "fast":
        return [0.5, 0.25, 0.125, 1 / 32, 1 / 128]
    return [0.5, 0.25, 0.125, 1 / 16, 1 / 32, 1 / 64, 1 / 128, 1 / 256]


def jobs(
    scale: str = "fast", bs: Sequence[float] | None = None, **overrides
) -> list[Job]:
    cfg = pick_config(ConvergenceConfig, scale, **overrides)
    return indexed(
        job(
            "fig10",
            "convergence",
            config=replace(cfg, seeds=(seed,)),
            protocol=tcp_b(b),
            seed=seed,
            scale=scale,
            tags={"b": b},
        )
        for b in (bs if bs is not None else default_bs(scale))
        for seed in cfg.seeds
    )


def reduce(results) -> Table:
    cfg = results[0].job.config
    table = Table(
        title="Figure 10: 0.1-fair convergence time for two TCP(b) flows",
        columns=["b", "convergence_s"],
        notes=(
            "Paper: acceptable convergence for b >= ~0.2, exponentially "
            "longer below.  Runs that never converge are charged the full "
            f"observation window ({cfg.end - cfg.second_start:g} s)."
        ),
    )
    by_b: dict[float, list[float]] = {}
    for result in results:
        by_b.setdefault(result.job.tag("b"), []).append(result.value)
    for b, times in by_b.items():
        table.add(b, sum(times) / len(times))
    return table


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
