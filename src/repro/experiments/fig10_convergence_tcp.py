"""Figure 10: time to 0.1-fair convergence for two TCP(b) flows.

Paper: two TCP(b) flows on a 10 Mbps link, one starting from the full link
and one from ~1 packet/RTT.  Convergence to 0.1-fairness is quick for
b >= ~0.2 and grows rapidly as b shrinks (consistent with the analytical
log_{1-bp} delta ACK count of Figure 11).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.protocols import tcp_b
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import ConvergenceConfig, run_convergence

__all__ = ["default_bs", "run"]


def default_bs(scale: str) -> list[float]:
    if scale == "fast":
        return [0.5, 0.25, 0.125, 1 / 32, 1 / 128]
    return [0.5, 0.25, 0.125, 1 / 16, 1 / 32, 1 / 64, 1 / 128, 1 / 256]


def run(scale: str = "fast", bs: Sequence[float] | None = None, **overrides) -> Table:
    cfg = pick_config(ConvergenceConfig, scale, **overrides)
    table = Table(
        title="Figure 10: 0.1-fair convergence time for two TCP(b) flows",
        columns=["b", "convergence_s"],
        notes=(
            "Paper: acceptable convergence for b >= ~0.2, exponentially "
            "longer below.  Runs that never converge are charged the full "
            f"observation window ({cfg.end - cfg.second_start:g} s)."
        ),
    )
    for b in bs if bs is not None else default_bs(scale):
        table.add(b, run_convergence(tcp_b(b), cfg))
    return table
