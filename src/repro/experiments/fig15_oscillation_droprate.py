"""Figure 15: packet drop rates for the Figure 14 simulations."""

from __future__ import annotations

from repro.experiments.oscillation_utilization import sweep, table_from_sweep
from repro.experiments.runner import Table

__all__ = ["run"]


def run(scale: str = "fast", **kwargs) -> Table:
    results = sweep(scale, cbr_fraction=2.0 / 3.0, **kwargs)
    return table_from_sweep(
        results,
        metric="drop_rate",
        title="Figure 15: drop rate vs CBR ON/OFF time (3:1 oscillation)",
        notes="Companion drop-rate series for the Figure 14 runs.",
    )
