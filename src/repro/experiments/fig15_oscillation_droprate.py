"""Figure 15: packet drop rates for the Figure 14 simulations."""

from __future__ import annotations

from repro.experiments.jobs import Job
from repro.experiments.oscillation_utilization import reduce_sweep, sweep_jobs
from repro.experiments.runner import Table

__all__ = ["jobs", "reduce", "run"]

CBR_FRACTION = 2.0 / 3.0
TITLE = "Figure 15: drop rate vs CBR ON/OFF time (3:1 oscillation)"
NOTES = "Companion drop-rate series for the Figure 14 runs."


def jobs(scale: str = "fast", **kwargs) -> list[Job]:
    kwargs.setdefault("cbr_fraction", CBR_FRACTION)
    return sweep_jobs("fig15", scale, **kwargs)


def reduce(results) -> Table:
    return reduce_sweep(results, metric="drop_rate", title=TITLE, notes=NOTES)


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
