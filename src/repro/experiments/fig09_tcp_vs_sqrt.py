"""Figure 9: throughput of TCP and SQRT(1/2) flows under 3:1 oscillation.

Paper: same qualitative picture as Figures 7 and 8 — the slowly-responsive
(binomial) algorithm remains safe for TCP but receives less than its
equitable share when conditions change dynamically.
"""

from __future__ import annotations

from repro.experiments.fairness_vs_tcp import fairness_jobs, fairness_reduce
from repro.experiments.jobs import Job
from repro.experiments.protocols import sqrt
from repro.experiments.runner import Table

__all__ = ["jobs", "reduce", "run"]

COMPETITOR = sqrt(2)
PAPER_CLAIM = (
    "Paper: TCP modestly out-competes SQRT under oscillating "
    "bandwidth, without SQRT harming TCP."
)


def jobs(scale: str = "fast", **kwargs) -> list[Job]:
    return fairness_jobs("fig09", COMPETITOR, scale, **kwargs)


def reduce(results) -> Table:
    return fairness_reduce(results, "Figure 9", COMPETITOR.name, PAPER_CLAIM)


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
