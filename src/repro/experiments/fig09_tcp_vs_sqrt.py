"""Figure 9: throughput of TCP and SQRT(1/2) flows under 3:1 oscillation.

Paper: same qualitative picture as Figures 7 and 8 — the slowly-responsive
(binomial) algorithm remains safe for TCP but receives less than its
equitable share when conditions change dynamically.
"""

from __future__ import annotations

from repro.experiments.fairness_vs_tcp import fairness_table
from repro.experiments.protocols import sqrt
from repro.experiments.runner import Table

__all__ = ["run"]


def run(scale: str = "fast", **kwargs) -> Table:
    return fairness_table(
        "Figure 9",
        sqrt(2),
        paper_claim=(
            "Paper: TCP modestly out-competes SQRT under oscillating "
            "bandwidth, without SQRT harming TCP."
        ),
        scale=scale,
        **kwargs,
    )
