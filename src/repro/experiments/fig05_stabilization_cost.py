"""Figure 5: stabilization cost vs gamma.

Same sweep as Figure 4, reported with the stabilization-cost metric
(stabilization time in RTTs x average loss percentage during the
stabilization interval; cost 1 = one RTT's worth of packets dropped).

The job list is the Figure 4 job list (only the ``figure`` label differs,
which is excluded from the content hash), so with a result cache the sweep
is simulated once and both figures reduce from the same cached payloads.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments import fig04_stabilization_time as fig04
from repro.experiments.jobs import Job
from repro.experiments.runner import Table

__all__ = ["jobs", "reduce", "run"]


def jobs(scale: str = "fast", **kwargs) -> list[Job]:
    """The Figure 4 sweep, relabelled."""
    return [replace(j, figure="fig05") for j in fig04.jobs(scale, **kwargs)]


def reduce(results) -> Table:
    return fig04.reduce(results, metric="cost")


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
