"""Figure 5: stabilization cost vs gamma.

Same sweep as Figure 4, reported with the stabilization-cost metric
(stabilization time in RTTs x average loss percentage during the
stabilization interval; cost 1 = one RTT's worth of packets dropped).
"""

from __future__ import annotations

from repro.experiments.fig04_stabilization_time import sweep, table_from_sweep
from repro.experiments.runner import Table

__all__ = ["run"]


def run(scale: str = "fast", **kwargs) -> Table:
    return table_from_sweep(sweep(scale, **kwargs), metric="cost")
