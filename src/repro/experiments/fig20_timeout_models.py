"""Figure 20: throughput equations with and without timeouts (Appendix A).

Pure closed form: the sending rate in packets/RTT as a function of the
packet drop rate p for the pure-AIMD model, the AIMD-with-timeouts model,
and the Padhye Reno model.  The AIMD-with-timeouts line upper-bounds Reno
at high loss; pure AIMD applies only below p ~ 1/3.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.runner import Table

__all__ = [
    "default_drop_rates",
    "jobs",
    "reduce",
    "run",
    "run_simulated",
    "measure_tcp_rate_per_rtt",
]


def default_drop_rates(scale: str = "fast") -> list[float]:
    return [0.001, 0.003, 0.01, 0.03, 0.1, 0.2, 0.33, 0.5, 0.6, 0.7, 0.8, 0.9]


def jobs(scale: str = "fast", p_values: Sequence[float] | None = None) -> list[Job]:
    return indexed(
        job("fig20", "timeout_models", params={"p": float(p)}, scale=scale)
        for p in (
            list(p_values) if p_values is not None else default_drop_rates(scale)
        )
    )


def reduce(results) -> Table:
    table = Table(
        title="Figure 20: sending rate (packets/RTT) vs drop rate, three models",
        columns=["p", "pure_aimd", "aimd_with_timeouts", "reno_tcp"],
        notes=(
            "Appendix A: pure AIMD = sqrt(1.5/p) (valid below p~1/3); AIMD "
            "with timeouts = (1/(1-p)) / (2^(1/(1-p)) - 1); Reno = Padhye "
            "model.  The timeout models extend below one packet per RTT."
        ),
    )
    for result in results:
        pure_aimd, aimd_with_timeouts, reno = result.value
        table.add(result.job.param("p"), pure_aimd, aimd_with_timeouts, reno)
    return table


def run(
    scale: str = "fast",
    p_values: Sequence[float] | None = None,
    *,
    executor=None,
    cache=None,
) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, p_values), executor, cache))


def measure_tcp_rate_per_rtt(
    p: float,
    rtt_s: float = 0.05,
    duration_s: float = 300.0,
    seed: int = 1,
    limited_transmit: bool = False,
) -> float:
    """Delivered rate of a real TCP flow, in packets/RTT, under Bernoulli
    loss of probability ``p`` on an otherwise uncongested path.

    Validates Appendix A against this library's actual TCP: the appendix
    predicts the measurement falls between "Reno TCP" (lower bound) and
    "AIMD with timeouts" (upper bound), with Limited Transmit and similar
    refinements sitting higher inside the band.
    """
    import random

    from repro.cc.tcp import new_tcp_flow
    from repro.net.droppers import BernoulliDropper
    from repro.net.monitor import FlowAccountant
    from repro.net.paths import single_path
    from repro.sim.engine import Simulator

    sim = Simulator()
    accountant = FlowAccountant(sim)
    sender, sink = new_tcp_flow(
        sim, min_rto=4 * rtt_s, limited_transmit=limited_transmit
    )
    sink.on_data.append(accountant.on_deliver)
    dropper = BernoulliDropper(p, rng=random.Random(seed))
    single_path(sim, sender, sink, rtt_s=rtt_s, bandwidth_bps=1e8, dropper=dropper)
    sender.start()
    sim.run(until=duration_s)
    warmup = duration_s * 0.1
    pps = accountant.throughput_bps(0, warmup, duration_s) / (sender.packet_size * 8.0)
    return pps * rtt_s


def run_simulated(
    scale: str = "fast",
    p_values: Sequence[float] | None = None,
    rtt_s: float = 0.05,
) -> Table:
    """Measured TCP rate vs the Appendix A analytic bounds."""
    from repro.cc.equations import aimd_with_timeouts_rate, padhye_rate_per_rtt

    if p_values is None:
        p_values = [0.05, 0.1, 0.2, 0.3, 0.45]
    duration = 200.0 if scale == "fast" else 600.0
    table = Table(
        title="Figure 20 (validation): measured TCP vs the analytic bounds",
        columns=["p", "measured_pkts_per_rtt", "reno_lower", "aimd_timeouts_upper"],
        notes=(
            "Appendix A: the AIMD-with-timeouts line upper-bounds and the "
            "Reno line lower-bounds analytic TCP behavior; the simulated "
            "flow should land in or near the band."
        ),
    )
    for p in p_values:
        measured = measure_tcp_rate_per_rtt(p, rtt_s=rtt_s, duration_s=duration)
        table.add(
            p,
            measured,
            padhye_rate_per_rtt(p),
            aimd_with_timeouts_rate(p),
        )
    return table
