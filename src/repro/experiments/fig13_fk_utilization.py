"""Figure 13: f(20) and f(200) after the available bandwidth doubles.

Paper: ten identical flows share 10 Mbps; at t = 500 s five stop.  TCP
reaches ~86% utilization within 20 RTTs; TCP(1/8) ~75%, TFRC(8) ~65%; the
extreme TCP(1/256) and TFRC(256) reach only ~60% after 20 RTTs and
65-70% after 200.  TFRC runs with history discounting turned off, isolating
the loss-rate response.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.protocols import Protocol, sqrt, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import DoublingConfig

__all__ = ["FAMILIES", "default_gammas", "jobs", "reduce", "run"]

FAMILIES: dict[str, Callable[[int], Protocol]] = {
    "TCP(1/b)": lambda g: tcp(g),
    "SQRT(1/b)": lambda g: sqrt(g),
    "TFRC(b)": lambda g: tfrc(g, history_discounting=False),
}


def default_gammas(scale: str) -> list[int]:
    if scale == "fast":
        return [2, 8, 64, 256]
    return [2, 4, 8, 16, 32, 64, 128, 256]


def jobs(
    scale: str = "fast",
    gammas: Sequence[int] | None = None,
    families: dict[str, Callable[[int], Protocol]] | None = None,
    **overrides,
) -> list[Job]:
    cfg = pick_config(DoublingConfig, scale, **overrides)
    gammas = list(gammas) if gammas is not None else default_gammas(scale)
    families = families if families is not None else FAMILIES
    return indexed(
        job(
            "fig13",
            "doubling",
            config=cfg,
            protocol=factory(gamma),
            scale=scale,
            tags={"family": family, "b_param": gamma},
        )
        for family, factory in families.items()
        for gamma in gammas
    )


def reduce(results) -> Table:
    table = Table(
        title="Figure 13: link utilization f(20), f(200) after bandwidth doubles",
        columns=["family", "b_param", "f20", "f200"],
        notes=(
            "Paper reference points: TCP(1/2) f(20)~0.86, TCP(1/8)~0.75, "
            "TFRC(8)~0.65; b=256 variants ~0.60 at f(20) and only 0.65-0.70 "
            "at f(200)."
        ),
    )
    for result in results:
        f_of_k = {k: v for k, v in result.value["f_of_k"]}
        table.add(
            result.job.tag("family"),
            result.job.tag("b_param"),
            f_of_k[20],
            f_of_k[200],
        )
    return table


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
