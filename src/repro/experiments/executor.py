"""Fault-tolerant, throughput-oriented job executors: serial and parallel.

Executors take a list of :class:`~repro.experiments.jobs.Job` and return
:class:`JobResult` objects **in job order**, regardless of completion
order, so a parallel run's tables are byte-identical to a serial run's.

The execution pipeline, shared by all executors:

1. answer what it can from the (optional) content-addressed cache;
2. deduplicate the remaining jobs by content hash (two figures asking for
   the same simulation point compute it once);
3. run the unique misses — serially, or across isolated single-worker
   process pools — storing each result into the cache *the moment it
   completes*;
4. fan results out to every position that asked for them.

Because every job is a pure, seeded description, workers need no shared
state: determinism is preserved by construction, and results are keyed by
submission position rather than completion time.  That same purity makes
retries safe — re-running a job can only reproduce the identical payload.

Throughput (the scheduler):

* **cost-model LPT dispatch** — a :class:`~repro.experiments.costmodel.
  CostModel` predicts each job's wall seconds (learned from run history,
  static heuristics when cold) and ``dispatch="lpt"`` submits the
  longest jobs first, so a sweep's stragglers start early instead of
  serializing at the tail of the map.  ``dispatch="fifo"`` preserves
  submission order.  Dispatch only reorders *execution*; results are
  still reduced in canonical job order, so tables cannot change.
* **inline fast path** — jobs predicted under ``inline_threshold_s``
  (closed-form analysis figures: microseconds) run in the coordinating
  process instead of paying a pool round-trip, when no fault injection
  or per-job timeout needs worker isolation.
* **warm fork-server pools** (``pool_mode="warm"``, the default) — worker
  pools come from a preloaded ``multiprocessing.forkserver`` context
  that imports ``repro`` once, so pool builds and crash-rebuilds fork a
  warm template instead of paying interpreter+import startup; the pools
  persist across ``map`` calls (until :meth:`ParallelExecutor.close`)
  so a 20-figure sweep builds its slots once.  Platforms without fork
  fall back to ``spawn``.  ``pool_mode="cold"`` restores the historical
  pools-per-map behavior.
* **packed result transport** (``transport="packed"``, the default) —
  workers return results as length-prefixed binary frames carrying the
  *canonical JSON bytes* the cache stores
  (:mod:`repro.experiments.transport`), so the coordinator splices them
  into cache records instead of re-serializing a re-pickled dict; with
  a disk cache the map's small records flush as batched per-shard pack
  appends (:meth:`~repro.experiments.cache.ResultCache.flush_batch`).

Fault tolerance (the parallel executor, unchanged semantics):

* each worker is its **own** single-process pool, so one crashed worker
  (``BrokenProcessPool``) takes down exactly one in-flight job — the
  slot's pool is rebuilt (with backoff) and the job retried, while every
  other worker keeps computing;
* ordinary exceptions and per-job timeouts (``job_timeout``) are retried
  up to ``max_retries`` times with exponential backoff; a stuck worker is
  terminated and its slot respawned;
* when the pool is irrecoverable (the rebuild budget is exhausted), the
  executor **degrades to in-process serial execution** for the remaining
  jobs rather than failing the run;
* completed results always flow into the cache *before* any failure
  propagates, so no simulation is ever computed twice — a rerun after a
  hard failure answers the salvaged jobs from the cache.  Batched pack
  writes flush before any failure propagates for the same reason.

Observability: :attr:`Executor.last_report` carries full accounting for
the last ``map`` call (retries, failures, timeouts, salvaged results,
pool rebuilds, degradation, per-stage wall-clock, dispatch mode, inline
count, load-balance efficiency), and an optional
:class:`~repro.experiments.runlog.RunLog` records one JSONL event per
job (content hash, status, attempts, worker pid, wall time, dispatch
order, predicted wall seconds) plus a summary per batch.  Deterministic
fault injection for all of the above lives in
:mod:`repro.experiments.faults`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.experiments.cache import MISS, ResultCache
from repro.experiments.costmodel import CostModel
from repro.experiments.faults import FaultSpec
from repro.experiments.jobs import Job, execute_job
from repro.experiments.runlog import RunLog
from repro.experiments.transport import PackedResult, pack_result, unpack_result

__all__ = [
    "DISPATCH_MODES",
    "ExecutionError",
    "ExecutionReport",
    "Executor",
    "JobResult",
    "ParallelExecutor",
    "SerialExecutor",
    "execute",
    "make_executor",
]

#: Default bounded-retry budget for failing (not crashing-pool) jobs.
DEFAULT_MAX_RETRIES = 2
#: Base of the exponential retry backoff, in seconds.
DEFAULT_BACKOFF_S = 0.05
#: Recognized dispatch orders (see ``--dispatch`` / ``REPRO_DISPATCH``).
DISPATCH_MODES = ("fifo", "lpt")
#: Recognized pool modes (see ``REPRO_POOL_MODE``).
POOL_MODES = ("warm", "cold")
#: Recognized result transports (see ``REPRO_TRANSPORT``).
TRANSPORTS = ("packed", "pickle")
#: Jobs predicted at or under this many wall seconds run inline in the
#: coordinator instead of paying a pool round-trip (~ms each).
INLINE_THRESHOLD_S = 0.01

#: Modules the warm fork-server template imports before the first fork,
#: so every worker (and every crash-rebuild) starts with the scenario
#: registry and the execution stack already loaded.
_WARM_PRELOAD = [
    "repro.experiments.executor",
    "repro.experiments.scenarios",
]

_warm_ctx: Optional[multiprocessing.context.BaseContext] = None


def _warm_context() -> multiprocessing.context.BaseContext:
    """The shared preloaded fork-server context (spawn fallback).

    Built lazily — the fork server itself only starts when the first
    pool is created — and shared process-wide so every warm pool forks
    from the same preloaded template.
    """
    global _warm_ctx
    if _warm_ctx is None:
        methods = multiprocessing.get_all_start_methods()
        if "forkserver" in methods:
            ctx = multiprocessing.get_context("forkserver")
            ctx.set_forkserver_preload(_WARM_PRELOAD)
        else:  # pragma: no cover - platforms without fork
            ctx = multiprocessing.get_context("spawn")
        _warm_ctx = ctx
    return _warm_ctx


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else None


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else None


def _env_choice(name: str, choices: Sequence[str]) -> Optional[str]:
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return None
    if raw not in choices:
        raise ValueError(f"{name} must be one of {tuple(choices)}, got {raw!r}")
    return raw


@dataclass
class JobResult:
    """One job's outcome: the job, its JSON-native payload, provenance."""

    job: Job
    value: Any
    cached: bool = False


@dataclass
class ExecutionReport:
    """Accounting for one ``map`` call (surfaced by the CLI and run log)."""

    jobs: int = 0
    computed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    # -- scheduling ---------------------------------------------------------
    dispatch: str = ""  # dispatch order used ("fifo" | "lpt")
    inlined: int = 0  # jobs run on the coordinator's inline fast path
    load_balance: float = 1.0  # max slot busy time / mean (1.0 = perfect)
    # -- fault tolerance ----------------------------------------------------
    retries: int = 0  # re-executions after an error/crash/timeout
    failures: int = 0  # jobs that exhausted their retry budget
    timeouts: int = 0  # per-job timeouts that fired
    salvaged: int = 0  # results completed+cached before a failure/degrade
    pool_rebuilds: int = 0  # worker pools rebuilt after a crash/stall
    degraded: bool = False  # fell back to in-process serial execution
    # -- per-stage wall-clock, seconds --------------------------------------
    lookup_s: float = 0.0  # stage 1: cache lookups
    execute_s: float = 0.0  # stage 2/3: compute + store
    store_s: float = 0.0  # portion of execute_s spent persisting results
    startup_s: float = 0.0  # building / reviving worker pools
    dispatch_s: float = 0.0  # cost prediction + ordering
    transport_s: float = 0.0  # decoding packed result frames
    compute_s: float = 0.0  # sum of successful attempts' wall seconds

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "dispatch": self.dispatch,
            "inlined": self.inlined,
            "load_balance": round(self.load_balance, 6),
            "retries": self.retries,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "salvaged": self.salvaged,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded": self.degraded,
            "lookup_s": round(self.lookup_s, 6),
            "execute_s": round(self.execute_s, 6),
            "store_s": round(self.store_s, 6),
            "startup_s": round(self.startup_s, 6),
            "dispatch_s": round(self.dispatch_s, 6),
            "transport_s": round(self.transport_s, 6),
            "compute_s": round(self.compute_s, 6),
        }


class ExecutionError(RuntimeError):
    """A job exhausted its retry budget; completed results were salvaged.

    By the time this propagates, every result that *did* complete has
    already been stored into the cache (see ``ExecutionReport.salvaged``),
    so a rerun never recomputes them.
    """

    def __init__(self, message: str, *, job: Optional[Job] = None, attempts: int = 0):
        super().__init__(message)
        self.job = job
        self.attempts = attempts


def _pool_run(
    jb: Job, position: int, attempt: int, fault_text: Optional[str]
) -> tuple[Any, int]:
    """Worker-side entry point: run one job, report the worker pid.

    Fault injection (:mod:`repro.experiments.faults`) is bound here —
    inside the worker process — so a ``crash`` fault can only ever kill a
    worker, never the coordinating process.
    """
    fault = None
    if fault_text:
        spec = FaultSpec.parse(fault_text)
        if spec is not None:
            fault = spec.bind(position, attempt)
    return execute_job(jb, fault=fault), os.getpid()


def _pool_run_packed(
    jb: Job, position: int, attempt: int, fault_text: Optional[str]
) -> tuple[PackedResult, int]:
    """Packed-transport worker entry: encode the payload before returning.

    The worker serializes the payload *once*, to the canonical JSON the
    cache would store anyway, so the pool ships one bytes frame instead
    of pickling a nested dict the coordinator must re-serialize.
    """
    value, pid = _pool_run(jb, position, attempt, fault_text)
    return pack_result(value, traced=jb.trace), pid


class Executor:
    """Base executor: caching, dedup, ordering, retries and telemetry.

    Subclasses implement :meth:`_execute`, which runs the deduplicated
    batch and reports each completion through a callback — streaming, so
    completed results reach the cache even if a later job fails.
    """

    workers: int = 1
    #: Declared on the class and initialized in ``__init__`` so it is
    #: always readable, even before the first ``map`` call.
    last_report: ExecutionReport

    def __init__(
        self,
        *,
        job_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        backoff_s: Optional[float] = None,
        run_log: Union[RunLog, str, os.PathLike, None] = None,
        fault: Optional[str] = None,
        dispatch: Optional[str] = None,
        cost_model: Union[CostModel, str, os.PathLike, None] = None,
    ):
        self.job_timeout = (
            job_timeout if job_timeout is not None else _env_float("REPRO_JOB_TIMEOUT")
        )
        env_retries = _env_int("REPRO_MAX_RETRIES")
        self.max_retries = (
            max_retries
            if max_retries is not None
            else (env_retries if env_retries is not None else DEFAULT_MAX_RETRIES)
        )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        self.backoff_s = backoff_s if backoff_s is not None else DEFAULT_BACKOFF_S
        if run_log is None:
            env_log = os.environ.get("REPRO_RUN_LOG", "").strip()
            run_log = env_log or None
        self.run_log = (
            run_log if isinstance(run_log, RunLog) or run_log is None else RunLog(run_log)
        )
        fault_text = fault if fault is not None else os.environ.get("REPRO_FAULT_SPEC")
        FaultSpec.parse(fault_text)  # validate eagerly: fail fast on typos
        self._fault_text = (fault_text or "").strip() or None
        if dispatch is None:
            dispatch = _env_choice("REPRO_DISPATCH", DISPATCH_MODES) or "lpt"
        if dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}"
            )
        self.dispatch = dispatch
        if isinstance(cost_model, CostModel):
            self.cost_model = cost_model
        elif cost_model is not None:
            self.cost_model = CostModel(cost_model)
        else:
            env_sidecar = os.environ.get("REPRO_COST_MODEL", "").strip()
            self.cost_model = CostModel(env_sidecar or None)
        self.last_report = ExecutionReport()
        self._completed_count = 0  # per-map scratch, read by degrade/salvage

    # -- the pipeline -------------------------------------------------------

    def map(
        self, jobs: Sequence[Job], cache: Optional[ResultCache] = None
    ) -> list[JobResult]:
        """Execute ``jobs``; results come back in submission order."""
        jobs = list(jobs)
        report = self.last_report = ExecutionReport(jobs=len(jobs))
        self._completed_count = 0
        values: list[Any] = [MISS] * len(jobs)
        cached = [False] * len(jobs)

        # Stage 1: cache lookups, in submission order.  A traced job only
        # accepts a hit when its trace artifact exists too — a cached
        # result without a trace is recomputed (and re-stored, this time
        # with the trace beside it).
        lookup_started = time.monotonic()
        pending: dict[str, list[int]] = {}
        for i, jb in enumerate(jobs):
            if cache is not None and (not jb.trace or cache.has_trace(jb)):
                hit = cache.lookup(jb)
                if hit is not MISS:
                    values[i] = hit
                    cached[i] = True
                    report.cache_hits += 1
                    self._log_job(jb, status="cached", attempts=0)
                    continue
            pending.setdefault(jb.content_hash, []).append(i)
        report.lookup_s = time.monotonic() - lookup_started

        # Stage 2: dedup identical misses, run each unique job once.
        unique = [(digest, jobs[where[0]]) for digest, where in pending.items()]
        report.deduplicated = sum(len(where) - 1 for where in pending.values())
        report.computed = len(unique)
        outcomes: dict[int, Any] = {}

        def complete(
            pos: int,
            value: Any,
            *,
            attempts: int,
            worker_pid: Optional[int],
            wall_s: float,
            degraded: bool = False,
            timed_out: bool = False,
            dispatch_order: Optional[int] = None,
            predicted_wall_s: Optional[float] = None,
        ) -> None:
            # Store immediately — salvage: a later failure cannot discard
            # this result, and a rerun will answer it from the cache.
            _, jb = unique[pos]
            trace_text: Optional[str] = None
            if isinstance(value, PackedResult):
                # Packed transport: the frame carries the canonical JSON
                # bytes; splice them straight into the cache record.
                transport_started = time.monotonic()
                value_text, trace_text = unpack_result(value)
                report.transport_s += time.monotonic() - transport_started
            else:
                value_text = None
                # A traced execution returns {"__trace__": jsonl,
                # "value": ...}; the wrapper never reaches the result
                # cache or the caller.
                if jb.trace and isinstance(value, dict) and "__trace__" in value:
                    trace_text = value["__trace__"]
                    value = value["value"]
            trace_path: Optional[str] = None
            if cache is not None:
                store_started = time.monotonic()
                if value_text is not None:
                    value = cache.store_text(jb, value_text)
                else:
                    value = cache.store(jb, value)
                if trace_text is not None:
                    cache.store_trace(jb, trace_text)
                    stored_at = cache.trace_path(jb)
                    trace_path = str(stored_at) if stored_at is not None else None
                report.store_s += time.monotonic() - store_started
            elif value_text is not None:
                transport_started = time.monotonic()
                value = json.loads(value_text)
                report.transport_s += time.monotonic() - transport_started
            outcomes[pos] = value
            self._completed_count = len(outcomes)
            report.compute_s += wall_s
            self.cost_model.observe(jb, wall_s)
            self._log_job(
                jb,
                status="computed",
                attempts=attempts,
                worker_pid=worker_pid,
                wall_s=wall_s,
                retried=attempts > 1,
                degraded=degraded,
                timed_out=timed_out,
                trace_path=trace_path,
                dispatch_order=dispatch_order,
                predicted_wall_s=predicted_wall_s,
            )

        batching = cache is not None and cache.begin_batch()
        execute_started = time.monotonic()
        try:
            self._execute([jb for _, jb in unique], complete)
        except Exception:  # simlint: disable=E001(salvage accounting only; the failure is re-raised untouched)
            report.salvaged = len(outcomes)
            raise
        finally:
            if batching:
                # Flush *before* any failure propagates: salvage means the
                # packed records of everything that completed are durable.
                flush_started = time.monotonic()
                try:
                    cache.flush_batch()
                except OSError as exc:
                    print(
                        f"repro: batched cache flush failed: {exc!r}",
                        file=sys.stderr,
                    )
                report.store_s += time.monotonic() - flush_started
            try:
                self.cost_model.save()
            except OSError as exc:
                print(
                    f"repro: cost-model sidecar write failed: {exc!r}",
                    file=sys.stderr,
                )
            report.execute_s = time.monotonic() - execute_started
            self._log_map(report)

        # Stage 3: fan out, preserving submission order.
        for pos, (digest, jb) in enumerate(unique):
            value = outcomes[pos]
            where = pending[digest]
            for i in where:
                values[i] = value
            for i in where[1:]:
                self._log_job(jobs[i], status="deduplicated", attempts=0)
        return [
            JobResult(job=jb, value=value, cached=was_cached)
            for jb, value, was_cached in zip(jobs, values, cached)
        ]

    def _execute(self, jobs: Sequence[Job], complete: Callable) -> None:
        """Run the deduplicated batch; call ``complete(pos, value, ...)``
        for each job as it finishes.  Subclass responsibility."""
        raise NotImplementedError

    def _dispatch_order(
        self, jobs: Sequence[Job], predicted: Sequence[float]
    ) -> list[int]:
        """Execution order over ``range(len(jobs))`` per the dispatch mode.

        LPT sorts by descending predicted wall seconds with the original
        position as tie-break, so equal predictions keep submission
        order and the order is a pure function of the predictions —
        never of completion timing.
        """
        if self.dispatch == "lpt":
            return sorted(range(len(jobs)), key=lambda pos: (-predicted[pos], pos))
        return list(range(len(jobs)))

    def close(self) -> None:
        """Release held resources (worker pools).  Base: nothing to do."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared in-process execution with bounded retries --------------------

    def _run_in_process(
        self,
        pos: int,
        jb: Job,
        complete: Callable,
        *,
        start_attempt: int = 1,
        degraded: bool = False,
    ) -> None:
        """Execute one job here, retrying ordinary exceptions with backoff.

        Fault injection never applies in-process (a ``crash`` fault must
        not be able to kill the coordinating process), so this is also
        the safe fallback used after pool degradation.
        """
        attempt = start_attempt
        while True:
            started = time.monotonic()
            try:
                value = execute_job(jb)
            except Exception as exc:  # simlint: disable=E001(bounded retry loop; exhausting the budget raises ExecutionError from exc)
                if attempt - start_attempt < self.max_retries:
                    self.last_report.retries += 1
                    time.sleep(self.backoff_s * (2 ** (attempt - start_attempt)))
                    attempt += 1
                    continue
                self.last_report.failures += 1
                self._log_job(
                    jb,
                    status="failed",
                    attempts=attempt,
                    degraded=degraded,
                    error=repr(exc),
                )
                raise ExecutionError(
                    f"job {jb!r} failed after {attempt} attempt(s): {exc!r}",
                    job=jb,
                    attempts=attempt,
                ) from exc
            complete(
                pos,
                value,
                attempts=attempt,
                worker_pid=os.getpid(),
                wall_s=time.monotonic() - started,
                degraded=degraded,
            )
            return

    # -- telemetry ----------------------------------------------------------

    def _log_job(
        self,
        jb: Job,
        *,
        status: str,
        attempts: int,
        worker_pid: Optional[int] = None,
        wall_s: float = 0.0,
        retried: bool = False,
        degraded: bool = False,
        timed_out: bool = False,
        error: Optional[str] = None,
        trace_path: Optional[str] = None,
        dispatch_order: Optional[int] = None,
        predicted_wall_s: Optional[float] = None,
    ) -> None:
        if self.run_log is None:
            return
        record = {
            "event": "job",
            "figure": jb.figure,
            "index": jb.index,
            "hash": jb.content_hash,
            "status": status,
            "attempts": attempts,
            "retried": retried,
            "timed_out": timed_out,
            "degraded": degraded,
            "worker_pid": worker_pid,
            "wall_s": round(wall_s, 6),
        }
        if error is not None:
            record["error"] = error
        if trace_path is not None:
            record["trace_path"] = trace_path
        if dispatch_order is not None:
            record["dispatch_order"] = dispatch_order
        if predicted_wall_s is not None:
            record["predicted_wall_s"] = round(predicted_wall_s, 6)
        self.run_log.record(**record)

    def _log_map(self, report: ExecutionReport) -> None:
        if self.run_log is None:
            return
        self.run_log.record(event="map", workers=self.workers, **report.as_dict())


class SerialExecutor(Executor):
    """Run jobs one after another in this process (the default)."""

    workers = 1

    def _execute(self, jobs: Sequence[Job], complete: Callable) -> None:
        report = self.last_report
        report.dispatch = self.dispatch
        dispatch_started = time.monotonic()
        predicted = [self.cost_model.predict(jb) for jb in jobs]
        order = self._dispatch_order(jobs, predicted)
        report.dispatch_s += time.monotonic() - dispatch_started
        for rank, pos in enumerate(order):
            self._run_in_process(
                pos,
                jobs[pos],
                _with_dispatch(complete, rank, predicted[pos]),
            )


def _with_dispatch(
    complete: Callable, rank: int, predicted_wall_s: float
) -> Callable:
    """Bind one job's dispatch provenance onto the completion callback."""

    def wrapped(pos: int, value: Any, **kwargs: Any) -> None:
        kwargs.setdefault("dispatch_order", rank)
        kwargs.setdefault("predicted_wall_s", predicted_wall_s)
        complete(pos, value, **kwargs)

    return wrapped


class _Slot:
    """One isolated worker: a single-process pool plus its in-flight job.

    Worker isolation is what makes failure attribution exact: a crashed
    process breaks only its own pool, so exactly the job it was running
    is retried — every other worker keeps its work.  Warm-mode slots
    outlive individual ``map`` calls; ``busy_s`` accumulates the wall
    time this slot spent on successful harvests within the current map,
    feeding the load-balance efficiency metric.
    """

    __slots__ = ("pool", "item", "future", "started", "alive", "busy_s")

    def __init__(self, pool: Optional[ProcessPoolExecutor]):
        self.pool = pool
        self.item: Optional[tuple[int, Job, int]] = None  # (pos, job, attempt)
        self.future: Optional[Future] = None
        self.started = 0.0
        self.alive = pool is not None
        self.busy_s = 0.0


class ParallelExecutor(Executor):
    """Run jobs across isolated single-process worker pools.

    Jobs and payloads are picklable by contract, and every job carries
    its own seed, so distributing (or retrying) work cannot change any
    result — only the wall-clock time.  Results are keyed by submission
    position, so ordering is deterministic too.

    ``workers=0`` is rejected: zero explicitly means "serial" at the
    :func:`make_executor` level, and silently promoting it to a
    cpu-count-sized pool (as older versions did) contradicted both.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        max_pool_rebuilds: Optional[int] = None,
        pool_mode: Optional[str] = None,
        transport: Optional[str] = None,
        inline_threshold_s: Optional[float] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if workers is None:
            workers = os.cpu_count() or 2
        if workers < 1:
            raise ValueError(
                f"need at least one worker, got {workers}; "
                "use make_executor(0) or SerialExecutor() for serial execution"
            )
        self.workers = workers
        self.max_pool_rebuilds = (
            max_pool_rebuilds if max_pool_rebuilds is not None else workers + 2
        )
        if pool_mode is None:
            pool_mode = _env_choice("REPRO_POOL_MODE", POOL_MODES) or "warm"
        if pool_mode not in POOL_MODES:
            raise ValueError(
                f"pool_mode must be one of {POOL_MODES}, got {pool_mode!r}"
            )
        self.pool_mode = pool_mode
        if transport is None:
            transport = _env_choice("REPRO_TRANSPORT", TRANSPORTS) or "packed"
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        self.transport = transport
        self.inline_threshold_s = (
            inline_threshold_s if inline_threshold_s is not None else INLINE_THRESHOLD_S
        )
        self._rebuilds_used = 0
        self._slots: list[_Slot] = []

    # -- pool plumbing ------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        if self.pool_mode == "warm":
            return ProcessPoolExecutor(max_workers=1, mp_context=_warm_context())
        return ProcessPoolExecutor(max_workers=1)

    def _kill_pool(self, pool: Optional[ProcessPoolExecutor]) -> None:
        """Tear a pool down without waiting on a possibly-stuck worker."""
        if pool is None:
            return
        try:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.terminate()
                except Exception:  # simlint: disable=E001(best-effort kill of a possibly already-dead worker)
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # simlint: disable=E001(best-effort teardown of a broken pool; nothing to salvage from it)
            pass

    def _ensure_slots(self, count: int) -> list[_Slot]:
        """The first ``count`` slots, built or revived, reset for one map.

        Warm mode reuses live pools across maps; dead or missing slots
        get fresh pools (forked from the warm template, so a revival is
        cheap) without charging the per-map rebuild budget — that budget
        meters *crash* recovery, not startup.
        """
        while len(self._slots) < count:
            self._slots.append(_Slot(None))
        slots = self._slots[:count]
        for slot in slots:
            slot.item = None
            slot.future = None
            slot.busy_s = 0.0
            if slot.pool is None or not slot.alive:
                try:
                    slot.pool = self._new_pool()
                    slot.alive = True
                except Exception:  # simlint: disable=E001(pool creation may fail on a sick host; the slot stays dead and the scheduler degrades)
                    slot.pool = None
                    slot.alive = False
        return slots

    def close(self) -> None:
        """Tear down every held worker pool (idempotent)."""
        slots, self._slots = self._slots, []
        for slot in slots:
            self._kill_pool(slot.pool)
            slot.pool = None
            slot.alive = False

    def __del__(self):
        # Warm pools outlive maps by design; don't leak worker processes
        # when the executor itself is garbage-collected.
        if getattr(self, "_slots", None):
            self.close()

    def _respawn_or_retire(self, slot: _Slot) -> None:
        """Rebuild a slot's pool after a crash/stall, within budget."""
        self._kill_pool(slot.pool)
        slot.pool = None
        slot.alive = False
        if self._rebuilds_used >= self.max_pool_rebuilds:
            return  # budget exhausted: the slot stays dead
        self._rebuilds_used += 1
        self.last_report.pool_rebuilds += 1
        time.sleep(self.backoff_s)
        try:
            slot.pool = self._new_pool()
            slot.alive = True
        except Exception:  # simlint: disable=E001(pool respawn may fail on a sick host; the slot retires and the scheduler degrades)
            slot.pool = None
            slot.alive = False

    # -- the scheduler loop -------------------------------------------------

    def _execute(self, jobs: Sequence[Job], complete: Callable) -> None:
        if not jobs:
            return
        report = self.last_report
        report.dispatch = self.dispatch
        dispatch_started = time.monotonic()
        predicted = [self.cost_model.predict(jb) for jb in jobs]
        order = self._dispatch_order(jobs, predicted)
        report.dispatch_s += time.monotonic() - dispatch_started
        finishers = {
            pos: _with_dispatch(complete, rank, predicted[pos])
            for rank, pos in enumerate(order)
        }

        plain = self._fault_text is None and self.job_timeout is None
        if plain and (self.workers == 1 or len(jobs) <= 1):
            # Nothing to inject or time out, and no real parallelism to
            # gain: the pool buys no isolation worth its startup cost.
            for pos in order:
                self._run_in_process(pos, jobs[pos], finishers[pos])
            return

        # Inline fast path: jobs predicted cheaper than a pool round-trip
        # run right here.  Only when no fault spec or timeout needs the
        # worker-isolation boundary (injected faults must be able to kill
        # a worker, never the coordinator).
        if plain and self.inline_threshold_s > 0.0:
            inline = [
                pos for pos in order if predicted[pos] <= self.inline_threshold_s
            ]
        else:
            inline = []
        inlined = dict.fromkeys(inline)
        pooled = [pos for pos in order if pos not in inlined]
        report.inlined += len(inline)
        for pos in inline:
            self._run_in_process(pos, jobs[pos], finishers[pos])
        if not pooled:
            return

        self._rebuilds_used = 0
        queue: deque[tuple[int, Job, int]] = deque(
            (pos, jobs[pos], 1) for pos in pooled
        )
        startup_started = time.monotonic()
        slots = self._ensure_slots(min(self.workers, len(pooled)))
        report.startup_s += time.monotonic() - startup_started
        try:
            while queue or any(slot.item is not None for slot in slots):
                for slot in slots:
                    if slot.alive and slot.item is None and queue:
                        self._submit(slot, queue)
                busy = [slot for slot in slots if slot.item is not None]
                if not busy:
                    if queue and not any(slot.alive for slot in slots):
                        # Pool irrecoverable: degrade to in-process serial.
                        self._degrade(queue, finishers)
                        return
                    continue  # a submit just failed; loop re-fills
                waitmap = {slot.future: slot for slot in busy}
                timeout = None
                if self.job_timeout is not None:
                    deadline = min(slot.started for slot in busy) + self.job_timeout
                    timeout = max(0.0, deadline - time.monotonic())
                done, _ = wait(
                    list(waitmap), timeout=timeout, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                # Harvest in slot order (not set order), and harvest the
                # *whole* done batch before letting a terminal failure
                # propagate: results that completed alongside the failure
                # are salvaged into the cache, not dropped.
                error: Optional[ExecutionError] = None
                for slot in busy:
                    if slot.future is None or slot.future not in done:
                        continue
                    try:
                        self._harvest(slot, queue, finishers, now)
                    except ExecutionError as exc:
                        if error is None:
                            error = exc
                if error is not None:
                    self._drain(slots, finishers)
                    raise error
                if self.job_timeout is not None:
                    for slot in busy:
                        if (
                            slot.item is not None
                            and slot.future is not None
                            and not slot.future.done()
                            and now - slot.started >= self.job_timeout
                        ):
                            self._expire(slot, queue)
        finally:
            busy_times = [slot.busy_s for slot in slots]
            if any(busy_times):
                mean = sum(busy_times) / len(busy_times)
                report.load_balance = max(busy_times) / mean
            if self.pool_mode == "cold":
                self.close()

    def _submit(self, slot: _Slot, queue: deque) -> None:
        pos, jb, attempt = queue.popleft()
        entry = _pool_run_packed if self.transport == "packed" else _pool_run
        try:
            future = slot.pool.submit(entry, jb, pos, attempt, self._fault_text)
        except Exception:  # simlint: disable=E001(the pool can die between harvest and submit; the job is requeued untouched)
            # The pool died between harvest and submit: put the job back
            # untouched (it never ran) and rebuild or retire the slot.
            queue.appendleft((pos, jb, attempt))
            self._respawn_or_retire(slot)
            return
        slot.item = (pos, jb, attempt)
        slot.future = future
        slot.started = time.monotonic()

    def _harvest(
        self, slot: _Slot, queue: deque, finishers: dict, now: float
    ) -> None:
        pos, jb, attempt = slot.item
        wall_s = now - slot.started
        future, slot.item, slot.future = slot.future, None, None
        try:
            value, worker_pid = future.result()
        except BrokenProcessPool:
            # Exactly this slot's job was lost; rebuild the slot (within
            # budget) and retry the job.  Crash retries are bounded by the
            # rebuild budget, not max_retries: when the budget runs out
            # every slot dies and the scheduler degrades to serial.
            self.last_report.retries += 1
            queue.appendleft((pos, jb, attempt + 1))
            self._respawn_or_retire(slot)
        except Exception as exc:  # simlint: disable=E001(worker exception enters the bounded retry path; exhaustion raises ExecutionError)
            self._retry_or_fail(queue, pos, jb, attempt, exc)
        else:
            slot.busy_s += wall_s
            finishers[pos](
                pos, value, attempts=attempt, worker_pid=worker_pid, wall_s=wall_s
            )

    def _drain(self, slots: Sequence[_Slot], finishers: dict) -> None:
        """A terminal failure is about to propagate: give in-flight
        workers a bounded moment to finish, and salvage what they return.

        Without this, a job that completed (or was about to) on another
        slot in the same scheduler tick as the fatal failure would be
        discarded — and recomputed on the next run — purely by race.
        Worker errors here are ignored: the primary failure already owns
        the traceback.
        """
        busy = [slot for slot in slots if slot.future is not None]
        if not busy:
            return
        timeout = self.job_timeout if self.job_timeout is not None else 5.0
        wait([slot.future for slot in busy], timeout=timeout)
        now = time.monotonic()
        for slot in busy:
            future = slot.future
            if future is None or not future.done():
                continue
            pos, jb, attempt = slot.item
            wall_s = now - slot.started
            slot.item = None
            slot.future = None
            try:
                value, worker_pid = future.result()
            except Exception:  # simlint: disable=E001(salvage-only drain; the primary ExecutionError is already propagating)
                continue
            slot.busy_s += wall_s
            finishers[pos](
                pos, value, attempts=attempt, worker_pid=worker_pid, wall_s=wall_s
            )

    def _expire(self, slot: _Slot, queue: deque) -> None:
        """A job outlived ``job_timeout``: kill its worker, retry or fail."""
        pos, jb, attempt = slot.item
        slot.item = None
        slot.future = None
        self.last_report.timeouts += 1
        self._respawn_or_retire(slot)
        self._retry_or_fail(
            queue,
            pos,
            jb,
            attempt,
            TimeoutError(f"job exceeded --job-timeout={self.job_timeout}s"),
            timed_out=True,
        )

    def _retry_or_fail(
        self,
        queue: deque,
        pos: int,
        jb: Job,
        attempt: int,
        exc: BaseException,
        *,
        timed_out: bool = False,
    ) -> None:
        if attempt <= self.max_retries:
            self.last_report.retries += 1
            time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            queue.append((pos, jb, attempt + 1))
            return
        self.last_report.failures += 1
        self._log_job(
            jb,
            status="failed",
            attempts=attempt,
            timed_out=timed_out,
            error=repr(exc),
        )
        raise ExecutionError(
            f"job {jb!r} failed after {attempt} attempt(s): {exc!r}",
            job=jb,
            attempts=attempt,
        ) from exc

    def _degrade(self, queue: deque, finishers: dict) -> None:
        """Pool irrecoverable: finish the remaining jobs in-process.

        Results completed by the pool before degradation are counted as
        salvaged — they are already in the cache and are not recomputed.
        """
        self.last_report.degraded = True
        self.last_report.salvaged = self._completed_count
        while queue:
            pos, jb, attempt = queue.popleft()
            self._run_in_process(
                pos, jb, finishers[pos], start_attempt=attempt, degraded=True
            )


def make_executor(
    parallel: int = 0,
    *,
    job_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    backoff_s: Optional[float] = None,
    run_log: Union[RunLog, str, os.PathLike, None] = None,
    fault: Optional[str] = None,
    dispatch: Optional[str] = None,
    cost_model: Union[CostModel, str, os.PathLike, None] = None,
) -> Executor:
    """``parallel <= 1`` gives the serial executor, else a process pool.

    Keyword arguments default from the environment (``REPRO_JOB_TIMEOUT``,
    ``REPRO_MAX_RETRIES``, ``REPRO_RUN_LOG``, ``REPRO_FAULT_SPEC``,
    ``REPRO_DISPATCH``, ``REPRO_POOL_MODE``, ``REPRO_TRANSPORT``,
    ``REPRO_COST_MODEL``) so the benchmark harness and CI smoke jobs can
    configure fault tolerance, scheduling and telemetry without touching
    call sites.
    """
    kwargs = dict(
        job_timeout=job_timeout,
        max_retries=max_retries,
        backoff_s=backoff_s,
        run_log=run_log,
        fault=fault,
        dispatch=dispatch,
        cost_model=cost_model,
    )
    if parallel and parallel > 1:
        return ParallelExecutor(parallel, **kwargs)
    return SerialExecutor(**kwargs)


def execute(
    jobs: Iterable[Job],
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> list[JobResult]:
    """Convenience wrapper: run ``jobs`` on ``executor`` (default serial)."""
    return (executor or SerialExecutor()).map(list(jobs), cache=cache)
