"""Deterministic job executors: serial, and process-pool parallel.

Executors take a list of :class:`~repro.experiments.jobs.Job` and return
:class:`JobResult` objects **in job order**, regardless of completion
order, so a parallel run's tables are byte-identical to a serial run's.

The execution pipeline, shared by all executors:

1. answer what it can from the (optional) content-addressed cache;
2. deduplicate the remaining jobs by content hash (two figures asking for
   the same simulation point compute it once);
3. run the unique misses — serially or across worker processes;
4. store fresh results back into the cache and fan them out to every
   position that asked for them.

Because every job is a pure, seeded description, workers need no shared
state: determinism is preserved by construction, and results are keyed by
submission position rather than completion time.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.experiments.cache import MISS, ResultCache
from repro.experiments.jobs import Job, execute_job

__all__ = [
    "Executor",
    "JobResult",
    "ParallelExecutor",
    "SerialExecutor",
    "execute",
    "make_executor",
]


@dataclass
class JobResult:
    """One job's outcome: the job, its JSON-native payload, provenance."""

    job: Job
    value: Any
    cached: bool = False


@dataclass
class ExecutionReport:
    """Accounting for one ``map`` call (surfaced by the CLI)."""

    jobs: int = 0
    computed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0


class Executor:
    """Base executor: caching, dedup and ordering; subclasses run batches."""

    workers: int = 1

    def map(
        self, jobs: Sequence[Job], cache: Optional[ResultCache] = None
    ) -> list[JobResult]:
        """Execute ``jobs``; results come back in submission order."""
        jobs = list(jobs)
        self.last_report = ExecutionReport(jobs=len(jobs))
        values: list[Any] = [MISS] * len(jobs)
        cached = [False] * len(jobs)

        # Stage 1: cache lookups, in submission order.
        pending: dict[str, list[int]] = {}
        for i, jb in enumerate(jobs):
            if cache is not None:
                hit = cache.lookup(jb)
                if hit is not MISS:
                    values[i] = hit
                    cached[i] = True
                    self.last_report.cache_hits += 1
                    continue
            pending.setdefault(jb.content_hash, []).append(i)

        # Stage 2: dedup identical misses, run each unique job once.
        unique = [(digest, jobs[where[0]]) for digest, where in pending.items()]
        self.last_report.deduplicated = sum(
            len(where) - 1 for where in pending.values()
        )
        self.last_report.computed = len(unique)
        computed = self._run_batch([jb for _, jb in unique])

        # Stage 3: store and fan out, preserving submission order.
        for (digest, jb), value in zip(unique, computed):
            if cache is not None:
                value = cache.store(jb, value)
            for i in pending[digest]:
                values[i] = value
        return [
            JobResult(job=jb, value=value, cached=was_cached)
            for jb, value, was_cached in zip(jobs, values, cached)
        ]

    def _run_batch(self, jobs: Sequence[Job]) -> list[Any]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """Run jobs one after another in this process (the default)."""

    workers = 1

    def _run_batch(self, jobs: Sequence[Job]) -> list[Any]:
        return [execute_job(jb) for jb in jobs]


class ParallelExecutor(Executor):
    """Run jobs across a pool of worker processes.

    Jobs and payloads are picklable by contract, and every job carries its
    own seed, so distributing work cannot change any result — only the
    wall-clock time.  ``pool.map`` over the (deduplicated) job list keys
    results by submission position, so ordering is deterministic too.
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers if workers else (os.cpu_count() or 2)
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")

    def _run_batch(self, jobs: Sequence[Job]) -> list[Any]:
        if len(jobs) <= 1 or self.workers == 1:
            return [execute_job(jb) for jb in jobs]
        with ProcessPoolExecutor(max_workers=min(self.workers, len(jobs))) as pool:
            return list(pool.map(execute_job, jobs, chunksize=1))


def make_executor(parallel: int = 0) -> Executor:
    """``parallel <= 1`` gives the serial executor, else a process pool."""
    if parallel and parallel > 1:
        return ParallelExecutor(parallel)
    return SerialExecutor()


def execute(
    jobs: Iterable[Job],
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> list[JobResult]:
    """Convenience wrapper: run ``jobs`` on ``executor`` (default serial)."""
    return (executor or SerialExecutor()).map(list(jobs), cache=cache)
