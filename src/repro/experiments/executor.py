"""Fault-tolerant, observable job executors: serial, and process-pool parallel.

Executors take a list of :class:`~repro.experiments.jobs.Job` and return
:class:`JobResult` objects **in job order**, regardless of completion
order, so a parallel run's tables are byte-identical to a serial run's.

The execution pipeline, shared by all executors:

1. answer what it can from the (optional) content-addressed cache;
2. deduplicate the remaining jobs by content hash (two figures asking for
   the same simulation point compute it once);
3. run the unique misses — serially, or across isolated single-worker
   process pools — storing each result into the cache *the moment it
   completes*;
4. fan results out to every position that asked for them.

Because every job is a pure, seeded description, workers need no shared
state: determinism is preserved by construction, and results are keyed by
submission position rather than completion time.  That same purity makes
retries safe — re-running a job can only reproduce the identical payload.

Fault tolerance (the parallel executor):

* each worker is its **own** single-process pool, so one crashed worker
  (``BrokenProcessPool``) takes down exactly one in-flight job — the
  slot's pool is rebuilt (with backoff) and the job retried, while every
  other worker keeps computing;
* ordinary exceptions and per-job timeouts (``job_timeout``) are retried
  up to ``max_retries`` times with exponential backoff; a stuck worker is
  terminated and its slot respawned;
* when the pool is irrecoverable (the rebuild budget is exhausted), the
  executor **degrades to in-process serial execution** for the remaining
  jobs rather than failing the run;
* completed results always flow into the cache *before* any failure
  propagates, so no simulation is ever computed twice — a rerun after a
  hard failure answers the salvaged jobs from the cache.

Observability: :attr:`Executor.last_report` carries full accounting for
the last ``map`` call (retries, failures, timeouts, salvaged results,
pool rebuilds, degradation, per-stage wall-clock), and an optional
:class:`~repro.experiments.runlog.RunLog` records one JSONL event per
job (content hash, status, attempts, worker pid, wall time) plus a
summary per batch.  Deterministic fault injection for all of the above
lives in :mod:`repro.experiments.faults`.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.experiments.cache import MISS, ResultCache
from repro.experiments.faults import FaultSpec
from repro.experiments.jobs import Job, execute_job
from repro.experiments.runlog import RunLog

__all__ = [
    "ExecutionError",
    "ExecutionReport",
    "Executor",
    "JobResult",
    "ParallelExecutor",
    "SerialExecutor",
    "execute",
    "make_executor",
]

#: Default bounded-retry budget for failing (not crashing-pool) jobs.
DEFAULT_MAX_RETRIES = 2
#: Base of the exponential retry backoff, in seconds.
DEFAULT_BACKOFF_S = 0.05


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else None


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else None


@dataclass
class JobResult:
    """One job's outcome: the job, its JSON-native payload, provenance."""

    job: Job
    value: Any
    cached: bool = False


@dataclass
class ExecutionReport:
    """Accounting for one ``map`` call (surfaced by the CLI and run log)."""

    jobs: int = 0
    computed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    # -- fault tolerance ----------------------------------------------------
    retries: int = 0  # re-executions after an error/crash/timeout
    failures: int = 0  # jobs that exhausted their retry budget
    timeouts: int = 0  # per-job timeouts that fired
    salvaged: int = 0  # results completed+cached before a failure/degrade
    pool_rebuilds: int = 0  # worker pools rebuilt after a crash/stall
    degraded: bool = False  # fell back to in-process serial execution
    # -- per-stage wall-clock, seconds --------------------------------------
    lookup_s: float = 0.0  # stage 1: cache lookups
    execute_s: float = 0.0  # stage 2/3: compute + store
    store_s: float = 0.0  # portion of execute_s spent persisting results

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "retries": self.retries,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "salvaged": self.salvaged,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded": self.degraded,
            "lookup_s": round(self.lookup_s, 6),
            "execute_s": round(self.execute_s, 6),
            "store_s": round(self.store_s, 6),
        }


class ExecutionError(RuntimeError):
    """A job exhausted its retry budget; completed results were salvaged.

    By the time this propagates, every result that *did* complete has
    already been stored into the cache (see ``ExecutionReport.salvaged``),
    so a rerun never recomputes them.
    """

    def __init__(self, message: str, *, job: Optional[Job] = None, attempts: int = 0):
        super().__init__(message)
        self.job = job
        self.attempts = attempts


def _pool_run(
    jb: Job, position: int, attempt: int, fault_text: Optional[str]
) -> tuple[Any, int]:
    """Worker-side entry point: run one job, report the worker pid.

    Fault injection (:mod:`repro.experiments.faults`) is bound here —
    inside the worker process — so a ``crash`` fault can only ever kill a
    worker, never the coordinating process.
    """
    fault = None
    if fault_text:
        spec = FaultSpec.parse(fault_text)
        if spec is not None:
            fault = spec.bind(position, attempt)
    return execute_job(jb, fault=fault), os.getpid()


class Executor:
    """Base executor: caching, dedup, ordering, retries and telemetry.

    Subclasses implement :meth:`_execute`, which runs the deduplicated
    batch and reports each completion through a callback — streaming, so
    completed results reach the cache even if a later job fails.
    """

    workers: int = 1
    #: Declared on the class and initialized in ``__init__`` so it is
    #: always readable, even before the first ``map`` call.
    last_report: ExecutionReport

    def __init__(
        self,
        *,
        job_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        backoff_s: Optional[float] = None,
        run_log: Union[RunLog, str, os.PathLike, None] = None,
        fault: Optional[str] = None,
    ):
        self.job_timeout = (
            job_timeout if job_timeout is not None else _env_float("REPRO_JOB_TIMEOUT")
        )
        env_retries = _env_int("REPRO_MAX_RETRIES")
        self.max_retries = (
            max_retries
            if max_retries is not None
            else (env_retries if env_retries is not None else DEFAULT_MAX_RETRIES)
        )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        self.backoff_s = backoff_s if backoff_s is not None else DEFAULT_BACKOFF_S
        if run_log is None:
            env_log = os.environ.get("REPRO_RUN_LOG", "").strip()
            run_log = env_log or None
        self.run_log = (
            run_log if isinstance(run_log, RunLog) or run_log is None else RunLog(run_log)
        )
        fault_text = fault if fault is not None else os.environ.get("REPRO_FAULT_SPEC")
        FaultSpec.parse(fault_text)  # validate eagerly: fail fast on typos
        self._fault_text = (fault_text or "").strip() or None
        self.last_report = ExecutionReport()
        self._completed_count = 0  # per-map scratch, read by degrade/salvage

    # -- the pipeline -------------------------------------------------------

    def map(
        self, jobs: Sequence[Job], cache: Optional[ResultCache] = None
    ) -> list[JobResult]:
        """Execute ``jobs``; results come back in submission order."""
        jobs = list(jobs)
        report = self.last_report = ExecutionReport(jobs=len(jobs))
        self._completed_count = 0
        values: list[Any] = [MISS] * len(jobs)
        cached = [False] * len(jobs)

        # Stage 1: cache lookups, in submission order.  A traced job only
        # accepts a hit when its trace artifact exists too — a cached
        # result without a trace is recomputed (and re-stored, this time
        # with the trace beside it).
        lookup_started = time.monotonic()
        pending: dict[str, list[int]] = {}
        for i, jb in enumerate(jobs):
            if cache is not None and (not jb.trace or cache.has_trace(jb)):
                hit = cache.lookup(jb)
                if hit is not MISS:
                    values[i] = hit
                    cached[i] = True
                    report.cache_hits += 1
                    self._log_job(jb, status="cached", attempts=0)
                    continue
            pending.setdefault(jb.content_hash, []).append(i)
        report.lookup_s = time.monotonic() - lookup_started

        # Stage 2: dedup identical misses, run each unique job once.
        unique = [(digest, jobs[where[0]]) for digest, where in pending.items()]
        report.deduplicated = sum(len(where) - 1 for where in pending.values())
        report.computed = len(unique)
        outcomes: dict[int, Any] = {}

        def complete(
            pos: int,
            value: Any,
            *,
            attempts: int,
            worker_pid: Optional[int],
            wall_s: float,
            degraded: bool = False,
            timed_out: bool = False,
        ) -> None:
            # Store immediately — salvage: a later failure cannot discard
            # this result, and a rerun will answer it from the cache.
            _, jb = unique[pos]
            # A traced execution returns {"__trace__": jsonl, "value": ...};
            # the wrapper never reaches the result cache or the caller.
            trace_text: Optional[str] = None
            if jb.trace and isinstance(value, dict) and "__trace__" in value:
                trace_text = value["__trace__"]
                value = value["value"]
            trace_path: Optional[str] = None
            if cache is not None:
                store_started = time.monotonic()
                value = cache.store(jb, value)
                if trace_text is not None:
                    cache.store_trace(jb, trace_text)
                    stored_at = cache.trace_path(jb)
                    trace_path = str(stored_at) if stored_at is not None else None
                report.store_s += time.monotonic() - store_started
            outcomes[pos] = value
            self._completed_count = len(outcomes)
            self._log_job(
                jb,
                status="computed",
                attempts=attempts,
                worker_pid=worker_pid,
                wall_s=wall_s,
                retried=attempts > 1,
                degraded=degraded,
                timed_out=timed_out,
                trace_path=trace_path,
            )

        execute_started = time.monotonic()
        try:
            self._execute([jb for _, jb in unique], complete)
        except Exception:  # simlint: disable=E001(salvage accounting only; the failure is re-raised untouched)
            report.salvaged = len(outcomes)
            raise
        finally:
            report.execute_s = time.monotonic() - execute_started
            self._log_map(report)

        # Stage 3: fan out, preserving submission order.
        for pos, (digest, jb) in enumerate(unique):
            value = outcomes[pos]
            where = pending[digest]
            for i in where:
                values[i] = value
            for i in where[1:]:
                self._log_job(jobs[i], status="deduplicated", attempts=0)
        return [
            JobResult(job=jb, value=value, cached=was_cached)
            for jb, value, was_cached in zip(jobs, values, cached)
        ]

    def _execute(self, jobs: Sequence[Job], complete: Callable) -> None:
        """Run the deduplicated batch; call ``complete(pos, value, ...)``
        for each job as it finishes.  Subclass responsibility."""
        raise NotImplementedError

    # -- shared in-process execution with bounded retries --------------------

    def _run_in_process(
        self,
        pos: int,
        jb: Job,
        complete: Callable,
        *,
        start_attempt: int = 1,
        degraded: bool = False,
    ) -> None:
        """Execute one job here, retrying ordinary exceptions with backoff.

        Fault injection never applies in-process (a ``crash`` fault must
        not be able to kill the coordinating process), so this is also
        the safe fallback used after pool degradation.
        """
        attempt = start_attempt
        while True:
            started = time.monotonic()
            try:
                value = execute_job(jb)
            except Exception as exc:  # simlint: disable=E001(bounded retry loop; exhausting the budget raises ExecutionError from exc)
                if attempt - start_attempt < self.max_retries:
                    self.last_report.retries += 1
                    time.sleep(self.backoff_s * (2 ** (attempt - start_attempt)))
                    attempt += 1
                    continue
                self.last_report.failures += 1
                self._log_job(
                    jb,
                    status="failed",
                    attempts=attempt,
                    degraded=degraded,
                    error=repr(exc),
                )
                raise ExecutionError(
                    f"job {jb!r} failed after {attempt} attempt(s): {exc!r}",
                    job=jb,
                    attempts=attempt,
                ) from exc
            complete(
                pos,
                value,
                attempts=attempt,
                worker_pid=os.getpid(),
                wall_s=time.monotonic() - started,
                degraded=degraded,
            )
            return

    # -- telemetry ----------------------------------------------------------

    def _log_job(
        self,
        jb: Job,
        *,
        status: str,
        attempts: int,
        worker_pid: Optional[int] = None,
        wall_s: float = 0.0,
        retried: bool = False,
        degraded: bool = False,
        timed_out: bool = False,
        error: Optional[str] = None,
        trace_path: Optional[str] = None,
    ) -> None:
        if self.run_log is None:
            return
        record = {
            "event": "job",
            "figure": jb.figure,
            "index": jb.index,
            "hash": jb.content_hash,
            "status": status,
            "attempts": attempts,
            "retried": retried,
            "timed_out": timed_out,
            "degraded": degraded,
            "worker_pid": worker_pid,
            "wall_s": round(wall_s, 6),
        }
        if error is not None:
            record["error"] = error
        if trace_path is not None:
            record["trace_path"] = trace_path
        self.run_log.record(**record)

    def _log_map(self, report: ExecutionReport) -> None:
        if self.run_log is None:
            return
        self.run_log.record(event="map", workers=self.workers, **report.as_dict())


class SerialExecutor(Executor):
    """Run jobs one after another in this process (the default)."""

    workers = 1

    def _execute(self, jobs: Sequence[Job], complete: Callable) -> None:
        for pos, jb in enumerate(jobs):
            self._run_in_process(pos, jb, complete)


class _Slot:
    """One isolated worker: a single-process pool plus its in-flight job.

    Worker isolation is what makes failure attribution exact: a crashed
    process breaks only its own pool, so exactly the job it was running
    is retried — every other worker keeps its work.
    """

    __slots__ = ("pool", "item", "future", "started", "alive")

    def __init__(self, pool: Optional[ProcessPoolExecutor]):
        self.pool = pool
        self.item: Optional[tuple[int, Job, int]] = None  # (pos, job, attempt)
        self.future: Optional[Future] = None
        self.started = 0.0
        self.alive = pool is not None


class ParallelExecutor(Executor):
    """Run jobs across isolated single-process worker pools.

    Jobs and payloads are picklable by contract, and every job carries
    its own seed, so distributing (or retrying) work cannot change any
    result — only the wall-clock time.  Results are keyed by submission
    position, so ordering is deterministic too.

    ``workers=0`` is rejected: zero explicitly means "serial" at the
    :func:`make_executor` level, and silently promoting it to a
    cpu-count-sized pool (as older versions did) contradicted both.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        max_pool_rebuilds: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if workers is None:
            workers = os.cpu_count() or 2
        if workers < 1:
            raise ValueError(
                f"need at least one worker, got {workers}; "
                "use make_executor(0) or SerialExecutor() for serial execution"
            )
        self.workers = workers
        self.max_pool_rebuilds = (
            max_pool_rebuilds if max_pool_rebuilds is not None else workers + 2
        )
        self._rebuilds_used = 0

    # -- pool plumbing ------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=1)

    def _kill_pool(self, pool: Optional[ProcessPoolExecutor]) -> None:
        """Tear a pool down without waiting on a possibly-stuck worker."""
        if pool is None:
            return
        try:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.terminate()
                except Exception:  # simlint: disable=E001(best-effort kill of a possibly already-dead worker)
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # simlint: disable=E001(best-effort teardown of a broken pool; nothing to salvage from it)
            pass

    def _respawn_or_retire(self, slot: _Slot) -> None:
        """Rebuild a slot's pool after a crash/stall, within budget."""
        self._kill_pool(slot.pool)
        slot.pool = None
        slot.alive = False
        if self._rebuilds_used >= self.max_pool_rebuilds:
            return  # budget exhausted: the slot stays dead
        self._rebuilds_used += 1
        self.last_report.pool_rebuilds += 1
        time.sleep(self.backoff_s)
        try:
            slot.pool = self._new_pool()
            slot.alive = True
        except Exception:  # simlint: disable=E001(pool respawn may fail on a sick host; the slot retires and the scheduler degrades)
            slot.pool = None
            slot.alive = False

    # -- the scheduler loop -------------------------------------------------

    def _execute(self, jobs: Sequence[Job], complete: Callable) -> None:
        if not jobs:
            return
        if (
            self._fault_text is None
            and self.job_timeout is None
            and (self.workers == 1 or len(jobs) <= 1)
        ):
            # Nothing to inject or time out, and no real parallelism to
            # gain: the pool buys no isolation worth its startup cost.
            for pos, jb in enumerate(jobs):
                self._run_in_process(pos, jb, complete)
            return

        self._rebuilds_used = 0
        queue: deque[tuple[int, Job, int]] = deque(
            (pos, jb, 1) for pos, jb in enumerate(jobs)
        )
        slots = [_Slot(self._new_pool()) for _ in range(min(self.workers, len(jobs)))]
        try:
            while queue or any(slot.item is not None for slot in slots):
                for slot in slots:
                    if slot.alive and slot.item is None and queue:
                        self._submit(slot, queue)
                busy = [slot for slot in slots if slot.item is not None]
                if not busy:
                    if queue and not any(slot.alive for slot in slots):
                        # Pool irrecoverable: degrade to in-process serial.
                        self._degrade(queue, complete)
                        return
                    continue  # a submit just failed; loop re-fills
                waitmap = {slot.future: slot for slot in busy}
                timeout = None
                if self.job_timeout is not None:
                    deadline = min(slot.started for slot in busy) + self.job_timeout
                    timeout = max(0.0, deadline - time.monotonic())
                done, _ = wait(
                    list(waitmap), timeout=timeout, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for future in done:
                    self._harvest(waitmap[future], queue, complete, now)
                if self.job_timeout is not None:
                    for slot in busy:
                        if (
                            slot.item is not None
                            and slot.future is not None
                            and not slot.future.done()
                            and now - slot.started >= self.job_timeout
                        ):
                            self._expire(slot, queue)
        finally:
            for slot in slots:
                self._kill_pool(slot.pool)
                slot.pool = None

    def _submit(self, slot: _Slot, queue: deque) -> None:
        pos, jb, attempt = queue.popleft()
        try:
            future = slot.pool.submit(_pool_run, jb, pos, attempt, self._fault_text)
        except Exception:  # simlint: disable=E001(the pool can die between harvest and submit; the job is requeued untouched)
            # The pool died between harvest and submit: put the job back
            # untouched (it never ran) and rebuild or retire the slot.
            queue.appendleft((pos, jb, attempt))
            self._respawn_or_retire(slot)
            return
        slot.item = (pos, jb, attempt)
        slot.future = future
        slot.started = time.monotonic()

    def _harvest(self, slot: _Slot, queue: deque, complete: Callable, now: float) -> None:
        pos, jb, attempt = slot.item
        wall_s = now - slot.started
        future, slot.item, slot.future = slot.future, None, None
        try:
            value, worker_pid = future.result()
        except BrokenProcessPool:
            # Exactly this slot's job was lost; rebuild the slot (within
            # budget) and retry the job.  Crash retries are bounded by the
            # rebuild budget, not max_retries: when the budget runs out
            # every slot dies and the scheduler degrades to serial.
            self.last_report.retries += 1
            queue.appendleft((pos, jb, attempt + 1))
            self._respawn_or_retire(slot)
        except Exception as exc:  # simlint: disable=E001(worker exception enters the bounded retry path; exhaustion raises ExecutionError)
            self._retry_or_fail(queue, pos, jb, attempt, exc)
        else:
            complete(
                pos, value, attempts=attempt, worker_pid=worker_pid, wall_s=wall_s
            )

    def _expire(self, slot: _Slot, queue: deque) -> None:
        """A job outlived ``job_timeout``: kill its worker, retry or fail."""
        pos, jb, attempt = slot.item
        slot.item = None
        slot.future = None
        self.last_report.timeouts += 1
        self._respawn_or_retire(slot)
        self._retry_or_fail(
            queue,
            pos,
            jb,
            attempt,
            TimeoutError(f"job exceeded --job-timeout={self.job_timeout}s"),
            timed_out=True,
        )

    def _retry_or_fail(
        self,
        queue: deque,
        pos: int,
        jb: Job,
        attempt: int,
        exc: BaseException,
        *,
        timed_out: bool = False,
    ) -> None:
        if attempt <= self.max_retries:
            self.last_report.retries += 1
            time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            queue.append((pos, jb, attempt + 1))
            return
        self.last_report.failures += 1
        self._log_job(
            jb,
            status="failed",
            attempts=attempt,
            timed_out=timed_out,
            error=repr(exc),
        )
        raise ExecutionError(
            f"job {jb!r} failed after {attempt} attempt(s): {exc!r}",
            job=jb,
            attempts=attempt,
        ) from exc

    def _degrade(self, queue: deque, complete: Callable) -> None:
        """Pool irrecoverable: finish the remaining jobs in-process.

        Results completed by the pool before degradation are counted as
        salvaged — they are already in the cache and are not recomputed.
        """
        self.last_report.degraded = True
        self.last_report.salvaged = self._completed_count
        while queue:
            pos, jb, attempt = queue.popleft()
            self._run_in_process(
                pos, jb, complete, start_attempt=attempt, degraded=True
            )


def make_executor(
    parallel: int = 0,
    *,
    job_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    backoff_s: Optional[float] = None,
    run_log: Union[RunLog, str, os.PathLike, None] = None,
    fault: Optional[str] = None,
) -> Executor:
    """``parallel <= 1`` gives the serial executor, else a process pool.

    Keyword arguments default from the environment (``REPRO_JOB_TIMEOUT``,
    ``REPRO_MAX_RETRIES``, ``REPRO_RUN_LOG``, ``REPRO_FAULT_SPEC``) so the
    benchmark harness and CI smoke jobs can configure fault tolerance and
    telemetry without touching call sites.
    """
    kwargs = dict(
        job_timeout=job_timeout,
        max_retries=max_retries,
        backoff_s=backoff_s,
        run_log=run_log,
        fault=fault,
    )
    if parallel and parallel > 1:
        return ParallelExecutor(parallel, **kwargs)
    return SerialExecutor(**kwargs)


def execute(
    jobs: Iterable[Job],
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
) -> list[JobResult]:
    """Convenience wrapper: run ``jobs`` on ``executor`` (default serial)."""
    return (executor or SerialExecutor()).map(list(jobs), cache=cache)
