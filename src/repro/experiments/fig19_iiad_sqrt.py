"""Figure 19: IIAD and SQRT under the mildly bursty loss pattern.

Paper: because IIAD reduces its window additively and increases it slowly
when bandwidth becomes available, it achieves smoothness at the cost of
throughput, relative to SQRT.
"""

from __future__ import annotations

from repro.experiments.fig17_mild_bursty import run as _run_mild
from repro.experiments.protocols import iiad, sqrt
from repro.experiments.runner import Table

__all__ = ["run"]


def run(scale: str = "fast", **kwargs) -> Table:
    table = _run_mild(scale, protocols=[iiad(), sqrt(2)], **kwargs)
    table.title = "Figure 19: IIAD vs SQRT under the mildly bursty loss pattern"
    table.notes = (
        "Paper: IIAD is smoother than SQRT but pays for it with lower "
        "throughput."
    )
    return table
