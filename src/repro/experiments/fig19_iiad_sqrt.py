"""Figure 19: IIAD and SQRT under the mildly bursty loss pattern.

Paper: because IIAD reduces its window additively and increases it slowly
when bandwidth becomes available, it achieves smoothness at the cost of
throughput, relative to SQRT.
"""

from __future__ import annotations

from repro.experiments.fig17_mild_bursty import jobs as _mild_jobs
from repro.experiments.fig17_mild_bursty import loss_pattern_table
from repro.experiments.jobs import Job
from repro.experiments.protocols import iiad, sqrt
from repro.experiments.runner import Table

__all__ = ["jobs", "reduce", "run"]


def jobs(scale: str = "fast", **kwargs) -> list[Job]:
    kwargs.setdefault("protocols", [iiad(), sqrt(2)])
    return _mild_jobs(scale, figure="fig19", **kwargs)


def reduce(results) -> Table:
    return loss_pattern_table(
        results,
        title="Figure 19: IIAD vs SQRT under the mildly bursty loss pattern",
        notes=(
            "Paper: IIAD is smoother than SQRT but pays for it with lower "
            "throughput."
        ),
    )


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
