"""Packed result transport: canonical-JSON payloads in binary frames.

The parallel executor historically returned results by letting
``ProcessPoolExecutor`` pickle the nested payload dict in the worker and
re-building it object-by-object in the coordinator, which then
*re-serialized* it to canonical JSON for the result cache.  The packed
transport removes the double serialization: the worker encodes the
payload **once**, to the exact canonical-JSON bytes the cache stores
(``json.dumps(value, allow_nan=True, sort_keys=True)``), and ships them
in a small length-prefixed binary frame (stdlib :mod:`struct`, no
msgpack dependency).  The coordinator splices those bytes directly into
the cache record (:meth:`~repro.experiments.cache.ResultCache.store_text`)
and decodes the value with one ``json.loads`` — the same round-trip
``store()`` performs, so results are byte-identical whichever transport
carried them.

Frame layout (little-endian)::

    4s  magic  b"RPK1"
    B   flags  bit 0: a trace section follows the value section
    3x  padding (reserved, zero)
    I   value length in bytes
    I   trace length in bytes (0 when bit 0 of flags is clear)
    ... value: canonical JSON, UTF-8
    ... trace: telemetry JSONL, UTF-8 (only when flagged)

A frame distinguishes "no trace" (flag clear) from "empty trace" (flag
set, zero length), mirroring the ``{"__trace__": ..., "value": ...}``
wrapper :func:`~repro.experiments.jobs.execute_job` returns for traced
jobs.  :class:`PackedResult` is a ``bytes`` subclass so a frame survives
the pool's pickling untouched and the coordinator can recognize packed
payloads by type alone.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional, Tuple

__all__ = [
    "MAGIC",
    "PackedResult",
    "TransportError",
    "pack_frame",
    "pack_result",
    "unpack_result",
]

#: Frame magic: "Repro PacKed", format 1.  Bump on layout changes.
MAGIC = b"RPK1"

_HEADER = struct.Struct("<4sB3xII")
_FLAG_TRACE = 0x01


class TransportError(ValueError):
    """A packed frame is malformed (bad magic, truncated, wrong length)."""


class PackedResult(bytes):
    """One packed result frame, as produced by :func:`pack_result`.

    Subclassing ``bytes`` keeps pickling trivial (the pool transfers the
    raw buffer) while letting the coordinator distinguish a packed frame
    from an ordinary payload by ``isinstance`` alone.
    """

    __slots__ = ()


def pack_frame(value_text: str, trace_text: Optional[str]) -> PackedResult:
    """Assemble a frame from canonical-JSON ``value_text`` and a trace."""
    value_bytes = value_text.encode("utf-8")
    flags = 0
    trace_bytes = b""
    if trace_text is not None:
        flags |= _FLAG_TRACE
        trace_bytes = trace_text.encode("utf-8")
    header = _HEADER.pack(MAGIC, flags, len(value_bytes), len(trace_bytes))
    return PackedResult(header + value_bytes + trace_bytes)


def pack_result(value: Any, traced: bool = False) -> PackedResult:
    """Encode one job payload (worker side).

    ``value`` is the raw return of
    :func:`~repro.experiments.jobs.execute_job`; when ``traced``, the
    ``{"__trace__": jsonl, "value": payload}`` wrapper is split so the
    trace rides in its own frame section and never pollutes the value
    bytes.  The value is dumped exactly as the result cache would dump
    it — ``sort_keys`` canonical JSON — so the coordinator can splice
    the bytes into a cache record without re-serializing.
    """
    trace_text: Optional[str] = None
    if traced and isinstance(value, dict) and "__trace__" in value:
        trace_text = value["__trace__"]
        value = value["value"]
    value_text = json.dumps(value, allow_nan=True, sort_keys=True)
    return pack_frame(value_text, trace_text)


def unpack_result(frame: bytes) -> Tuple[str, Optional[str]]:
    """Split a frame back into ``(value_text, trace_text_or_None)``."""
    if len(frame) < _HEADER.size:
        raise TransportError(
            f"truncated frame: {len(frame)} bytes < {_HEADER.size}-byte header"
        )
    magic, flags, value_len, trace_len = _HEADER.unpack_from(frame)
    if magic != MAGIC:
        raise TransportError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    expected = _HEADER.size + value_len + trace_len
    if len(frame) != expected:
        raise TransportError(
            f"frame length mismatch: header promises {expected} bytes, "
            f"got {len(frame)}"
        )
    value_start = _HEADER.size
    trace_start = value_start + value_len
    try:
        value_text = bytes(frame[value_start:trace_start]).decode("utf-8")
        if not flags & _FLAG_TRACE:
            return value_text, None
        trace_text = bytes(frame[trace_start:]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TransportError(f"corrupt frame payload: {exc}") from exc
    return value_text, trace_text
