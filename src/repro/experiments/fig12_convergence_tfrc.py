"""Figure 12: time to 0.1-fair convergence for two TFRC(k) flows.

Paper: unlike TCP(b), the TFRC(k) convergence time does not increase as
rapidly with increased slowness, because TFRC adjusts to the available rate
after a fixed number of loss intervals rather than by repeated
multiplicative decreases.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.protocols import tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import ConvergenceConfig, run_convergence

__all__ = ["default_ks", "run"]


def default_ks(scale: str) -> list[int]:
    if scale == "fast":
        return [1, 6, 32, 128]
    return [1, 2, 6, 16, 32, 64, 128, 256]


def run(scale: str = "fast", ks: Sequence[int] | None = None, **overrides) -> Table:
    cfg = pick_config(ConvergenceConfig, scale, **overrides)
    table = Table(
        title="Figure 12: 0.1-fair convergence time for two TFRC(k) flows",
        columns=["k", "convergence_s"],
        notes=(
            "Paper: grows much more slowly with k than TCP(b) does with "
            "1/b (compare Figure 10)."
        ),
    )
    for k in ks if ks is not None else default_ks(scale):
        table.add(k, run_convergence(tfrc(k), cfg))
    return table
