"""Figure 12: time to 0.1-fair convergence for two TFRC(k) flows.

Paper: unlike TCP(b), the TFRC(k) convergence time does not increase as
rapidly with increased slowness, because TFRC adjusts to the available rate
after a fixed number of loss intervals rather than by repeated
multiplicative decreases.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.protocols import tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import ConvergenceConfig

__all__ = ["default_ks", "jobs", "reduce", "run"]


def default_ks(scale: str) -> list[int]:
    if scale == "fast":
        return [1, 6, 32, 128]
    return [1, 2, 6, 16, 32, 64, 128, 256]


def jobs(
    scale: str = "fast", ks: Sequence[int] | None = None, **overrides
) -> list[Job]:
    cfg = pick_config(ConvergenceConfig, scale, **overrides)
    return indexed(
        job(
            "fig12",
            "convergence",
            config=replace(cfg, seeds=(seed,)),
            protocol=tfrc(k),
            seed=seed,
            scale=scale,
            tags={"k": k},
        )
        for k in (ks if ks is not None else default_ks(scale))
        for seed in cfg.seeds
    )


def reduce(results) -> Table:
    table = Table(
        title="Figure 12: 0.1-fair convergence time for two TFRC(k) flows",
        columns=["k", "convergence_s"],
        notes=(
            "Paper: grows much more slowly with k than TCP(b) does with "
            "1/b (compare Figure 10)."
        ),
    )
    by_k: dict[int, list[float]] = {}
    for result in results:
        by_k.setdefault(result.job.tag("k"), []).append(result.value)
    for k, times in by_k.items():
        table.add(k, sum(times) / len(times))
    return table


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
