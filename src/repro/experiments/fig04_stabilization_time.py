"""Figure 4: stabilization time vs the slowness parameter gamma.

Paper: for TCP(1/gamma) and SQRT(1/gamma) the stabilization time stays low
across the whole gamma range (self-clocking limits the sending rate to the
previous RTT's bottleneck ACK rate); for the rate-based RAP(1/gamma) and
TFRC(gamma) it grows to hundreds of RTTs at large gamma; TFRC with the
conservative_ self-clocking option is repaired.

Figure 5 reports the same sweep with the stabilization *cost* metric, so
both figures define the same job list and share cached results; the sweep
is never run twice.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.experiments.jobs import Job, indexed, job
from repro.experiments.protocols import Protocol, rap, sqrt, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import CbrRestartConfig, CbrRestartResult, run_cbr_restart

__all__ = [
    "FAMILIES",
    "default_gammas",
    "jobs",
    "reduce",
    "run",
    "sweep",
    "table_from_sweep",
]

# Family name -> factory(gamma) -> Protocol.
FAMILIES: dict[str, Callable[[int], Protocol]] = {
    "TCP(1/g)": lambda g: tcp(g),
    "SQRT(1/g)": lambda g: sqrt(g),
    "RAP(1/g)": lambda g: rap(g),
    "TFRC(g)": lambda g: tfrc(g),
    "TFRC(g)+SC": lambda g: tfrc(g, conservative=True),
}


def default_gammas(scale: str) -> list[int]:
    if scale == "fast":
        return [2, 16, 64, 256]
    return [2, 4, 8, 16, 32, 64, 128, 256]


def jobs(
    scale: str = "fast",
    gammas: Sequence[int] | None = None,
    families: dict[str, Callable[[int], Protocol]] | None = None,
    **overrides,
) -> list[Job]:
    """The CBR-restart sweep across families x gammas, as jobs."""
    cfg = pick_config(CbrRestartConfig, scale, **overrides)
    gammas = list(gammas) if gammas is not None else default_gammas(scale)
    families = families if families is not None else FAMILIES
    return indexed(
        job(
            "fig04",
            "cbr_restart",
            config=cfg,
            protocol=factory(gamma),
            scale=scale,
            tags={"family": family, "gamma": gamma},
        )
        for family, factory in families.items()
        for gamma in gammas
    )


def _metric_table(metric: str) -> tuple[str, str, str]:
    if metric == "time":
        return (
            "time_rtts",
            "Figure 4: stabilization time (RTTs) vs gamma",
            "Paper: self-clocked TCP/SQRT stay low for all gamma; RAP and "
            "TFRC without self-clocking reach hundreds of RTTs at gamma=256; "
            "TFRC+SC behaves like TCP.",
        )
    if metric == "cost":
        return (
            "cost",
            "Figure 5: stabilization cost vs gamma (log scale in paper)",
            "Paper: at large gamma the rate-based algorithms are up to two "
            "orders of magnitude worse than the most slowly-responsive "
            "TCP(1/gamma) or SQRT(1/gamma).",
        )
    raise ValueError(f"unknown metric {metric!r}")


def reduce(results, metric: str = "time") -> Table:
    """Fold sweep payloads into the Figure 4 (time) or 5 (cost) table."""
    field, title, note = _metric_table(metric)
    table = Table(title=title, columns=["family", "gamma", "value"], notes=note)
    keyed = {
        (r.job.tag("family"), r.job.tag("gamma")): r.value[field] for r in results
    }
    for (family, gamma), value in sorted(keyed.items()):
        table.add(family, gamma, value)
    return table


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache), metric="time")


# ---------------------------------------------------------------------------
# Legacy in-process sweep API (kept for the benchmark harness and tests
# that inspect the rich CbrRestartResult objects directly).
# ---------------------------------------------------------------------------


def sweep(
    scale: str = "fast",
    gammas: Sequence[int] | None = None,
    families: dict[str, Callable[[int], Protocol]] | None = None,
    **overrides,
) -> dict[tuple[str, int], CbrRestartResult]:
    """Run the CBR-restart scenario across families x gammas, serially."""
    cfg = pick_config(CbrRestartConfig, scale, **overrides)
    gammas = list(gammas) if gammas is not None else default_gammas(scale)
    families = families if families is not None else FAMILIES
    results: dict[tuple[str, int], CbrRestartResult] = {}
    for family, factory in families.items():
        for gamma in gammas:
            results[(family, gamma)] = run_cbr_restart(factory(gamma), cfg)
    return results


def table_from_sweep(
    results: dict[tuple[str, int], CbrRestartResult], metric: str
) -> Table:
    """Build the Figure 4 (time) or Figure 5 (cost) table from a sweep."""
    field, title, note = _metric_table(metric)
    table = Table(title=title, columns=["family", "gamma", "value"], notes=note)
    for (family, gamma), result in sorted(results.items()):
        value = (
            result.stabilization.time_rtts
            if metric == "time"
            else result.stabilization.cost
        )
        table.add(family, gamma, value)
    return table
