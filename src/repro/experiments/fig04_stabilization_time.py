"""Figure 4: stabilization time vs the slowness parameter gamma.

Paper: for TCP(1/gamma) and SQRT(1/gamma) the stabilization time stays low
across the whole gamma range (self-clocking limits the sending rate to the
previous RTT's bottleneck ACK rate); for the rate-based RAP(1/gamma) and
TFRC(gamma) it grows to hundreds of RTTs at large gamma; TFRC with the
conservative_ self-clocking option is repaired.

Figure 5 uses the same sweep with the stabilization *cost* metric, so
:func:`sweep` returns the raw results for both figures to share.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.experiments.protocols import Protocol, rap, sqrt, tcp, tfrc
from repro.experiments.runner import Table, pick_config
from repro.experiments.scenarios import CbrRestartConfig, CbrRestartResult, run_cbr_restart

__all__ = ["FAMILIES", "default_gammas", "sweep", "run"]

# Family name -> factory(gamma) -> Protocol.
FAMILIES: dict[str, Callable[[int], Protocol]] = {
    "TCP(1/g)": lambda g: tcp(g),
    "SQRT(1/g)": lambda g: sqrt(g),
    "RAP(1/g)": lambda g: rap(g),
    "TFRC(g)": lambda g: tfrc(g),
    "TFRC(g)+SC": lambda g: tfrc(g, conservative=True),
}


def default_gammas(scale: str) -> list[int]:
    if scale == "fast":
        return [2, 16, 64, 256]
    return [2, 4, 8, 16, 32, 64, 128, 256]


def sweep(
    scale: str = "fast",
    gammas: Sequence[int] | None = None,
    families: dict[str, Callable[[int], Protocol]] | None = None,
    **overrides,
) -> dict[tuple[str, int], CbrRestartResult]:
    """Run the CBR-restart scenario across families x gammas."""
    cfg = pick_config(CbrRestartConfig, scale, **overrides)
    gammas = list(gammas) if gammas is not None else default_gammas(scale)
    families = families if families is not None else FAMILIES
    results: dict[tuple[str, int], CbrRestartResult] = {}
    for family, factory in families.items():
        for gamma in gammas:
            results[(family, gamma)] = run_cbr_restart(factory(gamma), cfg)
    return results


def table_from_sweep(
    results: dict[tuple[str, int], CbrRestartResult], metric: str
) -> Table:
    """Build the Figure 4 (time) or Figure 5 (cost) table from a sweep."""
    if metric == "time":
        title = "Figure 4: stabilization time (RTTs) vs gamma"
        note = (
            "Paper: self-clocked TCP/SQRT stay low for all gamma; RAP and "
            "TFRC without self-clocking reach hundreds of RTTs at gamma=256; "
            "TFRC+SC behaves like TCP."
        )
    elif metric == "cost":
        title = "Figure 5: stabilization cost vs gamma (log scale in paper)"
        note = (
            "Paper: at large gamma the rate-based algorithms are up to two "
            "orders of magnitude worse than the most slowly-responsive "
            "TCP(1/gamma) or SQRT(1/gamma)."
        )
    else:
        raise ValueError(f"unknown metric {metric!r}")
    table = Table(title=title, columns=["family", "gamma", "value"], notes=note)
    for (family, gamma), result in sorted(results.items()):
        value = (
            result.stabilization.time_rtts
            if metric == "time"
            else result.stabilization.cost
        )
        table.add(family, gamma, value)
    return table


def run(scale: str = "fast", **kwargs) -> Table:
    return table_from_sweep(sweep(scale, **kwargs), metric="time")
