"""Figure 8: throughput of TCP and TCP(1/8) flows under 3:1 oscillation.

Paper: like TFRC, TCP(1/8) is reasonably prompt in reducing its rate under
extreme congestion but observably slower at increasing it when bandwidth
appears, so TCP out-competes it in the oscillating environment.
"""

from __future__ import annotations

from repro.experiments.fairness_vs_tcp import fairness_table
from repro.experiments.protocols import tcp
from repro.experiments.runner import Table

__all__ = ["run"]


def run(scale: str = "fast", **kwargs) -> Table:
    return fairness_table(
        "Figure 8",
        tcp(8),
        paper_claim=(
            "Paper: TCP receives more than TCP(1/8) under oscillating "
            "bandwidth; the slower algorithm is not mistreating TCP, it is "
            "losing throughput itself."
        ),
        scale=scale,
        **kwargs,
    )
