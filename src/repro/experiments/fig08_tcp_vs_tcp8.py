"""Figure 8: throughput of TCP and TCP(1/8) flows under 3:1 oscillation.

Paper: like TFRC, TCP(1/8) is reasonably prompt in reducing its rate under
extreme congestion but observably slower at increasing it when bandwidth
appears, so TCP out-competes it in the oscillating environment.
"""

from __future__ import annotations

from repro.experiments.fairness_vs_tcp import fairness_jobs, fairness_reduce
from repro.experiments.jobs import Job
from repro.experiments.protocols import tcp
from repro.experiments.runner import Table

__all__ = ["jobs", "reduce", "run"]

COMPETITOR = tcp(8)
PAPER_CLAIM = (
    "Paper: TCP receives more than TCP(1/8) under oscillating "
    "bandwidth; the slower algorithm is not mistreating TCP, it is "
    "losing throughput itself."
)


def jobs(scale: str = "fast", **kwargs) -> list[Job]:
    return fairness_jobs("fig08", COMPETITOR, scale, **kwargs)


def reduce(results) -> Table:
    return fairness_reduce(results, "Figure 8", COMPETITOR.name, PAPER_CLAIM)


def run(scale: str = "fast", *, executor=None, cache=None, **kwargs) -> Table:
    from repro.experiments.executor import execute

    return reduce(execute(jobs(scale, **kwargs), executor, cache))
