"""Learned job cost model feeding the executor's LPT dispatch.

Longest-processing-time-first scheduling needs one number per job —
predicted wall seconds — *before* the job has ever run.  This module
supplies it from three tiers, most-informed first:

1. **Learned estimates**: an exponentially-weighted moving average of
   observed wall times, keyed by ``scenario:scale`` (the two job fields
   that dominate cost; parameters within one sweep vary far less than
   scenarios vary between figures).  Estimates persist in a small JSON
   sidecar — ``~/.cache``-style, beside the result cache — so the second
   sweep of a cold machine already dispatches with measured costs.
2. **Static seeds**: per-scenario heuristics calibrated from the
   committed ``BENCH_figures.json`` timings, used until the first
   observation lands.  Absolute accuracy is irrelevant; only the
   *ordering* (and the µs-vs-seconds magnitude used by the inline
   fast path) matters for scheduling.
3. **A default**: one second, scaled, for unknown scenarios.

The model never reads a clock itself — wall times are handed in by the
executor — and a corrupt sidecar is ignored *loudly* (a warning on
stderr, then a cold start) rather than poisoning dispatch or crashing a
sweep.  Predictions only reorder execution; results are still reduced
in canonical job order, so a wildly wrong estimate can cost wall-clock
but can never change a table.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
from typing import Optional, Union

from repro.experiments.jobs import Job

__all__ = ["COST_MODEL_VERSION", "CostModel", "DEFAULT_SEED_S", "STATIC_SEED_S"]

#: Sidecar format version; unknown versions are treated as corrupt.
COST_MODEL_VERSION = 1

#: Cold-start wall-second seeds per scenario at the "fast" scale,
#: calibrated from the committed per-job figure benchmarks.  The two
#: closed-form analysis scenarios are microseconds by construction —
#: that magnitude (not the exact value) is what routes them onto the
#: executor's inline fast path instead of a process pool.
STATIC_SEED_S = {
    "analysis_acks": 2e-6,
    "cbr_restart": 3.8,
    "convergence": 1.0,
    "doubling": 1.0,
    "flash_crowd": 0.9,
    "loss_pattern": 0.3,
    "oscillation": 1.5,
    "queue_dynamics": 1.0,
    "responsiveness": 0.5,
    "timeout_models": 4e-6,
}

#: Seed for scenarios absent from :data:`STATIC_SEED_S`.
DEFAULT_SEED_S = 1.0

#: Multiplier applied to fast-scale seeds for other scales ("paper"
#: sweeps simulate ~an order of magnitude more virtual seconds).
_SCALE_FACTOR = {"fast": 1.0, "paper": 30.0}

#: EWMA weight of the newest observation.
_ALPHA = 0.3


class CostModel:
    """Predicted wall seconds per job, learned from executor history.

    ``path=None`` keeps the model in memory (hermetic for tests and for
    cache-less runs); a path loads the sidecar eagerly and persists via
    :meth:`save` — an atomic, sorted-keys JSON write, matching the
    result cache's torn-write discipline.
    """

    def __init__(self, path: Union[str, os.PathLike, None] = None):
        self.path = pathlib.Path(path) if path is not None else None
        #: key -> [ewma_seconds, observation_count]
        self._estimates: dict[str, list] = {}
        self._dirty = False
        if self.path is not None:
            self._load()

    # -- keys and prediction ------------------------------------------------

    @staticmethod
    def key(jb: Job) -> str:
        """Model key: scenario + scale, the cost-dominating job fields."""
        return f"{jb.scenario}:{jb.scale}"

    def predict(self, jb: Job) -> float:
        """Predicted wall seconds for ``jb`` (learned, else static seed)."""
        estimate = self._estimates.get(self.key(jb))
        if estimate is not None:
            return float(estimate[0])
        seed = STATIC_SEED_S.get(jb.scenario, DEFAULT_SEED_S)
        return seed * _SCALE_FACTOR.get(jb.scale, 1.0)

    def observe(self, jb: Job, wall_s: float) -> None:
        """Fold one measured wall time into the EWMA for ``jb``'s key."""
        if not wall_s >= 0.0:  # rejects negatives and NaN in one test
            return
        key = self.key(jb)
        estimate = self._estimates.get(key)
        if estimate is None:
            self._estimates[key] = [float(wall_s), 1]
        else:
            estimate[0] += _ALPHA * (float(wall_s) - estimate[0])
            estimate[1] += 1
        self._dirty = True

    def observations(self, jb: Job) -> int:
        """How many observations back the estimate for ``jb``'s key."""
        estimate = self._estimates.get(self.key(jb))
        return int(estimate[1]) if estimate is not None else 0

    # -- persistence --------------------------------------------------------

    def _load(self) -> None:
        assert self.path is not None
        try:
            text = self.path.read_text()
        except OSError:
            return  # no sidecar yet: cold start, silently
        try:
            doc = json.loads(text)
            if doc["version"] != COST_MODEL_VERSION:
                raise ValueError(f"unknown sidecar version {doc['version']!r}")
            estimates = doc["estimates"]
            loaded = {}
            for key, pair in estimates.items():
                mean_s, count = float(pair[0]), int(pair[1])
                if not mean_s >= 0.0 or count < 1:
                    raise ValueError(f"invalid estimate for {key!r}: {pair!r}")
                loaded[key] = [mean_s, count]
        except (ValueError, KeyError, TypeError, IndexError) as exc:
            # Loud, not fatal: dispatch falls back to static seeds and the
            # next save() rewrites the sidecar wholesale.
            print(
                f"repro: ignoring corrupt cost-model sidecar {self.path}: {exc}",
                file=sys.stderr,
            )
            self._dirty = True  # rewrite the bad file on the next save
            return
        self._estimates = loaded

    def save(self) -> bool:
        """Persist the estimates if anything changed; True when written."""
        if self.path is None or not self._dirty:
            return False
        doc = {
            "version": COST_MODEL_VERSION,
            "estimates": {
                key: [round(pair[0], 9), pair[1]]
                for key, pair in sorted(self._estimates.items())
            },
        }
        text = json.dumps(doc, sort_keys=True, indent=2) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False
        return True

    def __len__(self) -> int:
        return len(self._estimates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path is not None else "memory"
        return f"<CostModel {where} [{len(self)} estimates]>"
