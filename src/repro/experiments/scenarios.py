"""Reusable simulation scenarios behind the paper's figures.

Five scenario families cover all sixteen simulated figures:

* :func:`run_cbr_restart`      — Figures 3, 4, 5 (stabilization after a CBR
  source restarts into a quiet network);
* :func:`run_flash_crowd`     — Figure 6;
* :func:`run_oscillation`     — Figures 7, 8, 9 (mixed flows) and 14, 15,
  16 (identical flows) under square-wave available bandwidth;
* :func:`run_convergence`     — Figures 10, 12 (δ-fair convergence);
* :func:`run_doubling`        — Figure 13 (f(k) after a bandwidth doubling);
* :func:`run_loss_pattern`    — Figures 17, 18, 19 (crafted loss patterns).

Every config dataclass carries the paper's parameters as defaults and a
``fast()`` alternative tuned for CI: smaller bandwidth and shorter runs
with all dimensionless ratios (CBR fraction, queue in BDPs, durations in
RTTs per phase) preserved, so the qualitative shape of every result
survives the scaling.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.cc.tcp import new_tcp_flow
from repro.experiments.protocols import Protocol
from repro.metrics.fairness import delta_fair_convergence_time
from repro.metrics.smoothness import SmoothnessResult, rate_bins, smoothness
from repro.metrics.stabilization import StabilizationResult, measure_stabilization
from repro.metrics.utilization import flows_f_of_k
from repro.net.droppers import Dropper
from repro.net.dumbbell import Dumbbell
from repro.net.paths import single_path
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry import active_recorder
from repro.telemetry.measures import FlowMetrics, LinkMetrics
from repro.telemetry.series import TimeSeries
from repro.traffic.bulk import Flow, add_flows
from repro.traffic.cbr import CbrSink, CbrSource, on_off_schedule, square_wave
from repro.traffic.flash_crowd import FlashCrowd
from repro.units import BitsPerSecond, Bytes, Seconds

__all__ = [
    "CbrRestartConfig",
    "CbrRestartResult",
    "ConvergenceConfig",
    "DoublingConfig",
    "DoublingResult",
    "FlashCrowdConfig",
    "FlashCrowdResult",
    "LossPatternConfig",
    "LossPatternResult",
    "OscillationConfig",
    "OscillationResult",
    "measure_cbr_restart",
    "measure_oscillation",
    "run_cbr_restart",
    "run_convergence",
    "run_doubling",
    "run_flash_crowd",
    "run_loss_pattern",
    "run_oscillation",
]


def _build_net(
    bandwidth_bps: BitsPerSecond,
    rtt_s: Seconds,
    seed: int,
    reverse_flows: int,
    packet_size: Bytes = 1000,
) -> tuple[Simulator, Dumbbell]:
    """Dumbbell plus the paper's bidirectional background TCP traffic."""
    sim = Simulator()
    net = Dumbbell(
        sim,
        bandwidth_bps=bandwidth_bps,
        rtt_s=rtt_s,
        packet_size=packet_size,
        rng=RngRegistry(seed),
    )
    if reverse_flows > 0:
        add_flows(
            sim,
            net,
            lambda s: new_tcp_flow(s, packet_size=packet_size),
            count=reverse_flows,
            start_at=0.0,
            start_jitter_s=rtt_s * 4,
            forward=False,
            rng=random.Random(seed + 1),
        )
    return sim, net


def _attach_cbr(
    sim: Simulator, net: Dumbbell, rate_bps: BitsPerSecond
) -> tuple[CbrSource, int]:
    source = CbrSource(sim, rate_bps=rate_bps)
    sink = CbrSink(sim)
    from repro.cc.base import establish

    flow_id = establish(net, source, sink)
    return source, flow_id


# ---------------------------------------------------------------------------
# CBR restart (Figures 3-5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CbrRestartConfig:
    """Section 4.1.1: ON/OFF CBR at half the bottleneck rate.

    Timeline (paper): CBR on at 0 s, off at 150 s, back on at 180 s; the
    steady-state loss rate is the drop rate over the first ON period.
    """

    bandwidth_bps: float = 10e6
    rtt_s: float = 0.05
    n_flows: int = 20
    cbr_fraction: float = 0.5
    warmup_s: float = 10.0
    cbr_stop: float = 150.0
    cbr_restart: float = 180.0
    end: float = 240.0
    reverse_flows: int = 1
    seed: int = 1

    @classmethod
    def fast(cls, **overrides) -> "CbrRestartConfig":
        """Half the flows and bandwidth (same per-flow share), shorter
        phases.  The idle period stays ~28 s: it must be long enough for
        TFRC's history discounting to let flows grow into the freed
        bandwidth, which is what creates the post-restart shedding problem
        the experiment measures."""
        base = cls(
            bandwidth_bps=5e6,
            n_flows=6,
            warmup_s=10.0,
            cbr_stop=45.0,
            cbr_restart=73.0,
            end=125.0,
        )
        return replace(base, **overrides)


@dataclass(frozen=True)
class CbrRestartResult:
    protocol: str
    steady_loss_rate: float
    stabilization: StabilizationResult
    loss_series: TimeSeries  # loss rate averaged over 10-RTT windows
    spike_loss_rate: float  # first 10 RTTs after the restart


def measure_cbr_restart(
    monitor: LinkMetrics, cfg: CbrRestartConfig, protocol_name: str
) -> CbrRestartResult:
    """Derive the CBR-restart result from the bottleneck's channels.

    Runs over any :class:`LinkMetrics` — the live monitor right after the
    simulation, or one rebuilt from a trace by
    :class:`~repro.telemetry.trace.TraceReader` — producing bit-identical
    results either way.
    """
    steady = monitor.loss_rate(cfg.warmup_s, cfg.cbr_stop)
    steady = 0.0 if math.isnan(steady) else steady
    stabilization = measure_stabilization(
        monitor,
        congestion_start=cfg.cbr_restart,
        steady_loss_rate=steady,
        rtt_s=cfg.rtt_s,
        end=cfg.end,
    )
    window = 10 * cfg.rtt_s
    series = monitor.loss_rate_series(
        window_s=window, start=0.0, end=cfg.end, stride_s=window / 2
    )
    spike = monitor.loss_rate(cfg.cbr_restart, cfg.cbr_restart + window)
    return CbrRestartResult(
        protocol=protocol_name,
        steady_loss_rate=steady,
        stabilization=stabilization,
        loss_series=series,
        spike_loss_rate=0.0 if math.isnan(spike) else spike,
    )


def run_cbr_restart(protocol: Protocol, cfg: CbrRestartConfig) -> CbrRestartResult:
    sim, net = _build_net(cfg.bandwidth_bps, cfg.rtt_s, cfg.seed, cfg.reverse_flows)
    cbr, _ = _attach_cbr(sim, net, cfg.cbr_fraction * cfg.bandwidth_bps)
    on_off_schedule(
        sim, cbr, [(0.0, True), (cfg.cbr_stop, False), (cfg.cbr_restart, True)]
    )
    add_flows(
        sim,
        net,
        protocol.make,
        count=cfg.n_flows,
        start_at=0.0,
        start_jitter_s=2.0,
        rng=random.Random(cfg.seed),
    )
    sim.run(until=cfg.end)
    return measure_cbr_restart(net.monitor, cfg, protocol.name)


# ---------------------------------------------------------------------------
# Flash crowd (Figure 6)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlashCrowdConfig:
    """Section 4.1.2: 10-packet TCP transfers at 200 flows/s for 5 s."""

    bandwidth_bps: float = 10e6
    rtt_s: float = 0.05
    n_background: int = 8
    crowd_rate_per_s: float = 200.0
    crowd_duration_s: float = 5.0
    crowd_start: float = 25.0
    transfer_packets: int = 10
    end: float = 60.0
    bin_s: float = 1.0
    reverse_flows: int = 1
    seed: int = 1

    @classmethod
    def fast(cls, **overrides) -> "FlashCrowdConfig":
        base = cls(
            bandwidth_bps=5e6,
            n_background=5,
            crowd_rate_per_s=100.0,
            crowd_duration_s=3.0,
            crowd_start=10.0,
            end=30.0,
        )
        return replace(base, **overrides)


@dataclass(frozen=True)
class FlashCrowdResult:
    protocol: str
    background_series: TimeSeries  # aggregate background throughput, bps
    crowd_series: TimeSeries  # aggregate crowd throughput, bps
    crowd_completed: int
    crowd_spawned: int
    crowd_share_during: float  # crowd fraction of the link while active


def run_flash_crowd(protocol: Protocol, cfg: FlashCrowdConfig) -> FlashCrowdResult:
    sim, net = _build_net(cfg.bandwidth_bps, cfg.rtt_s, cfg.seed, cfg.reverse_flows)
    background = add_flows(
        sim,
        net,
        protocol.make,
        count=cfg.n_background,
        start_at=0.0,
        start_jitter_s=2.0,
        rng=random.Random(cfg.seed),
    )
    crowd = FlashCrowd(
        sim,
        net,
        rate_per_s=cfg.crowd_rate_per_s,
        duration_s=cfg.crowd_duration_s,
        transfer_packets=cfg.transfer_packets,
        start_time=cfg.crowd_start,
        rng=random.Random(cfg.seed + 7),
    )
    sim.run(until=cfg.end)

    def aggregate_series(flow_ids: Sequence[int]) -> TimeSeries:
        series = TimeSeries("aggregate_bps")
        t = cfg.bin_s
        while t <= cfg.end:
            total = sum(
                net.accountant.throughput_bps(fid, t - cfg.bin_s, t)
                for fid in flow_ids
            )
            series.append(t, total)
            t += cfg.bin_s
        return series

    bg_series = aggregate_series([f.flow_id for f in background])
    crowd_series = aggregate_series(crowd.flow_ids)
    active_end = cfg.crowd_start + cfg.crowd_duration_s
    crowd_share = crowd.aggregate_throughput_bps(cfg.crowd_start, active_end) / (
        cfg.bandwidth_bps
    )
    return FlashCrowdResult(
        protocol=protocol.name,
        background_series=bg_series,
        crowd_series=crowd_series,
        crowd_completed=crowd.completed,
        crowd_spawned=crowd.spawned,
        crowd_share_during=crowd_share,
    )


# ---------------------------------------------------------------------------
# Oscillating available bandwidth (Figures 7-9 and 14-16)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OscillationConfig:
    """Square-wave CBR competing with long-lived flows (Section 4.2.1/4.2.4).

    ``cbr_fraction`` is the CBR rate as a fraction of the bottleneck when
    ON; 2/3 gives the paper's 3:1 available-bandwidth oscillation, 0.9 the
    10:1 one.
    """

    bandwidth_bps: float = 15e6
    rtt_s: float = 0.05
    cbr_fraction: float = 2.0 / 3.0
    n_flows_a: int = 5
    n_flows_b: int = 5
    min_duration_s: float = 60.0
    periods_to_run: int = 20
    max_duration_s: float = 300.0
    warmup_s: float = 10.0
    reverse_flows: int = 1
    seed: int = 1

    @classmethod
    def fast(cls, **overrides) -> "OscillationConfig":
        """2+2 flows on 8 Mbps: preserves the paper's per-flow window size
        (~8-9 packets/RTT), which decides who wins under oscillation —
        at much smaller windows the sharper-decrease algorithm is instead
        penalized by timeouts."""
        base = cls(
            bandwidth_bps=8e6,
            n_flows_a=2,
            n_flows_b=2,
            min_duration_s=40.0,
            periods_to_run=10,
            max_duration_s=120.0,
            warmup_s=8.0,
        )
        return replace(base, **overrides)

    def duration(self, period_s: float) -> float:
        return min(
            max(self.min_duration_s, self.periods_to_run * period_s),
            self.max_duration_s,
        )

    @property
    def mean_available_bps(self) -> float:
        """Average bandwidth left for the flows (CBR duty cycle 50%)."""
        return self.bandwidth_bps * (1.0 - self.cbr_fraction / 2.0)


@dataclass(frozen=True)
class OscillationResult:
    protocol_a: str
    protocol_b: Optional[str]
    period_s: float
    shares_a: list[float]  # per-flow throughput normalized by fair share
    shares_b: list[float]
    mean_a: float
    mean_b: float
    utilization: float  # aggregate flow throughput / mean available
    drop_rate: float


def measure_oscillation(
    monitor: LinkMetrics,
    accountant: FlowMetrics,
    flow_ids_a: Sequence[int],
    flow_ids_b: Sequence[int],
    name_a: str,
    name_b: Optional[str],
    period_s: float,
    end: float,
    cfg: OscillationConfig,
) -> OscillationResult:
    """Derive the oscillation result from link + flow channels.

    Shared by the live path and trace replay (the flow-id groupings are
    stored as trace metadata), so both produce bit-identical results.
    """
    n_total = len(flow_ids_a) + len(flow_ids_b)
    fair_share = cfg.mean_available_bps / n_total

    def shares(flow_ids: Sequence[int]) -> list[float]:
        return [
            accountant.throughput_bps(fid, cfg.warmup_s, end) / fair_share
            for fid in flow_ids
        ]

    shares_a = shares(flow_ids_a)
    shares_b = shares(flow_ids_b)
    aggregate = sum(
        accountant.throughput_bps(fid, cfg.warmup_s, end)
        for fid in list(flow_ids_a) + list(flow_ids_b)
    )
    drop = monitor.loss_rate(cfg.warmup_s, end)
    return OscillationResult(
        protocol_a=name_a,
        protocol_b=name_b,
        period_s=period_s,
        shares_a=shares_a,
        shares_b=shares_b,
        mean_a=sum(shares_a) / len(shares_a),
        mean_b=sum(shares_b) / len(shares_b) if shares_b else math.nan,
        utilization=aggregate / cfg.mean_available_bps,
        drop_rate=0.0 if math.isnan(drop) else drop,
    )


def run_oscillation(
    protocol_a: Protocol,
    protocol_b: Optional[Protocol],
    period_s: float,
    cfg: OscillationConfig,
) -> OscillationResult:
    """Run one square-wave period point.

    With ``protocol_b`` None the scenario has ``n_flows_a`` identical flows
    (the Section 4.2.4 utilization experiments); otherwise it mixes
    ``n_flows_a`` of A against ``n_flows_b`` of B (Section 4.2.1 fairness).
    """
    if period_s <= 0:
        raise ValueError("period must be positive")
    sim, net = _build_net(cfg.bandwidth_bps, cfg.rtt_s, cfg.seed, cfg.reverse_flows)
    cbr, _ = _attach_cbr(sim, net, cfg.cbr_fraction * cfg.bandwidth_bps)
    end = cfg.duration(period_s)
    square_wave(sim, cbr, on_s=period_s / 2.0, off_s=period_s / 2.0, until=end)

    flows_a = add_flows(
        sim, net, protocol_a.make, count=cfg.n_flows_a,
        start_at=0.0, start_jitter_s=2.0, rng=random.Random(cfg.seed),
    )
    flows_b: list[Flow] = []
    if protocol_b is not None:
        flows_b = add_flows(
            sim, net, protocol_b.make, count=cfg.n_flows_b,
            start_at=0.0, start_jitter_s=2.0, rng=random.Random(cfg.seed + 3),
        )
    ids_a = [f.flow_id for f in flows_a]
    ids_b = [f.flow_id for f in flows_b]
    recorder = active_recorder()
    if recorder is not None:
        # Replay needs to know which flows belong to which protocol group.
        recorder.annotate("oscillation.flows_a", ids_a)
        recorder.annotate("oscillation.flows_b", ids_b)
    sim.run(until=end)
    return measure_oscillation(
        net.monitor,
        net.accountant,
        ids_a,
        ids_b,
        protocol_a.name,
        protocol_b.name if protocol_b else None,
        period_s,
        end,
        cfg,
    )


# ---------------------------------------------------------------------------
# Two-flow convergence (Figures 10 and 12)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConvergenceConfig:
    """Section 4.2.2: second flow starts against an entrenched first flow.

    The paper's initial allocation is (B - b0, b0) with b0 one packet per
    RTT: the entrant probes from nothing under the *congestion-avoidance*
    rules.  ``disable_slow_start`` therefore starts window-based senders in
    congestion avoidance (ssthresh = 1), so the measurement captures the
    AIMD transient the paper analyses rather than a slow-start overshoot.
    """

    bandwidth_bps: float = 10e6
    rtt_s: float = 0.05
    first_start: float = 0.0
    second_start: float = 30.0
    end: float = 600.0
    delta: float = 0.1
    window_s: float = 0.25
    sustain_windows: int = 2
    disable_slow_start: bool = True
    seeds: tuple[int, ...] = (1, 2, 3)
    reverse_flows: int = 1

    @classmethod
    def fast(cls, **overrides) -> "ConvergenceConfig":
        base = cls(
            bandwidth_bps=2e6,
            second_start=15.0,
            end=300.0,
            seeds=(1, 2),
        )
        return replace(base, **overrides)


def run_convergence(protocol: Protocol, cfg: ConvergenceConfig) -> float:
    """Mean δ-fair convergence time (seconds) over the config's seeds.

    Runs that never converge contribute the full observation window, so a
    protocol that cannot converge saturates rather than biasing the mean
    low.
    """
    times = []
    for seed in cfg.seeds:
        sim, net = _build_net(cfg.bandwidth_bps, cfg.rtt_s, seed, cfg.reverse_flows)
        from repro.cc.base import establish

        sender_a, receiver_a = protocol.make(sim)
        flow_a = establish(net, sender_a, receiver_a)
        sender_b, receiver_b = protocol.make(sim)
        flow_b = establish(net, sender_b, receiver_b)
        if cfg.disable_slow_start:
            for sender in (sender_a, sender_b):
                if hasattr(sender, "ssthresh"):
                    sender.ssthresh = 1.0
        sender_a.start_at(cfg.first_start)
        sender_b.start_at(cfg.second_start)
        sim.run(until=cfg.end)
        t = delta_fair_convergence_time(
            net.accountant,
            flow_a,
            flow_b,
            start=cfg.second_start,
            end=cfg.end,
            delta=cfg.delta,
            window_s=cfg.window_s,
            sustain_windows=cfg.sustain_windows,
        )
        times.append(t if t is not None else cfg.end - cfg.second_start)
    return sum(times) / len(times)


# ---------------------------------------------------------------------------
# Bandwidth doubling (Figure 13)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DoublingConfig:
    """Section 4.2.3: five of ten flows stop; measure f(20) and f(200)."""

    bandwidth_bps: float = 10e6
    rtt_s: float = 0.05
    n_flows: int = 10
    n_stopped: int = 5
    stop_at: float = 500.0
    ks: tuple[int, ...] = (20, 200)
    reverse_flows: int = 0  # paper measures pure utilization here
    seed: int = 1

    @classmethod
    def fast(cls, **overrides) -> "DoublingConfig":
        """Keeps the paper's 10 Mbps (f(k) depends on the absolute window
        deficit in packets); only the warmup before the doubling shrinks."""
        base = cls(stop_at=80.0)
        return replace(base, **overrides)


@dataclass(frozen=True)
class DoublingResult:
    protocol: str
    f_of_k: dict[int, float]


def run_doubling(protocol: Protocol, cfg: DoublingConfig) -> DoublingResult:
    sim, net = _build_net(cfg.bandwidth_bps, cfg.rtt_s, cfg.seed, cfg.reverse_flows)
    flows = add_flows(
        sim, net, protocol.make, count=cfg.n_flows,
        start_at=0.0, start_jitter_s=2.0, rng=random.Random(cfg.seed),
    )
    for flow in flows[: cfg.n_stopped]:
        flow.sender.stop_at(cfg.stop_at)
    end = cfg.stop_at + max(cfg.ks) * cfg.rtt_s + 1.0
    sim.run(until=end)
    survivors = [f.flow_id for f in flows[cfg.n_stopped :]]
    f_values = {
        k: flows_f_of_k(
            net.accountant,
            survivors,
            available_bps=cfg.bandwidth_bps,
            event_time=cfg.stop_at,
            k=k,
            rtt_s=cfg.rtt_s,
        )
        for k in cfg.ks
    }
    return DoublingResult(protocol=protocol.name, f_of_k=f_values)


# ---------------------------------------------------------------------------
# Crafted loss patterns (Figures 17-19)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LossPatternConfig:
    """Section 4.3: single flow under an imposed loss pattern."""

    bandwidth_bps: float = 10e6
    rtt_s: float = 0.05
    duration_s: float = 60.0
    warmup_s: float = 10.0
    fine_bin_s: float = 0.2
    coarse_bin_s: float = 1.0

    @classmethod
    def fast(cls, **overrides) -> "LossPatternConfig":
        base = cls(duration_s=60.0, warmup_s=10.0)
        return replace(base, **overrides)


@dataclass(frozen=True)
class LossPatternResult:
    protocol: str
    fine_rates_bps: list[float]  # 0.2 s bins (the figures' solid line)
    coarse_rates_bps: list[float]  # 1 s bins (the dashed line)
    throughput_bps: float
    smoothness: SmoothnessResult
    drops: int
    rate_band: float  # p5/p95 of the fine rates (1 = perfectly steady)

    @staticmethod
    def percentile_band(rates: list[float]) -> float:
        """5th-to-95th percentile ratio of a rate series: a smoothness
        measure robust to a single timeout dip, unlike the worst-case
        consecutive ratio."""
        if not rates:
            return 0.0
        ordered = sorted(rates)
        p5 = ordered[int(0.05 * (len(ordered) - 1))]
        p95 = ordered[int(0.95 * (len(ordered) - 1))]
        return p5 / p95 if p95 > 0 else 0.0


def run_loss_pattern(
    protocol: Protocol,
    dropper_factory: Callable[[Simulator], Dropper],
    cfg: LossPatternConfig,
) -> LossPatternResult:
    sim = Simulator()
    from repro.net.monitor import FlowAccountant

    accountant = FlowAccountant(sim)
    sender, receiver = protocol.make(sim)
    receiver.on_data.append(accountant.on_deliver)
    dropper = dropper_factory(sim)
    single_path(
        sim,
        sender,
        receiver,
        rtt_s=cfg.rtt_s,
        bandwidth_bps=cfg.bandwidth_bps,
        dropper=dropper,
    )
    sender.start()
    sim.run(until=cfg.duration_s)
    fine = rate_bins(accountant, 0, cfg.fine_bin_s, cfg.warmup_s, cfg.duration_s)
    coarse = rate_bins(accountant, 0, cfg.coarse_bin_s, cfg.warmup_s, cfg.duration_s)
    # Smoothness judged on RTT-scale bins per the paper's metric; the fine
    # bins are several RTTs, a reasonable stand-in for plotting.
    return LossPatternResult(
        protocol=protocol.name,
        fine_rates_bps=fine,
        coarse_rates_bps=coarse,
        throughput_bps=accountant.throughput_bps(0, cfg.warmup_s, cfg.duration_s),
        smoothness=smoothness(coarse),
        drops=dropper.drops,
        rate_band=LossPatternResult.percentile_band(fine),
    )
