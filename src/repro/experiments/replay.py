"""Recompute job payloads from saved telemetry traces — no simulation.

A job executed with ``trace=True`` leaves a JSONL trace artifact beside
its cached result (see :mod:`repro.experiments.cache`).  This module
closes the loop: given the job and a
:class:`~repro.telemetry.trace.TraceReader` over that artifact, a
*replayer* rebuilds the job's JSON payload from the recorded channels
alone.  Because the replayer calls the **same** measurement functions as
the live path (``measure_cbr_restart``, ``measure_oscillation``) over
the **same** probe data, the replayed payload is bit-identical to the
cached one — which is exactly what the trace-replay CI smoke asserts.

Replayers are registered per scenario name; scenarios whose payloads are
not pure functions of the recorded channels (e.g. the closed-form
analysis scenarios, which never simulate) simply have no replayer.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.experiments.jobs import Job, cbr_restart_payload, oscillation_payload
from repro.telemetry.trace import TraceReader

__all__ = ["REPLAYERS", "replay_job", "replayer"]

REPLAYERS: dict[str, Callable[[Job, TraceReader], Any]] = {}


def replayer(scenario: str) -> Callable:
    """Register a trace replayer for ``scenario`` (decorator)."""

    def register(fn: Callable[[Job, TraceReader], Any]) -> Callable:
        REPLAYERS[scenario] = fn
        return fn

    return register


def replay_job(jb: Job, reader: TraceReader) -> Any:
    """Rebuild ``jb``'s payload from its trace; raises for unsupported scenarios."""
    try:
        fn = REPLAYERS[jb.scenario]
    except KeyError:
        raise KeyError(
            f"scenario {jb.scenario!r} has no trace replayer; "
            f"replayable scenarios: {', '.join(sorted(REPLAYERS))}"
        ) from None
    return fn(jb, reader)


@replayer("cbr_restart")
def _replay_cbr_restart(jb: Job, reader: TraceReader) -> dict:
    """Figures 3-5 from the bottleneck's recorded arrival/drop channels."""
    from repro.experiments.scenarios import measure_cbr_restart

    monitor = reader.link("bottleneck")
    result = measure_cbr_restart(monitor, jb.config, jb.protocol.build().name)
    return cbr_restart_payload(result)


@replayer("oscillation")
def _replay_oscillation(jb: Job, reader: TraceReader) -> dict:
    """Figures 7-9/14-16 from per-flow byte channels plus group metadata."""
    from repro.experiments.scenarios import measure_oscillation

    ids_a = [int(i) for i in reader.meta["oscillation.flows_a"]]
    ids_b = [int(i) for i in reader.meta["oscillation.flows_b"]]
    period_s = jb.param("period_s")
    spec_b = jb.param("protocol_b")
    result = measure_oscillation(
        reader.link("bottleneck"),
        reader.flows(),
        ids_a,
        ids_b,
        jb.protocol.build().name,
        spec_b.build().name if spec_b is not None else None,
        period_s,
        jb.config.duration(period_s),
        jb.config,
    )
    return oscillation_payload(result)
