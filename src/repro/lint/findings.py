"""Findings: what a lint rule reports, and how it serializes.

A :class:`Finding` pins one violation to a file/line/column and carries
the rule code (``D001``, ``P001``, ...) plus a human message.  Findings
sort by location so output is stable regardless of rule execution order
— the suite's own discipline applies to itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Finding", "JSON_SCHEMA_VERSION"]

#: Bump when the ``--json`` report layout changes shape.
#: v2: added ``baselined`` and ``stale_baseline`` to the report payload.
JSON_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """The human-readable one-liner: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, Any]:
        """The ``--json`` record for this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
