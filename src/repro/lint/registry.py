"""The rule registry: every simlint rule declares itself here.

A rule is a class with a ``code`` (``D001``), a one-line ``summary``, a
path ``scope`` restricting which packages it examines, and either a
per-file ``check_file`` hook or a whole-tree ``check_project`` hook
(``project = True``) for cross-module invariants like the experiment
registry.  Rules register via the :func:`rule` decorator; the CLI's
``--select`` / ``--ignore`` work on the registered codes.
"""

from __future__ import annotations

import pathlib
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.engine import LintContext, SourceFile

__all__ = ["Rule", "RULES", "all_codes", "in_package", "resolve_codes", "rule"]


def in_package(path: str, *packages: str) -> bool:
    """True when ``path`` sits inside any of the ``pkg/subpkg`` packages.

    Matching is on consecutive path components, so ``repro/net`` matches
    ``src/repro/net/red.py`` (and a test's virtual path
    ``repro/net/example.py``) but not ``tests/repro_net_helpers.py``.
    """
    parts = pathlib.PurePosixPath(pathlib.PurePath(path).as_posix()).parts
    for package in packages:
        want = tuple(package.split("/"))
        n = len(want)
        if any(parts[i : i + n] == want for i in range(len(parts) - n + 1)):
            return True
    return False


class Rule:
    """Base class for simlint rules.  Subclass and register with @rule."""

    #: Unique code, e.g. ``D001``.
    code: str = ""
    #: One-line description shown by ``--list-rules`` and the docs.
    summary: str = ""
    #: ``pkg/subpkg`` prefixes the rule examines; empty means every file.
    scope: Sequence[str] = ()
    #: Files inside ``scope`` that are exempt (matched with in_package-style
    #: component matching against the full relative path).
    allowlist: Sequence[str] = ()
    #: When True, an inline suppression must carry a ``(reason)``.
    requires_reason: bool = False
    #: Project rules see every file at once instead of one at a time.
    project: bool = False
    #: Optional ``--explain`` metadata: why the rule exists, plus a
    #: minimal failing example and its corrected counterpart.  Rules
    #: without explicit metadata fall back to their class docstring.
    rationale: str = ""
    bad_example: str = ""
    good_example: str = ""

    def applies(self, path: str) -> bool:
        if self.allowlist and in_package(path, *self.allowlist):
            return False
        if not self.scope:
            return True
        return in_package(path, *self.scope)

    def check_file(self, src: "SourceFile") -> Iterable[Finding]:
        """Per-file hook; yield findings.  Default: nothing."""
        return ()

    def check_project(
        self, files: "Sequence[SourceFile]", context: "LintContext"
    ) -> Iterable[Finding]:
        """Whole-tree hook for ``project = True`` rules.

        ``context`` is the run's shared :class:`~repro.lint.engine.
        LintContext`: project rules that need the whole-program analyses
        (symbol tables, unit events, purity reachability) pull them from
        there, so six rules share one expensive build instead of each
        re-deriving it.
        """
        return ()

    def finding(self, src: "SourceFile", node: object, message: str) -> Finding:
        """Build a finding at an AST node's location in ``src``."""
        line = int(getattr(node, "lineno", 1) or 1)
        col = int(getattr(node, "col_offset", 0) or 0) + 1
        return Finding(self.code, src.path, line, col, message)


#: Registered rules by code, in registration order.
RULES: dict[str, Rule] = {}


def rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    instance = cls()
    if not instance.code:
        raise ValueError(f"rule {cls.__name__} declares no code")
    if instance.code in RULES:
        raise ValueError(f"duplicate rule code {instance.code}")
    RULES[instance.code] = instance
    return cls


def all_codes() -> list[str]:
    return sorted(RULES)


def resolve_codes(spec: "str | Iterable[str] | None") -> "set[str] | None":
    """Parse a ``--select``/``--ignore`` value into a set of known codes.

    Accepts comma-separated strings or iterables; unknown codes raise
    ``ValueError`` naming the valid ones, so typos fail loudly.
    """
    if spec is None:
        return None

    def _split(value: "str | Iterable[str]") -> Iterator[str]:
        items = value.split(",") if isinstance(value, str) else value
        for item in items:
            for part in item.split(","):
                part = part.strip()
                if part:
                    yield part

    codes = {code.upper() for code in _split(spec)}
    unknown = sorted(codes - set(RULES))
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)}; "
            f"available: {', '.join(all_codes())}"
        )
    return codes
