"""``python -m repro.lint`` — the simlint command line.

Usage::

    python -m repro.lint src tests            # lint, human output
    python -m repro.lint src --json           # machine-readable report
    python -m repro.lint src --select D001,D002
    python -m repro.lint src --ignore E001
    python -m repro.lint --list-rules

Exit status: 0 clean, 1 findings, 2 usage error.  Inline suppressions
use ``# simlint: disable=CODE`` (``CODE(reason)`` where a justification
is required — see ``docs/linting.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import repro.lint.rules  # noqa: F401  (register every rule)
from repro.lint.engine import lint_paths
from repro.lint.registry import RULES, resolve_codes

__all__ = ["main"]


def _list_rules() -> str:
    lines = ["simlint rules:"]
    for code in sorted(RULES):
        r = RULES[code]
        reason = " [suppression requires a reason]" if r.requires_reason else ""
        lines.append(f"  {code}  {r.summary}{reason}")
        if r.scope:
            lines.append(f"        scope: {', '.join(r.scope)}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Simulator-aware static analysis: determinism, "
        "picklability, hash stability and registry consistency.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        select = resolve_codes(args.select)
        ignore = resolve_codes(args.ignore)
    except ValueError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    try:
        report = lint_paths(args.paths, select=select, ignore=ignore)
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1

    for finding in report.findings:
        print(finding.format())
    summary = (
        f"{len(report.findings)} finding(s)"
        if report.findings
        else "clean"
    )
    suppressed = (
        f", {report.suppressed} suppressed" if report.suppressed else ""
    )
    print(
        f"simlint: {summary} in {report.files_checked} file(s)"
        f"{suppressed}"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
