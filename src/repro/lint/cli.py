"""``python -m repro.lint`` — the simlint command line.

Usage::

    python -m repro.lint src tests            # lint, human output
    python -m repro.lint src --format json    # machine-readable report
    python -m repro.lint src --format sarif   # SARIF 2.1.0 (CI upload)
    python -m repro.lint src --select U001,U002
    python -m repro.lint src --ignore E001
    python -m repro.lint src --baseline lint-baseline.json
    python -m repro.lint src --write-baseline lint-baseline.json
    python -m repro.lint --list-rules
    python -m repro.lint --explain I001       # rationale + examples
    python -m repro.lint src --stats          # per-rule wall time

Exit status: 0 clean, 1 findings, 2 usage error.  Inline suppressions
use ``# simlint: disable=CODE`` (``CODE(reason)`` where a justification
is required — see ``docs/linting.md``).  ``--baseline`` suppresses the
findings recorded in the given file (by content fingerprint) so new
rules can be adopted incrementally; ``--write-baseline`` records the
current findings and exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import repro.lint.rules  # noqa: F401  (register every rule)
from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths
from repro.lint.registry import RULES, resolve_codes
from repro.lint.sarif import to_sarif

__all__ = ["main"]


def _explain_rule(code: str) -> "str | None":
    """The ``--explain`` text for one rule code; None when unknown."""
    r = RULES.get(code.upper())
    if r is None:
        return None
    lines = [f"{r.code}: {r.summary}", ""]
    rationale = r.rationale or (type(r).__doc__ or "").strip()
    if rationale:
        lines.append(rationale)
        lines.append("")
    if r.scope:
        lines.append(f"Scope: {', '.join(r.scope)}")
    if r.requires_reason:
        lines.append(
            "Suppressing this rule requires a justification: "
            f"# simlint: disable={r.code}(reason)"
        )
    if r.scope or r.requires_reason:
        lines.append("")
    if r.bad_example:
        lines.append("Bad:")
        lines.extend("    " + line for line in r.bad_example.rstrip().splitlines())
        lines.append("")
    if r.good_example:
        lines.append("Good:")
        lines.extend("    " + line for line in r.good_example.rstrip().splitlines())
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _format_stats(timings: "dict[str, float]") -> str:
    lines = ["per-rule wall time:"]
    total = sum(timings.values())
    for code, seconds in sorted(timings.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {code}  {seconds * 1000.0:8.1f} ms")
    lines.append(f"  all  {total * 1000.0:8.1f} ms")
    lines.append(
        "  (a project rule that triggers a shared analysis build pays "
        "for it; later rules reuse the cache)"
    )
    return "\n".join(lines)


def _list_rules() -> str:
    lines = ["simlint rules:"]
    for code in sorted(RULES):
        r = RULES[code]
        reason = " [suppression requires a reason]" if r.requires_reason else ""
        lines.append(f"  {code}  {r.summary}{reason}")
        if r.scope:
            lines.append(f"        scope: {', '.join(r.scope)}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Simulator-aware static analysis: determinism, "
        "picklability, hash stability, registry consistency, units of "
        "measure and cache purity.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_const",
        const="json",
        dest="format",
        help="alias for --format json",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress the findings recorded in FILE (content "
        "fingerprints); stale entries are reported but never fail",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings into FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print one rule's rationale and a minimal good/bad example, "
        "then exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="report per-rule wall time after linting (text format only)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.explain is not None:
        text = _explain_rule(args.explain)
        if text is None:
            from repro.lint.registry import all_codes

            print(
                f"repro.lint: unknown rule code {args.explain!r}; "
                f"available: {', '.join(all_codes())}",
                file=sys.stderr,
            )
            return 2
        print(text, end="")
        return 0

    try:
        select = resolve_codes(args.select)
        ignore = resolve_codes(args.ignore)
    except ValueError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    baseline: Optional[Baseline] = None
    if args.baseline is not None and args.write_baseline is None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro.lint: {exc}", file=sys.stderr)
            return 2

    try:
        report = lint_paths(args.paths, select=select, ignore=ignore, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        Baseline.from_findings(report.findings).dump(args.write_baseline)
        print(
            f"simlint: wrote {len(report.findings)} finding(s) to "
            f"baseline {args.write_baseline}"
        )
        return 0

    for stale in report.stale_baseline:
        print(f"repro.lint: stale baseline entry: {stale}", file=sys.stderr)

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    if args.format == "sarif":
        print(json.dumps(to_sarif(report, RULES), indent=2, sort_keys=True))
        return 0 if report.ok else 1

    for finding in report.findings:
        print(finding.format())
    summary = (
        f"{len(report.findings)} finding(s)"
        if report.findings
        else "clean"
    )
    suppressed = (
        f", {report.suppressed} suppressed" if report.suppressed else ""
    )
    baselined = (
        f", {report.baselined} baselined" if report.baselined else ""
    )
    print(
        f"simlint: {summary} in {report.files_checked} file(s)"
        f"{suppressed}{baselined}"
    )
    if args.stats:
        print(_format_stats(report.timings))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
