"""SARIF 2.1.0 output for simlint reports.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning UIs ingest — GitHub's security tab, VS Code's SARIF
viewer, most CI annotators.  ``python -m repro.lint --format sarif``
emits one run with simlint as the tool driver, every registered rule
described in ``tool.driver.rules``, and one ``result`` per finding with
a physical location (URI + region).  Baselined and inline-suppressed
findings are *absent* (the report reflects what fails the run), but the
counts are preserved in the run's ``properties`` bag, as are stale
baseline entries.

:func:`validate_sarif` is a hand-rolled structural validator for the
subset of the SARIF 2.1.0 schema this module emits (same approach as
``repro.perf.schema``): the test suite always runs it, and additionally
validates against the full official JSON schema when the optional
``jsonschema`` package is importable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.engine import LintReport
    from repro.lint.registry import Rule

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: simlint findings are invariant violations, not style nits.
_LEVEL = "error"


def _rule_descriptor(rule: "Rule") -> dict[str, Any]:
    descriptor: dict[str, Any] = {
        "id": rule.code,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": _LEVEL},
    }
    properties: dict[str, Any] = {}
    if rule.scope:
        properties["scope"] = list(rule.scope)
    if rule.requires_reason:
        properties["suppressionRequiresReason"] = True
    if properties:
        descriptor["properties"] = properties
    return descriptor


def _result(finding: Finding) -> dict[str, Any]:
    return {
        "ruleId": finding.rule,
        "level": _LEVEL,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col),
                    },
                }
            }
        ],
    }


def to_sarif(
    report: "LintReport", rules: "Mapping[str, Rule]"
) -> dict[str, Any]:
    """The SARIF 2.1.0 document for one lint run."""
    from repro import __version__ as tool_version

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/linting.md"
                        ),
                        "version": tool_version,
                        "rules": [
                            _rule_descriptor(rules[code])
                            for code in sorted(rules)
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": [_result(f) for f in report.findings],
                "properties": {
                    "filesChecked": report.files_checked,
                    "suppressed": report.suppressed,
                    "baselined": report.baselined,
                    "staleBaselineEntries": list(report.stale_baseline),
                },
            }
        ],
    }


def validate_sarif(doc: Any) -> list[str]:
    """Structural errors in ``doc`` against the SARIF subset we emit.

    Empty list means valid.  Checks the invariants the 2.1.0 schema
    imposes on the fields :func:`to_sarif` produces: required keys,
    value types, the version literal, and per-result location shape.
    """
    errors: list[str] = []

    def check(cond: bool, message: str) -> bool:
        if not cond:
            errors.append(message)
        return cond

    if not check(isinstance(doc, dict), "document must be an object"):
        return errors
    check(doc.get("version") == SARIF_VERSION, "version must be '2.1.0'")
    runs = doc.get("runs")
    if not check(isinstance(runs, list) and runs, "runs must be a non-empty array"):
        return errors
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not check(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if check(isinstance(driver, dict), f"{where}.tool.driver is required"):
            check(
                isinstance(driver.get("name"), str) and driver["name"],
                f"{where}.tool.driver.name must be a non-empty string",
            )
            for j, rule in enumerate(driver.get("rules", [])):
                rwhere = f"{where}.tool.driver.rules[{j}]"
                if check(isinstance(rule, dict), f"{rwhere} must be an object"):
                    check(
                        isinstance(rule.get("id"), str) and rule["id"],
                        f"{rwhere}.id must be a non-empty string",
                    )
        results = run.get("results")
        if not check(isinstance(results, list), f"{where}.results must be an array"):
            continue
        rule_ids = {
            rule.get("id")
            for rule in (driver or {}).get("rules", [])
            if isinstance(rule, dict)
        }
        for j, result in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not check(isinstance(result, dict), f"{rwhere} must be an object"):
                continue
            message = result.get("message")
            check(
                isinstance(message, dict) and isinstance(message.get("text"), str),
                f"{rwhere}.message.text is required",
            )
            if isinstance(result.get("ruleId"), str) and rule_ids:
                check(
                    result["ruleId"] in rule_ids,
                    f"{rwhere}.ruleId {result.get('ruleId')!r} is not a "
                    "declared rule",
                )
            for k, location in enumerate(result.get("locations", [])):
                lwhere = f"{rwhere}.locations[{k}]"
                if not check(
                    isinstance(location, dict), f"{lwhere} must be an object"
                ):
                    continue
                physical = location.get("physicalLocation")
                if not check(
                    isinstance(physical, dict),
                    f"{lwhere}.physicalLocation must be an object",
                ):
                    continue
                artifact = physical.get("artifactLocation")
                check(
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str),
                    f"{lwhere}.physicalLocation.artifactLocation.uri is required",
                )
                region = physical.get("region")
                if isinstance(region, dict):
                    for field in ("startLine", "startColumn"):
                        value = region.get(field)
                        if value is not None:
                            check(
                                isinstance(value, int) and value >= 1,
                                f"{lwhere}...region.{field} must be a "
                                "positive integer",
                            )
    return errors
