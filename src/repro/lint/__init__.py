"""simlint: simulator-aware static analysis for the reproduction.

Generic linters cannot see this codebase's real invariants — that every
stochastic draw flows through :class:`~repro.sim.rng.RngRegistry` named
streams, that jobs pickle and content-hash stably across processes, and
that the experiment registry, the modules on disk and the scenario names
agree.  ``repro.lint`` machine-checks them on every change:

====  ====================================================================
D001  no direct ``random.Random()`` / module-level ``random.*`` draws in
      simulation packages (``sim``/``net``/``cc``/``traffic``)
D002  no wall-clock reads in simulation-domain packages (sim time only)
D003  no iteration over sets where the order can escape into scheduling,
      job lists or hashed payloads
P001  ``@scenario`` runners and Job field values must be module-level
      (jobs cross process boundaries by pickle)
H001  content-hash stability: canonical JSON, no builtin ``hash()``,
      Job fields are identity or explicitly display-only
R001  experiment-registry consistency (modules ↔ tables ↔ scenarios)
E001  no blind ``except`` on worker execution paths without a
      ``# simlint: disable=E001(reason)`` justification
U001  incompatible units added, subtracted, compared, assigned or
      returned (whole-program unit inference over ``net``/``cc``/
      ``metrics``/``telemetry``; see :mod:`repro.units`)
U002  bits and bytes mixed in one product without the factor-8
      conversion
U003  call argument unit conflicts with the parameter's declared unit
U004  a name's unit suffix (``_s``, ``_bps``, ...) contradicts its
      annotation
F001  file I/O or process-state reads reachable from a ``@scenario``
      runner, ``jobs()`` or ``reduce()`` (cache-key purity)
F002  module-global mutation reachable from the same entry points
====  ====================================================================

The U- and F-families are whole-program analyses (symbol tables, unit
dataflow, call-graph reachability) built once per run and shared through
:class:`~repro.lint.engine.LintContext`; the earlier families are
single-pass AST pattern rules.

Run ``python -m repro.lint src tests``; ``--format sarif`` emits SARIF
2.1.0 for CI upload, ``--baseline FILE`` adopts a rule incrementally.
See ``docs/linting.md`` and ``docs/units.md``.
"""

import repro.lint.rules  # noqa: F401  (importing registers every rule)
from repro.lint.baseline import Baseline, fingerprint
from repro.lint.cli import main
from repro.lint.engine import (
    LintContext,
    LintReport,
    SourceFile,
    lint_paths,
    lint_sources,
    walk_paths,
)
from repro.lint.findings import JSON_SCHEMA_VERSION, Finding
from repro.lint.registry import RULES, all_codes, resolve_codes
from repro.lint.sarif import to_sarif, validate_sarif
from repro.lint.suppress import Suppression, SuppressionIndex, parse_suppressions

__all__ = [
    "Baseline",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintContext",
    "LintReport",
    "RULES",
    "SourceFile",
    "Suppression",
    "SuppressionIndex",
    "all_codes",
    "fingerprint",
    "lint_paths",
    "lint_sources",
    "main",
    "parse_suppressions",
    "resolve_codes",
    "to_sarif",
    "validate_sarif",
    "walk_paths",
]
