"""simlint: simulator-aware static analysis for the reproduction.

Generic linters cannot see this codebase's real invariants — that every
stochastic draw flows through :class:`~repro.sim.rng.RngRegistry` named
streams, that jobs pickle and content-hash stably across processes, and
that the experiment registry, the modules on disk and the scenario names
agree.  ``repro.lint`` machine-checks them on every change:

====  ====================================================================
D001  no direct ``random.Random()`` / module-level ``random.*`` draws in
      simulation packages (``sim``/``net``/``cc``/``traffic``)
D002  no wall-clock reads in simulation-domain packages (sim time only)
D003  no iteration over sets where the order can escape into scheduling,
      job lists or hashed payloads
P001  ``@scenario`` runners and Job field values must be module-level
      (jobs cross process boundaries by pickle)
H001  content-hash stability: canonical JSON, no builtin ``hash()``,
      Job fields are identity or explicitly display-only
R001  experiment-registry consistency (modules ↔ tables ↔ scenarios)
E001  no blind ``except`` on worker execution paths without a
      ``# simlint: disable=E001(reason)`` justification
====  ====================================================================

Run ``python -m repro.lint src tests``; see ``docs/linting.md``.
"""

import repro.lint.rules  # noqa: F401  (importing registers every rule)
from repro.lint.cli import main
from repro.lint.engine import (
    LintReport,
    SourceFile,
    lint_paths,
    lint_sources,
    walk_paths,
)
from repro.lint.findings import JSON_SCHEMA_VERSION, Finding
from repro.lint.registry import RULES, all_codes, resolve_codes
from repro.lint.suppress import Suppression, SuppressionIndex, parse_suppressions

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "RULES",
    "SourceFile",
    "Suppression",
    "SuppressionIndex",
    "all_codes",
    "lint_paths",
    "lint_sources",
    "main",
    "parse_suppressions",
    "resolve_codes",
    "walk_paths",
]
