"""Small AST helpers shared by the simlint rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = [
    "call_name",
    "dotted_name",
    "keyword_value",
    "scopes",
    "str_const",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted name a call targets (``random.Random``), else None."""
    return dotted_name(node.func)


def keyword_value(node: ast.Call, name: str) -> Optional[ast.expr]:
    """The AST of keyword argument ``name`` on a call, if present."""
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def str_const(node: Optional[ast.expr]) -> Optional[str]:
    """The value of a string-literal expression, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def scopes(tree: ast.AST) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and each function/class.

    Used by rules that track simple per-scope name bindings (D003's set
    inference) without building a full symbol table.
    """
    if isinstance(tree, (ast.Module, ast.Interactive)):
        yield tree, list(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield node, list(node.body)
