"""Inline suppression comments: ``# simlint: disable=RULE``.

Suppressions are line-scoped: a comment suppresses findings reported on
its own physical line.  A rule code may carry a parenthesized reason —
``# simlint: disable=E001(best-effort cleanup of a dead pool)`` — and
rules that declare ``requires_reason`` are only suppressed when a
non-empty reason is present, so blind-except escapes stay justified.

Two forms are recognized anywhere a comment can appear:

* ``# simlint: disable=CODE[,CODE2...]`` — suppress on this line;
* ``# simlint: disable-file=CODE[,CODE2...]`` — suppress in this file.

Comments are found with :mod:`tokenize`, not regexes over raw lines, so
string literals that merely *look* like suppressions are never honored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "SuppressionIndex", "parse_suppressions"]

#: ``CODE`` or ``CODE(reason text)``; codes are letters + digits (D001).
_ENTRY = re.compile(r"([A-Z][A-Z0-9]*)\s*(?:\(([^)]*)\))?")
_DIRECTIVE = re.compile(r"#\s*simlint:\s*(disable(?:-file)?)\s*=\s*(.+)")


@dataclass(frozen=True)
class Suppression:
    """One suppressed rule code, with an optional justification."""

    code: str
    reason: str = ""
    line: int = 0  # 0 means file-scoped

    @property
    def has_reason(self) -> bool:
        return bool(self.reason.strip())


@dataclass
class SuppressionIndex:
    """All suppressions in one file, queryable by (code, line)."""

    by_line: dict[int, dict[str, Suppression]] = field(default_factory=dict)
    file_wide: dict[str, Suppression] = field(default_factory=dict)

    def lookup(self, code: str, line: int) -> "Suppression | None":
        """The suppression covering ``code`` at ``line``, if any."""
        at_line = self.by_line.get(line, {})
        if code in at_line:
            return at_line[code]
        return self.file_wide.get(code)


def _parse_entries(text: str) -> list[tuple[str, str]]:
    """Split ``D001,E001(reason)`` into ``[(code, reason), ...]``."""
    entries: list[tuple[str, str]] = []
    for match in _ENTRY.finditer(text):
        code, reason = match.group(1), match.group(2) or ""
        entries.append((code, reason.strip()))
    return entries


def parse_suppressions(source: str) -> SuppressionIndex:
    """Index every ``# simlint:`` directive in ``source`` by line."""
    index = SuppressionIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files are reported by the engine as parse findings;
        # there is nothing meaningful to suppress in them.
        return index
    for line, comment in comments:
        match = _DIRECTIVE.search(comment)
        if match is None:
            continue
        directive, entries = match.group(1), match.group(2)
        for code, reason in _parse_entries(entries):
            if directive == "disable-file":
                index.file_wide[code] = Suppression(code, reason, line=0)
            else:
                index.by_line.setdefault(line, {})[code] = Suppression(
                    code, reason, line=line
                )
    return index
