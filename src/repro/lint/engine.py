"""The simlint engine: parse, dispatch rules, apply suppressions.

The engine owns everything rule-agnostic: walking paths to ``.py``
files, parsing each into a :class:`SourceFile` (AST + raw text +
suppression index), running per-file and project rules, and filtering
findings through the inline-suppression index and the optional
baseline.  Rules never see the suppression machinery — they report
everything, and the engine decides what the developer has justified
away.

Project rules share one :class:`LintContext` per run: the whole-program
analyses (symbol tables, unit events, purity reachability) are built
lazily on first request and cached there, so the four U-rules and two
F-rules together cost one analysis pass, not six.

Two entry points matter to callers:

* :func:`lint_paths` — lint files/directories on disk (the CLI);
* :func:`lint_sources` — lint in-memory ``{virtual_path: source}``
  mappings, which is how the fixture tests exercise path-scoped rules
  without planting trip-wire files inside the real package tree.
"""

from __future__ import annotations

import ast
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.lint.findings import Finding
from repro.lint.registry import RULES, Rule
from repro.lint.suppress import SuppressionIndex, parse_suppressions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.analysis.contracts import IntervalEvent
    from repro.lint.analysis.purity import PurityAnalysis
    from repro.lint.analysis.symbols import Program
    from repro.lint.analysis.unitcheck import UnitEvent
    from repro.lint.baseline import Baseline

__all__ = [
    "LintContext",
    "LintReport",
    "SourceFile",
    "lint_paths",
    "lint_sources",
    "walk_paths",
]

#: Directory names never descended into.  ``lint_fixtures`` holds the
#: deliberately-broken rule fixtures used by the test suite; they are
#: data, not code, and must not fail a whole-repo run.
SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
    ".venv",
    "venv",
    "node_modules",
    "lint_fixtures",
}


@dataclass
class SourceFile:
    """One parsed module: path, text, AST and its suppression index."""

    path: str
    text: str
    tree: Optional[ast.AST]
    suppressions: SuppressionIndex
    parse_error: Optional[str] = None

    @classmethod
    def from_text(cls, text: str, path: str) -> "SourceFile":
        tree: Optional[ast.AST] = None
        error: Optional[str] = None
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            error = f"{exc.msg} (line {exc.lineno})"
        return cls(
            path=path,
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
            parse_error=error,
        )

    @classmethod
    def from_disk(cls, path: "str | os.PathLike[str]") -> "SourceFile":
        p = pathlib.Path(path)
        return cls.from_text(p.read_text(encoding="utf-8"), p.as_posix())

    @property
    def module_name(self) -> str:
        """The bare module name (``red`` for ``src/repro/net/red.py``)."""
        return pathlib.PurePosixPath(self.path).stem


class LintContext:
    """Per-run shared state for project rules.

    Whole-program analyses are expensive (symbol tables over every file,
    unit inference, call-graph reachability); the engine builds one
    context per run and hands it to every project rule, which memoizes
    each analysis on first use.
    """

    def __init__(self, files: Sequence["SourceFile"]):
        self.files = list(files)
        self._program: Optional["Program"] = None
        self._unit_events: dict[tuple[str, ...], list["UnitEvent"]] = {}
        self._interval_events: dict[tuple[str, ...], list["IntervalEvent"]] = {}
        self._purity: Optional["PurityAnalysis"] = None

    @property
    def program(self) -> "Program":
        """The whole-program symbol index, built once."""
        if self._program is None:
            from repro.lint.analysis.symbols import build_program

            self._program = build_program(self.files)
        return self._program

    def unit_events(self, scope: Sequence[str]) -> list["UnitEvent"]:
        """Unit-mismatch events for files inside ``scope`` packages."""
        key = tuple(scope)
        if key not in self._unit_events:
            from repro.lint.analysis.unitcheck import analyze_units

            self._unit_events[key] = analyze_units(self.program, self.files, key)
        return self._unit_events[key]

    def interval_events(self, scope: Sequence[str]) -> list["IntervalEvent"]:
        """Interval/contract events for files inside ``scope`` packages."""
        key = tuple(scope)
        if key not in self._interval_events:
            from repro.lint.analysis.contracts import analyze_contracts

            self._interval_events[key] = analyze_contracts(
                self.program, self.files, key
            )
        return self._interval_events[key]

    @property
    def purity(self) -> "PurityAnalysis":
        """Cache-purity reachability, built once."""
        if self._purity is None:
            from repro.lint.analysis.purity import analyze_purity

            self._purity = analyze_purity(self.program, self.files)
        return self._purity


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Findings absorbed by the ``--baseline`` file, if one was given.
    baselined: int = 0
    #: Human descriptions of baseline entries nothing matched anymore.
    stale_baseline: list[str] = field(default_factory=list)
    #: Wall time spent per rule code, in seconds (``--stats``).  A
    #: project rule that triggers a shared LintContext analysis build
    #: pays for that build; later rules reusing the cache read ~0.
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        by_code: dict[str, int] = {}
        for finding in self.findings:
            by_code[finding.rule] = by_code.get(finding.rule, 0) + 1
        return dict(sorted(by_code.items()))

    def as_dict(self) -> dict:
        from repro.lint.findings import JSON_SCHEMA_VERSION

        return {
            "version": JSON_SCHEMA_VERSION,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline": list(self.stale_baseline),
            "counts": self.counts(),
            "findings": [f.as_dict() for f in self.findings],
        }


def walk_paths(paths: Sequence["str | os.PathLike[str]"]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                out.add(p.as_posix())
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"no such file or directory: {p}")
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.add((pathlib.Path(dirpath) / name).as_posix())
    return sorted(out)


def _active_rules(
    select: "set[str] | None", ignore: "set[str] | None"
) -> list[Rule]:
    rules = [
        r
        for code, r in RULES.items()
        if (select is None or code in select)
        and (ignore is None or code not in ignore)
    ]
    return rules


def _admit(
    finding: Finding,
    rule: Rule,
    by_path: Mapping[str, SourceFile],
    report: LintReport,
) -> Optional[Finding]:
    """Apply the suppression index; return the finding to keep, if any."""
    src = by_path.get(finding.path)
    if src is None:
        return finding
    supp = src.suppressions.lookup(finding.rule, finding.line)
    if supp is None:
        return finding
    if rule.requires_reason and not supp.has_reason:
        return Finding(
            finding.rule,
            finding.path,
            finding.line,
            finding.col,
            finding.message
            + f" [suppressing {finding.rule} requires a justification: "
            f"# simlint: disable={finding.rule}(reason)]",
        )
    report.suppressed += 1
    return None


def lint_files(
    files: Sequence[SourceFile],
    select: "set[str] | None" = None,
    ignore: "set[str] | None" = None,
    baseline: "Baseline | None" = None,
) -> LintReport:
    """Run the active rules over parsed files and filter suppressions."""
    report = LintReport(files_checked=len(files))
    by_path = {src.path: src for src in files}
    rules = _active_rules(select, ignore)

    raw: list[tuple[Rule, Finding]] = []
    timings = report.timings
    for src in files:
        if src.parse_error is not None:
            report.findings.append(
                Finding("X000", src.path, 1, 1, f"syntax error: {src.parse_error}")
            )
            continue
        for r in rules:
            if r.project or not r.applies(src.path):
                continue
            started = time.perf_counter()
            for finding in r.check_file(src):
                raw.append((r, finding))
            timings[r.code] = timings.get(r.code, 0.0) + (
                time.perf_counter() - started
            )
    parseable = [src for src in files if src.parse_error is None]
    context = LintContext(parseable)
    for r in rules:
        if not r.project:
            continue
        started = time.perf_counter()
        for finding in r.check_project(parseable, context):
            raw.append((r, finding))
        timings[r.code] = timings.get(r.code, 0.0) + (
            time.perf_counter() - started
        )

    for r, finding in raw:
        kept = _admit(finding, r, by_path, report)
        if kept is not None:
            report.findings.append(kept)
    report.findings.sort(key=Finding.sort_key)
    if baseline is not None:
        kept_findings, baselined, stale = baseline.apply(report.findings)
        report.findings = kept_findings
        report.baselined = baselined
        report.stale_baseline = stale
    return report


def lint_sources(
    sources: Mapping[str, str],
    select: "set[str] | None" = None,
    ignore: "set[str] | None" = None,
    baseline: "Baseline | None" = None,
) -> LintReport:
    """Lint in-memory ``{virtual_path: source_text}`` modules.

    The virtual path decides which rules apply — a fixture passed as
    ``repro/net/example.py`` is linted exactly as if it lived in the
    real ``repro.net`` package.
    """
    files = [SourceFile.from_text(text, path) for path, text in sources.items()]
    return lint_files(files, select=select, ignore=ignore, baseline=baseline)


def lint_paths(
    paths: Sequence["str | os.PathLike[str]"],
    select: "set[str] | None" = None,
    ignore: "set[str] | None" = None,
    baseline: "Baseline | None" = None,
) -> LintReport:
    """Lint files and directory trees on disk."""
    files = [SourceFile.from_disk(p) for p in walk_paths(paths)]
    return lint_files(files, select=select, ignore=ignore, baseline=baseline)
