"""Interprocedural cache-purity analysis for the experiment layer.

The result cache (:mod:`repro.experiments.cache`) is keyed purely by a
job's content hash, so everything a scenario runner computes must be a
function of the :class:`~repro.experiments.jobs.Job` alone.  A runner
that reads a file, consults an environment variable or mutates module
state produces results the cache key does not capture — a cached replay
then silently diverges from a fresh run, which is the one corruption the
whole executor design exists to rule out.

This analysis walks the call graph from the cache-relevant entry points:

* functions decorated with ``@scenario(...)`` (the registered runners);
* module-level ``jobs()`` and ``reduce()`` functions in
  ``repro.experiments.*`` figure modules.

Each function in the linted file set gets a one-time summary (its own
impure operations plus its resolvable callees); a breadth-first walk
from the roots then reports every impure site that is reachable, with
the call chain that reaches it.  Calls that cannot be resolved inside
the linted files (stdlib, third-party, dynamic dispatch) are assumed
pure — the analysis under-approximates rather than drowning real
findings in noise.

Impure operations:

* ``io`` (F001) — ``open()``/``input()``, ``os``/``shutil``/
  ``subprocess``/``tempfile`` filesystem calls, pathlib read/write
  methods, ``json``/``pickle`` file (de)serialization;
* ``env`` (F001) — ``os.environ`` / ``os.getenv`` / ``sys.argv`` reads
  (state not derived from the Job);
* ``global`` (F002) — rebinding via ``global``, or mutating a
  module-level container (item/attribute stores, ``.append``-style
  calls) that the symbol tables identify as mutable module state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.lint.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleTable,
    Program,
)
from repro.lint.astutil import dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.engine import SourceFile

__all__ = ["PurityAnalysis", "PurityEvent", "analyze_purity"]

#: Bare calls that are file/console I/O wherever they appear.
_IO_BUILTINS = {"open", "input"}

#: ``module.function`` calls that touch the filesystem or a process.
_IO_DOTTED_HEADS = {"shutil", "subprocess", "tempfile"}
_IO_DOTTED = {
    "os.remove", "os.unlink", "os.mkdir", "os.makedirs", "os.rmdir",
    "os.rename", "os.replace", "os.system", "os.popen", "os.chdir",
    "os.listdir", "os.scandir", "os.stat", "os.getcwd",
    "json.load", "json.dump", "pickle.load", "pickle.dump",
    "numpy.save", "numpy.load", "np.save", "np.load",
}

#: Attribute calls that are pathlib/file read-write regardless of receiver.
_IO_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes",
    "touch", "mkdir", "rmdir", "unlink", "iterdir", "glob", "rename",
}

#: Expression heads that read process state a Job does not capture.
_ENV_READS = {"os.environ", "os.environb", "os.getenv", "sys.argv"}

#: Method names that mutate a list/dict/set receiver in place.
_MUTATING_METHODS = {
    "append", "add", "extend", "insert", "update", "clear", "remove",
    "setdefault", "sort", "reverse", "pop", "popitem", "popleft",
    "appendleft", "discard",
}

#: Attribute-call names too generic to resolve without a receiver type.
_AMBIGUOUS_CALLEES = _MUTATING_METHODS | {
    "get", "items", "keys", "values", "copy", "count", "index", "join",
    "split", "build", "describe", "param", "tag",
}


@dataclass(frozen=True)
class ImpureSite:
    """One impure operation found inside a function body."""

    kind: str  # io | env | global
    node: ast.AST
    reason: str


@dataclass
class FunctionSummary:
    """What one function does locally, plus where it goes next."""

    info: FunctionInfo
    sites: list[ImpureSite] = field(default_factory=list)
    callees: list[FunctionInfo] = field(default_factory=list)


@dataclass(frozen=True)
class PurityEvent:
    """One reachable impure site, with the chain that reaches it."""

    kind: str  # io | env | global
    path: str
    node: ast.AST
    message: str
    chain: tuple[str, ...]


@dataclass
class PurityAnalysis:
    """Roots plus every impure site reachable from them."""

    roots: list[FunctionInfo] = field(default_factory=list)
    events: list[PurityEvent] = field(default_factory=list)


def _is_root(info: FunctionInfo) -> bool:
    if info.cls is not None:
        return False
    for name in info.decorator_names():
        if name == "scenario" or name.endswith(".scenario"):
            return True
    if info.name in ("jobs", "reduce"):
        dotted = info.module.dotted or ""
        return dotted.startswith("repro.experiments.")
    return False


def _local_names(node: ast.AST) -> set[str]:
    """Every name bound anywhere inside ``node`` (flow-insensitive)."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            out.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = sub.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                out.add(arg.arg)
            if args.vararg:
                out.add(args.vararg.arg)
            if args.kwarg:
                out.add(args.kwarg.arg)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                out.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(sub, ast.comprehension):
            for name in ast.walk(sub.target):
                if isinstance(name, ast.Name):
                    out.add(name.id)
    return out


class _SummaryBuilder:
    """Builds one function's :class:`FunctionSummary`.

    The scan covers the whole function body *including* nested functions
    and lambdas: a closure defined inside a runner executes as part of
    the same job, so its effects belong to the runner's summary.
    """

    def __init__(self, program: Program, method_index: dict[str, list[FunctionInfo]]):
        self.program = program
        self.method_index = method_index

    def build(self, info: FunctionInfo) -> FunctionSummary:
        summary = FunctionSummary(info)
        locals_ = _local_names(info.node)
        if info.cls is not None:
            locals_.add("self")
        globals_declared: set[str] = set()
        # Walk the *body* only: decorator expressions and annotations on
        # the def itself run at import time, not when the function does.
        body_nodes = [
            node for stmt in info.node.body for node in ast.walk(stmt)
        ]
        # Callee expressions are reported through _scan_call; scanning them
        # again as bare loads would double-report e.g. ``os.getenv(...)``.
        call_funcs = {
            id(node.func) for node in body_nodes if isinstance(node, ast.Call)
        }
        for node in body_nodes:
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
                summary.sites.append(
                    ImpureSite(
                        "global",
                        node,
                        f"declares global {', '.join(node.names)} for rebinding",
                    )
                )
            elif isinstance(node, ast.Call):
                self._scan_call(summary, info.module, node, locals_)
            elif isinstance(node, (ast.Attribute, ast.Name)) and isinstance(
                node.ctx, ast.Load
            ):
                if id(node) not in call_funcs:
                    self._scan_env_read(summary, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._scan_store(summary, info.module, node, locals_)
        return summary

    # -- individual site detectors -------------------------------------------

    def _scan_env_read(self, summary: FunctionSummary, node: ast.expr) -> None:
        name = dotted_name(node)
        if name in _ENV_READS:
            summary.sites.append(
                ImpureSite("env", node, f"reads process state via {name}")
            )

    def _scan_call(
        self,
        summary: FunctionSummary,
        module: ModuleTable,
        call: ast.Call,
        locals_: set[str],
    ) -> None:
        name = dotted_name(call.func)
        if name in _IO_BUILTINS and name not in locals_ and not (
            name in module.functions or name in module.imports
        ):
            summary.sites.append(
                ImpureSite("io", call, f"calls the {name}() builtin")
            )
            return
        if name is not None and "." in name:
            head = name.split(".")[0]
            if name in _IO_DOTTED or (
                head in _IO_DOTTED_HEADS and head not in locals_
            ):
                summary.sites.append(
                    ImpureSite("io", call, f"calls {name}()")
                )
                return
            if name in _ENV_READS:
                summary.sites.append(
                    ImpureSite("env", call, f"reads process state via {name}()")
                )
                return
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in _IO_METHODS:
                summary.sites.append(
                    ImpureSite("io", call, f"calls the file method .{attr}()")
                )
                return
            if attr in _MUTATING_METHODS:
                self._scan_mutating_method(summary, module, call, locals_)
        self._record_callee(summary, module, call, locals_)

    def _scan_mutating_method(
        self,
        summary: FunctionSummary,
        module: ModuleTable,
        call: ast.Call,
        locals_: set[str],
    ) -> None:
        assert isinstance(call.func, ast.Attribute)
        receiver = call.func.value
        if isinstance(receiver, ast.Name) and self._is_mutable_global(
            module, receiver.id, locals_
        ):
            summary.sites.append(
                ImpureSite(
                    "global",
                    call,
                    f"mutates module global {receiver.id!r} via "
                    f".{call.func.attr}()",
                )
            )

    def _scan_store(
        self,
        summary: FunctionSummary,
        module: ModuleTable,
        stmt: ast.stmt,
        locals_: set[str],
    ) -> None:
        targets: Sequence[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        else:
            targets = [stmt.target]  # type: ignore[list-item]
        for target in targets:
            base = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if base is target:
                continue  # plain name store: a local binding
            if isinstance(base, ast.Name) and self._is_mutable_global(
                module, base.id, locals_
            ):
                summary.sites.append(
                    ImpureSite(
                        "global",
                        target,
                        f"stores into module global {base.id!r}",
                    )
                )

    def _is_mutable_global(
        self, module: ModuleTable, name: str, locals_: set[str]
    ) -> bool:
        if name in locals_:
            return False
        if name in module.mutable_globals:
            return True
        # ``from repro.experiments.jobs import SCENARIOS``-style imports of
        # another linted module's mutable global.
        target = module.imports.get(name)
        if target is None:
            return False
        split = self.program._split_dotted(target)
        if split is None:
            return False
        table, remainder = split
        return len(remainder) == 1 and remainder[0] in table.mutable_globals

    # -- call-graph edges ----------------------------------------------------

    def _record_callee(
        self,
        summary: FunctionSummary,
        module: ModuleTable,
        call: ast.Call,
        locals_: set[str],
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "self" and summary.info.cls is not None:
                method = self.program.find_method(summary.info.cls, func.attr)
                if method is not None:
                    summary.callees.append(method)
                    return
        name = dotted_name(func)
        if name is not None:
            head = name.split(".")[0]
            if head not in locals_ or head in module.imports:
                resolved = self.program.resolve(module, name)
                if isinstance(resolved, FunctionInfo):
                    summary.callees.append(resolved)
                    return
                if isinstance(resolved, ClassInfo):
                    init = self.program.find_method(resolved, "__init__")
                    if init is not None:
                        summary.callees.append(init)
                    return
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _AMBIGUOUS_CALLEES:
                return
            candidates = self.method_index.get(attr, [])
            if len(candidates) == 1:
                summary.callees.append(candidates[0])


def analyze_purity(
    program: Program, files: Sequence["SourceFile"]
) -> PurityAnalysis:
    """Walk the call graph from the cache-relevant roots."""
    method_index: dict[str, list[FunctionInfo]] = {}
    for table in program.modules.values():
        for cls in table.classes.values():
            for name, method in cls.methods.items():
                method_index.setdefault(name, []).append(method)
    builder = _SummaryBuilder(program, method_index)
    summaries: dict[int, FunctionSummary] = {}

    def summary_of(info: FunctionInfo) -> FunctionSummary:
        if id(info) not in summaries:
            summaries[id(info)] = builder.build(info)
        return summaries[id(info)]

    analysis = PurityAnalysis()
    for table in program.modules.values():
        for info in table.all_functions():
            if _is_root(info):
                analysis.roots.append(info)

    reported: set[tuple[int, str]] = set()
    visited: set[int] = set()
    for root in analysis.roots:
        queue: list[tuple[FunctionInfo, tuple[str, ...]]] = [
            (root, (root.qualname,))
        ]
        while queue:
            info, chain = queue.pop(0)
            if id(info) in visited:
                continue
            visited.add(id(info))
            summary = summary_of(info)
            for site in summary.sites:
                key = (id(site.node), site.kind)
                if key in reported:
                    continue
                reported.add(key)
                analysis.events.append(
                    PurityEvent(
                        kind=site.kind,
                        path=info.module.path,
                        node=site.node,
                        message=(
                            f"{site.reason}; reachable from cache-relevant "
                            f"entry point via {' -> '.join(chain)}"
                        ),
                        chain=chain,
                    )
                )
            for callee in summary.callees:
                if id(callee) not in visited:
                    queue.append((callee, chain + (callee.qualname,)))
    analysis.events.sort(
        key=lambda e: (
            e.path,
            getattr(e.node, "lineno", 0),
            getattr(e.node, "col_offset", 0),
        )
    )
    return analysis
