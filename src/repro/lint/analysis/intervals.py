"""Interval abstract interpretation over one function body.

This is the numeric core of simlint's I-rules: a classic interval
domain (value ranges over floats with optionally *open* endpoints) and
a flow-sensitive intraprocedural abstract interpreter that executes a
function body over it — branch refinement on comparisons, widening at
loop heads, and transfer functions for arithmetic including division.

Open endpoints are what make the domain strong enough for the paper's
equations: after ``if not 0.0 < p <= 1.0: raise ValueError`` the
loss-event rate ``p`` is known to lie in ``(0, 1]``, which *excludes*
zero, so ``math.sqrt(1.5 / p)`` is provably safe — while an unguarded
``1.0 / p`` under a ``Probability`` contract (``[0, 1]``) is provably
dangerous as ``p -> 0`` (Bansal et al., SIGCOMM 2001, Section 5).

The interpreter is deliberately client-agnostic: it knows Python
control flow and numeric transfer functions, and defers everything
that needs whole-program context (call resolution, annotation
contracts, event emission) to overridable hooks.  The contracts layer
(:mod:`repro.lint.analysis.contracts`) subclasses it; the lattice-law
property tests exercise the domain directly.

Soundness conventions:

* ``TOP`` (the unconstrained interval) propagates silently — hooks are
  given every division, but a client that wants zero false positives
  only speaks when the divisor's interval is *known*;
* joins over-approximate (interval hull), ``int``/``round``/``//``
  round outward to closed endpoints, and widening jumps to the nearest
  of a small threshold set (−1, 0, 1) before giving up to infinity, so
  loop analysis terminates in a handful of iterations.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Final, Iterable, Optional, Sequence

__all__ = ["Env", "Interval", "IntervalInterpreter", "TOP", "EMPTY"]

_INF = math.inf

#: Widening thresholds: the landmarks protocol invariants live at.
WIDEN_THRESHOLDS: Final = (-1.0, 0.0, 1.0)

#: Fixpoint iterations before the loop analysis forces convergence.
MAX_LOOP_PASSES: Final = 16


@dataclass(frozen=True)
class Interval:
    """A set of reals ``{x | lo <? x <? hi}`` with open/closed endpoints.

    Infinite endpoints are always open (infinity is a limit, not a
    value) — except that for *contract* comparisons ``math.inf`` itself
    is treated as satisfying ``hi == inf``; the constructor via
    :meth:`make` normalizes.  The empty interval is the singleton
    :data:`EMPTY`; the unconstrained one is :data:`TOP`.
    """

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    # -- constructors --------------------------------------------------------

    @staticmethod
    def make(
        lo: float, hi: float, lo_open: bool = False, hi_open: bool = False
    ) -> "Interval":
        if math.isnan(lo) or math.isnan(hi):
            return TOP
        if lo > hi:
            return EMPTY
        if lo == hi and lo_open != hi_open and math.isfinite(lo):
            return EMPTY
        if lo == -_INF:
            lo_open = True
        if hi == _INF:
            hi_open = True
        if lo == hi and lo_open and hi_open and math.isfinite(lo):
            return EMPTY
        return Interval(lo, hi, lo_open, hi_open)

    @staticmethod
    def point(value: float) -> "Interval":
        if math.isnan(value):
            return TOP
        return Interval(value, value, False, False)

    # -- predicates ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi and not self.lo_open and not self.hi_open

    @property
    def is_known(self) -> bool:
        """At least one bound is informative (finite endpoint)."""
        return not self.is_empty and (
            math.isfinite(self.lo) or math.isfinite(self.hi)
        )

    def contains(self, value: float) -> bool:
        if self.is_empty or math.isnan(value):
            return False
        if value < self.lo or (value == self.lo and self.lo_open):
            return False
        if value > self.hi or (value == self.hi and self.hi_open):
            return False
        return True

    @property
    def contains_zero(self) -> bool:
        return self.contains(0.0)

    def subset_of(self, other: "Interval") -> bool:
        """Lattice order: every value of ``self`` lies in ``other``."""
        if self.is_empty:
            return True
        if other.is_empty:
            return False
        if self.lo < other.lo:
            return False
        if self.lo == other.lo and other.lo_open and not self.lo_open:
            return False
        if self.hi > other.hi:
            return False
        if self.hi == other.hi and other.hi_open and not self.hi_open:
            return False
        return True

    def disjoint(self, other: "Interval") -> bool:
        return self.meet(other).is_empty

    # -- lattice -------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound: the interval hull."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        if self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi > self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval.make(lo, hi, lo_open, hi_open)

    def meet(self, other: "Interval") -> "Interval":
        """Greatest lower bound: the intersection."""
        if self.is_empty or other.is_empty:
            return EMPTY
        if self.lo > other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo > self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi < self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        return Interval.make(lo, hi, lo_open, hi_open)

    def widen(self, newer: "Interval") -> "Interval":
        """Classic threshold widening: jump unstable bounds outward.

        A lower bound still descending drops to the nearest threshold
        below the new value (then to −inf); an upper bound still
        climbing jumps to the nearest threshold above (then to +inf).
        Guarantees termination: each application strictly enlarges a
        bound through the finite threshold ladder.
        """
        if self.is_empty:
            return newer
        if newer.is_empty:
            return self
        merged = self.join(newer)
        lo, lo_open = merged.lo, merged.lo_open
        hi, hi_open = merged.hi, merged.hi_open
        if merged.lo < self.lo or (
            merged.lo == self.lo and self.lo_open and not merged.lo_open
        ):
            below = [t for t in WIDEN_THRESHOLDS if t <= merged.lo]
            lo, lo_open = (max(below), False) if below else (-_INF, True)
        if merged.hi > self.hi or (
            merged.hi == self.hi and self.hi_open and not merged.hi_open
        ):
            above = [t for t in WIDEN_THRESHOLDS if t >= merged.hi]
            hi, hi_open = (min(above), False) if above else (_INF, True)
        return Interval.make(lo, hi, lo_open, hi_open)

    # -- transfer functions --------------------------------------------------

    def neg(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        return Interval.make(-self.hi, -self.lo, self.hi_open, self.lo_open)

    def add(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        lo = _add_values(self.lo, other.lo, -_INF)
        hi = _add_values(self.hi, other.hi, _INF)
        return Interval.make(
            lo, hi, self.lo_open or other.lo_open, self.hi_open or other.hi_open
        )

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        corners = [
            _mul_corner(a, ao, b, bo)
            for a, ao in ((self.lo, self.lo_open), (self.hi, self.hi_open))
            for b, bo in ((other.lo, other.lo_open), (other.hi, other.hi_open))
        ]
        # Ties between corners with equal value must keep the hull sound:
        # a closed (attained) corner beats an open one at both ends.
        lo, lo_open = min(corners, key=lambda c: (c[0], c[1]))
        hi, hi_open = max(corners, key=lambda c: (c[0], not c[1]))
        return Interval.make(lo, hi, lo_open, hi_open)

    def inverse(self) -> "Interval":
        """``1/x`` for an interval that does NOT contain zero."""
        if self.is_empty:
            return EMPTY
        if self.contains_zero:
            return TOP
        negative = self.hi < 0 or (self.hi == 0 and self.hi_open)
        sign = -1.0 if negative else 1.0
        lo, lo_open = _inv_endpoint(self.hi, self.hi_open, sign)
        hi, hi_open = _inv_endpoint(self.lo, self.lo_open, sign)
        return Interval.make(lo, hi, lo_open, hi_open)

    def div(self, other: "Interval") -> "Interval":
        """``x / y``; TOP when the divisor may be zero (the client is
        expected to have reported that division separately).

        Corners are divided directly rather than via ``mul(inverse())``:
        the two-step form rounds twice, and the doubly-rounded endpoint
        can land strictly inside the true hull (``2.5 * (1/-1.5)`` !=
        ``2.5 / -1.5``).  A single correctly-rounded quotient per corner
        is monotone, so every concrete quotient stays inside the hull.
        """
        if self.is_empty or other.is_empty:
            return EMPTY
        if other.contains_zero:
            return TOP
        negative = other.hi < 0 or (other.hi == 0 and other.hi_open)
        sign = -1.0 if negative else 1.0
        corners = [
            _div_corner(a, ao, b, bo, sign)
            for a, ao in ((self.lo, self.lo_open), (self.hi, self.hi_open))
            for b, bo in ((other.lo, other.lo_open), (other.hi, other.hi_open))
        ]
        lo, lo_open = min(corners, key=lambda c: (c[0], c[1]))
        hi, hi_open = max(corners, key=lambda c: (c[0], not c[1]))
        return Interval.make(lo, hi, lo_open, hi_open)

    def absolute(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        if self.is_top:
            # |x| >= 0, but manufacturing a known lower bound out of a
            # fully unknown operand lets guarded divisions false-fire
            # (see handle_division's known-lower-bound criterion).
            return TOP
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return self.neg()
        # When |lo| == |hi| the upper bound is attained from whichever
        # side is closed: open only if both endpoints are open.
        if -self.lo > self.hi:
            hi, hi_open = -self.lo, self.lo_open
        elif self.hi > -self.lo:
            hi, hi_open = self.hi, self.hi_open
        else:
            hi, hi_open = self.hi, self.lo_open and self.hi_open
        return Interval.make(0.0, hi, False, hi_open)

    def outward_int(self) -> "Interval":
        """Sound hull after int()/round()///: closed integer bounds."""
        if self.is_empty:
            return EMPTY
        lo = math.floor(self.lo) if math.isfinite(self.lo) else -_INF
        hi = math.ceil(self.hi) if math.isfinite(self.hi) else _INF
        return Interval.make(lo, hi, False, False)

    def monotone(self, fn, domain: "Interval") -> "Interval":
        """Image under an increasing ``fn``, clipped to ``fn``'s domain.

        Used for sqrt/log/exp: endpoints map through ``fn``; openness
        is preserved (a strictly increasing map keeps strict bounds).
        Values outside ``domain`` would raise at runtime — the abstract
        result only describes the non-raising executions.
        """
        if self.is_top:
            # Domain clipping a fully unknown input would invent a known
            # bound (sqrt(TOP) -> [0, inf)); stay silent instead, matching
            # absolute() — derived bounds only when the operand is known.
            return TOP
        clipped = self.meet(domain)
        if clipped.is_empty:
            return EMPTY
        lo = fn(clipped.lo)
        hi = fn(clipped.hi)
        return Interval.make(lo, hi, clipped.lo_open, clipped.hi_open)

    # -- refinement helpers --------------------------------------------------

    def assume_lt(self, bound: "Interval") -> "Interval":
        return self.meet(Interval.make(-_INF, bound.hi, True, True))

    def assume_le(self, bound: "Interval") -> "Interval":
        return self.meet(Interval.make(-_INF, bound.hi, True, bound.hi_open))

    def assume_gt(self, bound: "Interval") -> "Interval":
        return self.meet(Interval.make(bound.lo, _INF, True, True))

    def assume_ge(self, bound: "Interval") -> "Interval":
        return self.meet(Interval.make(bound.lo, _INF, bound.lo_open, True))

    def assume_ne(self, bound: "Interval") -> "Interval":
        """Refine ``x != c``: only endpoint exclusion is expressible."""
        if not bound.is_point or self.is_empty:
            return self
        c = bound.lo
        lo_open, hi_open = self.lo_open, self.hi_open
        if self.lo == c:
            lo_open = True
        if self.hi == c:
            hi_open = True
        return Interval.make(self.lo, self.hi, lo_open, hi_open)

    def __str__(self) -> str:
        if self.is_empty:
            return "(empty)"
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo:g}, {self.hi:g}{right}"


TOP: Final = Interval(-_INF, _INF, True, True)
EMPTY: Final = Interval(_INF, -_INF, True, True)


def _add_values(a: float, b: float, infinity_wins: float) -> float:
    """Endpoint addition; opposite infinities resolve to the sound side."""
    if math.isinf(a) and math.isinf(b) and a != b:
        return infinity_wins
    return a + b


def _mul_corner(
    a: float, a_open: bool, b: float, b_open: bool
) -> tuple[float, bool]:
    """One corner product with openness: attained iff both ends attained.

    An attained zero is special: ``0 * y == 0`` for any ``y`` in the
    other (non-empty) interval, so a closed zero endpoint yields an
    attained zero regardless of the partner endpoint.
    """
    if (a == 0 and not a_open) or (b == 0 and not b_open):
        return (0.0, False)
    if a == 0 or b == 0:
        return (0.0, True)
    return (a * b, a_open or b_open)


def _div_corner(
    a: float, a_open: bool, b: float, b_open: bool, divisor_sign: float
) -> tuple[float, bool]:
    """One corner quotient of a zero-free divisor, with openness.

    ``divisor_sign`` is the sign of the (zero-free) divisor interval; a
    zero divisor endpoint is necessarily open and sends the quotient to
    infinity on that side.  The ``inf/inf`` corner is path-dependent —
    its ratios span everything between the adjacent corners — so it
    contributes an (over-approximate, hence sound) open zero.
    """
    if a == 0:
        # 0/y == 0 for every y in the divisor; attained iff a is.
        return (0.0, a_open)
    if b == 0:
        return (math.copysign(1.0, a) * divisor_sign * _INF, True)
    if math.isinf(a) and math.isinf(b):
        return (0.0, True)
    if math.isinf(b):
        return (0.0, True)
    if math.isinf(a):
        return (a if b > 0 else -a, True)
    return (a / b, a_open or b_open)


def _inv_endpoint(value: float, is_open: bool, sign: float) -> tuple[float, bool]:
    if value == 0:
        # Only reachable with an open zero endpoint (no zero inside);
        # it inverts to the signed infinity of the interval's side
        # (1/0- = -inf for an all-negative interval).
        return (sign * _INF, True)
    if math.isinf(value):
        return (0.0, True)
    return (1.0 / value, is_open)


# ---------------------------------------------------------------------------
# The abstract environment
# ---------------------------------------------------------------------------


class Env:
    """Name -> :class:`Interval`; absent names are TOP (unconstrained)."""

    __slots__ = ("vars",)

    def __init__(self, vars: "Optional[dict[str, Interval]]" = None):
        self.vars: dict[str, Interval] = dict(vars or {})

    def get(self, name: str) -> Interval:
        return self.vars.get(name, TOP)

    def set(self, name: str, interval: Interval) -> None:
        if interval.is_top:
            self.vars.pop(name, None)
        else:
            self.vars[name] = interval

    def copy(self) -> "Env":
        return Env(self.vars)

    def join(self, other: "Env") -> "Env":
        out: dict[str, Interval] = {}
        for name in self.vars.keys() & other.vars.keys():
            joined = self.vars[name].join(other.vars[name])
            if not joined.is_top:
                out[name] = joined
        return Env(out)

    def widen(self, newer: "Env") -> "Env":
        out: dict[str, Interval] = {}
        for name in self.vars.keys() & newer.vars.keys():
            widened = self.vars[name].widen(newer.vars[name])
            if not widened.is_top:
                out[name] = widened
        return Env(out)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Env) and self.vars == other.vars

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}: {v}" for k, v in sorted(self.vars.items()))
        return f"Env({{{inner}}})"


def _join_envs(*envs: "Optional[Env]") -> "Optional[Env]":
    live = [e for e in envs if e is not None]
    if not live:
        return None
    out = live[0]
    for e in live[1:]:
        out = out.join(e)
    return out


def _assigned_names(node: ast.AST) -> set[str]:
    """Every Name bound by assignment/for/with anywhere under ``node``,
    not descending into nested function/class scopes."""
    out: set[str] = set()
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(child, ast.Name) and isinstance(
            child.ctx, (ast.Store, ast.Del)
        ):
            out.add(child.id)
        stack.extend(ast.iter_child_nodes(child))
    return out


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------

#: Math-module functions with a monotone-increasing transfer function:
#: name -> (callable, domain interval).
_MONOTONE_MATH: Final = {
    "sqrt": (math.sqrt, Interval(0.0, _INF, False, True)),
    "log": (lambda x: math.log(x) if x > 0 else -_INF, Interval(0.0, _INF, True, True)),
    "log2": (lambda x: math.log2(x) if x > 0 else -_INF, Interval(0.0, _INF, True, True)),
    "log10": (lambda x: math.log10(x) if x > 0 else -_INF, Interval(0.0, _INF, True, True)),
    "log1p": (lambda x: math.log1p(x) if x > -1 else -_INF, Interval(-1.0, _INF, True, True)),
    "exp": (lambda x: math.exp(x) if x < 700 else _INF, TOP),
}

_MATH_CONSTANTS: Final = {
    "inf": Interval(_INF, _INF, False, False),
    "pi": Interval.point(math.pi),
    "e": Interval.point(math.e),
    "tau": Interval.point(math.tau),
}


class IntervalInterpreter:
    """Flow-sensitive abstract execution of one function or module body.

    Subclasses override the ``handle_*``/``*_interval`` hooks to plug in
    whole-program knowledge and collect events; the base class is a pure
    interpreter with no opinions about what is worth reporting.
    """

    def __init__(self) -> None:
        self._break_envs: list[list[Env]] = []
        self._continue_envs: list[list[Env]] = []

    # -- client hooks --------------------------------------------------------

    def handle_division(self, node: ast.AST, divisor: Interval) -> None:
        """Every ``/``, ``//``, ``%`` with the divisor's interval."""

    def handle_return(self, stmt: ast.Return, value: Interval) -> None:
        """Every ``return expr`` with the returned interval."""

    def handle_call(self, call: ast.Call, env: Env) -> None:
        """Every call expression, after its arguments were evaluated."""

    def call_interval(self, call: ast.Call, env: Env) -> Interval:
        """Result interval of an unrecognized call (default: TOP)."""
        return TOP

    def attribute_interval(self, node: ast.Attribute, env: Env) -> Interval:
        """Interval of an attribute read (default: TOP)."""
        return TOP

    def handle_assign(
        self, target: ast.expr, value: Interval, stmt: ast.stmt, env: Env
    ) -> None:
        """Every single-target assignment, after evaluation."""

    # -- driving -------------------------------------------------------------

    def run(self, body: Sequence[ast.stmt], env: Env) -> Optional[Env]:
        """Execute a scope body; None means the exit is unreachable."""
        return self._exec_block(body, env)

    def _exec_block(
        self, stmts: Iterable[ast.stmt], env: Optional[Env]
    ) -> Optional[Env]:
        for stmt in stmts:
            if env is None:
                return None
            env = self._exec_stmt(stmt, env)
        return env

    # -- statements ----------------------------------------------------------

    def _exec_stmt(self, stmt: ast.stmt, env: Env) -> Optional[Env]:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, stmt, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            value = self.eval(stmt.value, env) if stmt.value is not None else TOP
            if stmt.value is not None:
                self._bind(stmt.target, value, stmt, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            current = self._read_target(stmt.target, env)
            operand = self.eval(stmt.value, env)
            result = self._binop_interval(stmt, stmt.op, current, operand)
            self._bind(stmt.target, result, stmt, env)
            return env
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                self.handle_return(stmt, value)
            return None
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
            return None
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, env)
        if isinstance(stmt, ast.While):
            return self._exec_while(stmt, env)
        if isinstance(stmt, ast.For):
            return self._exec_for(stmt, env)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, env)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, TOP, stmt, env)
            return self._exec_block(stmt.body, env)
        if isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
            return self.refine(env, stmt.test, True)
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
            return env
        if isinstance(stmt, ast.Break):
            if self._break_envs:
                self._break_envs[-1].append(env.copy())
            return None
        if isinstance(stmt, ast.Continue):
            if self._continue_envs:
                self._continue_envs[-1].append(env.copy())
            return None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env.set(stmt.name, TOP)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.set(target.id, TOP)
            return env
        if isinstance(stmt, ast.Match):
            self.eval(stmt.subject, env)
            havoc = env.copy()
            for name in _assigned_names(stmt):
                havoc.set(name, TOP)
            outs = [
                self._exec_block(case.body, havoc.copy()) for case in stmt.cases
            ]
            return _join_envs(env, *outs)
        # Import/Global/Nonlocal/Pass and anything exotic: no effect.
        return env

    def _exec_if(self, stmt: ast.If, env: Env) -> Optional[Env]:
        self.eval(stmt.test, env)
        then_env = self.refine(env.copy(), stmt.test, True)
        else_env = self.refine(env.copy(), stmt.test, False)
        out_then = self._exec_block(stmt.body, then_env)
        out_else = self._exec_block(stmt.orelse, else_env)
        return _join_envs(out_then, out_else)

    def _exec_while(self, stmt: ast.While, env: Env) -> Optional[Env]:
        self._break_envs.append([])
        self._continue_envs.append([])
        head = env.copy()
        try:
            for iteration in range(MAX_LOOP_PASSES):
                self.eval(stmt.test, head)
                body_in = self.refine(head.copy(), stmt.test, True)
                self._continue_envs[-1] = []
                body_out = self._exec_block(stmt.body, body_in)
                body_out = _join_envs(body_out, *self._continue_envs[-1])
                new_head = _join_envs(head, body_out)
                assert new_head is not None  # head is always live
                if new_head == head:
                    break
                head = head.widen(new_head) if iteration >= 2 else new_head
            exit_env = self.refine(head.copy(), stmt.test, False)
            if stmt.orelse and exit_env is not None:
                exit_env = self._exec_block(stmt.orelse, exit_env)
            return _join_envs(exit_env, *self._break_envs[-1])
        finally:
            self._break_envs.pop()
            self._continue_envs.pop()

    def _exec_for(self, stmt: ast.For, env: Env) -> Optional[Env]:
        iter_interval = self._iterable_element_interval(stmt.iter, env)
        self.eval(stmt.iter, env)
        self._break_envs.append([])
        self._continue_envs.append([])
        head = env.copy()
        try:
            for iteration in range(MAX_LOOP_PASSES):
                body_in = head.copy()
                self._bind(stmt.target, iter_interval, stmt, body_in)
                self._continue_envs[-1] = []
                body_out = self._exec_block(stmt.body, body_in)
                body_out = _join_envs(body_out, *self._continue_envs[-1])
                new_head = _join_envs(head, body_out)
                assert new_head is not None
                if new_head == head:
                    break
                head = head.widen(new_head) if iteration >= 2 else new_head
            exit_env: Optional[Env] = head
            if stmt.orelse:
                exit_env = self._exec_block(stmt.orelse, exit_env)
            return _join_envs(exit_env, *self._break_envs[-1])
        finally:
            self._break_envs.pop()
            self._continue_envs.pop()

    def _iterable_element_interval(self, node: ast.expr, env: Env) -> Interval:
        """Element interval of a ``for`` iterable: only range() is modeled."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range"
            and not node.keywords
            and 1 <= len(node.args) <= 3
        ):
            args = [self.eval(a, env) for a in node.args]
            if len(args) == 1:
                start, stop = Interval.point(0.0), args[0]
            else:
                start, stop = args[0], args[1]
            if start.is_empty or stop.is_empty:
                return TOP
            return Interval.make(start.lo, stop.hi, start.lo_open, True)
        return TOP

    def _exec_try(self, stmt: ast.Try, env: Env) -> Optional[Env]:
        havoc = env.copy()
        for name in _assigned_names(stmt):
            havoc.set(name, TOP)
        body_out = self._exec_block(stmt.body, env.copy())
        if stmt.orelse and body_out is not None:
            body_out = self._exec_block(stmt.orelse, body_out)
        handler_outs = [
            self._exec_block(handler.body, havoc.copy())
            for handler in stmt.handlers
        ]
        merged = _join_envs(body_out, *handler_outs)
        if stmt.finalbody:
            if merged is None:
                self._exec_block(stmt.finalbody, havoc.copy())
                return None
            merged = self._exec_block(stmt.finalbody, merged)
        return merged

    # -- binding -------------------------------------------------------------

    def _bind(
        self, target: ast.expr, value: Interval, stmt: ast.stmt, env: Env
    ) -> None:
        if isinstance(target, ast.Name):
            env.set(target.id, value)
            self.handle_assign(target, value, stmt, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, TOP, stmt, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, TOP, stmt, env)
        elif isinstance(target, ast.Attribute):
            self.handle_assign(target, value, stmt, env)
        # Subscript targets carry no name-level information.

    def _read_target(self, target: ast.expr, env: Env) -> Interval:
        if isinstance(target, ast.Name):
            return env.get(target.id)
        if isinstance(target, ast.Attribute):
            return self.attribute_interval(target, env)
        return TOP

    # -- expressions ---------------------------------------------------------

    def eval(self, node: Optional[ast.expr], env: Env) -> Interval:
        if node is None:
            return TOP
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Interval.point(float(node.value))
            if isinstance(node.value, (int, float)):
                return Interval.point(float(node.value))
            return TOP
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            root = node.value
            if isinstance(root, ast.Name) and root.id == "math":
                constant = _MATH_CONSTANTS.get(node.attr)
                if constant is not None:
                    return constant
            return self.attribute_interval(node, env)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.USub):
                return operand.neg()
            if isinstance(node.op, ast.UAdd):
                return operand
            if isinstance(node.op, ast.Not):
                return Interval.make(0.0, 1.0)
            return TOP
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return self._binop_interval(node, node.op, left, right, env)
        if isinstance(node, ast.BoolOp):
            values = [self.eval(v, env) for v in node.values]
            out = values[0]
            for v in values[1:]:
                out = out.join(v)
            return out
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for comparator in node.comparators:
                self.eval(comparator, env)
            return Interval.make(0.0, 1.0)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            then_env = self.refine(env.copy(), node.test, True)
            else_env = self.refine(env.copy(), node.test, False)
            branches = []
            if then_env is not None:
                branches.append(self.eval(node.body, then_env))
            if else_env is not None:
                branches.append(self.eval(node.orelse, else_env))
            if not branches:
                return EMPTY
            out = branches[0]
            for b in branches[1:]:
                out = out.join(b)
            return out
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        # Subscripts, containers, comprehensions, f-strings, lambdas...:
        # walk child expressions so nested divisions are still seen.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr) and not isinstance(node, ast.Lambda):
                self.eval(child, env)
        return TOP

    def _binop_interval(
        self,
        node: ast.AST,
        op: ast.operator,
        left: Interval,
        right: Interval,
        env: Optional[Env] = None,
    ) -> Interval:
        if isinstance(op, ast.Add):
            return left.add(right)
        if isinstance(op, ast.Sub):
            return left.sub(right)
        if isinstance(op, ast.Mult):
            return left.mul(right)
        if isinstance(op, (ast.Div, ast.FloorDiv, ast.Mod)):
            self.handle_division(node, right)
            if isinstance(op, ast.Div):
                return left.div(right)
            if isinstance(op, ast.FloorDiv):
                return left.div(right).outward_int()
            # x % y for y > 0 lies in [0, y.hi); otherwise unknown.
            if not right.is_empty and right.lo >= 0 and not right.contains_zero:
                return Interval.make(0.0, right.hi, False, True)
            return TOP
        if isinstance(op, ast.Pow):
            return self._pow_interval(left, right)
        return TOP

    def _pow_interval(self, base: Interval, exponent: Interval) -> Interval:
        if base.is_empty or exponent.is_empty:
            return EMPTY
        # b ** x for a constant b > 1: monotone-increasing exponential.
        if base.is_point and base.lo > 1:
            b = base.lo

            def expb(x: float) -> float:
                try:
                    return b**x
                except OverflowError:
                    return _INF

            return exponent.monotone(expb, TOP)
        # x ** n for a constant non-negative even integer: non-negative —
        # but only when x itself is at least partially known, so a fully
        # unknown base cannot fabricate a provable lower bound.
        if (
            base.is_known
            and exponent.is_point
            and float(exponent.lo).is_integer()
            and exponent.lo >= 0
            and int(exponent.lo) % 2 == 0
        ):
            return Interval.make(0.0, _INF, False, True)
        if base.is_known and base.lo >= 0 and exponent.lo >= 0:
            return Interval.make(0.0, _INF, False, True)
        return TOP

    def _eval_call(self, call: ast.Call, env: Env) -> Interval:
        args = [self.eval(a, env) for a in call.args if not isinstance(a, ast.Starred)]
        for a in call.args:
            if isinstance(a, ast.Starred):
                self.eval(a.value, env)
        for kw in call.keywords:
            self.eval(kw.value, env)
        self.handle_call(call, env)
        func = call.func
        simple = None
        if isinstance(func, ast.Name):
            simple = func.id
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "math":
                simple = func.attr
                if simple in _MONOTONE_MATH and len(args) == 1:
                    fn, domain = _MONOTONE_MATH[simple]
                    return args[0].monotone(fn, domain)
                if simple == "fabs" and len(args) == 1:
                    return args[0].absolute()
                if simple in ("floor", "ceil", "trunc") and len(args) == 1:
                    return args[0].outward_int()
                if simple == "pow" and len(args) == 2:
                    return self._pow_interval(args[0], args[1])
                return self.call_interval(call, env)
        if simple in ("min", "max") and len(args) >= 2 and not call.keywords:
            out = args[0]
            for other in args[1:]:
                out = _interval_min(out, other) if simple == "min" else _interval_max(
                    out, other
                )
            return out
        if simple == "abs" and len(args) == 1:
            return args[0].absolute()
        if simple == "float" and len(args) == 1:
            return args[0]
        if simple in ("int", "round") and args:
            return args[0].outward_int()
        if simple == "len":
            # len() >= 0 is true but useless here: the emptiness guards
            # that protect divisions by len(xs) are container-truthiness
            # tests this numeric analysis cannot see, so a known lower
            # bound of 0 only produces false I001 findings.
            return TOP
        return self.call_interval(call, env)

    # -- branch refinement ---------------------------------------------------

    def refine(
        self, env: Optional[Env], test: ast.expr, assume: bool
    ) -> Optional[Env]:
        """Assume ``test`` evaluates to ``assume``; None if contradictory."""
        if env is None:
            return None
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self.refine(env, test.operand, not assume)
        if isinstance(test, ast.BoolOp):
            conjunctive = isinstance(test.op, ast.And) == assume
            if conjunctive:
                # and/True, or/False: every refinement applies.
                for value in test.values:
                    env = self.refine(env, value, assume)
                    if env is None:
                        return None
                return env
            # and/False, or/True: one alternative holds — join them.
            branches = [
                self.refine(env.copy(), value, assume) for value in test.values
            ]
            return _join_envs(*branches)
        if isinstance(test, ast.Compare):
            return self._refine_compare(env, test, assume)
        if isinstance(test, ast.Name):
            interval = env.get(test.id)
            if interval.is_top:
                return env  # could be None/str/...; numeric truthiness unsafe
            refined = (
                interval.assume_ne(Interval.point(0.0))
                if assume
                else interval.meet(Interval.point(0.0))
            )
            if refined.is_empty:
                return None
            env.set(test.id, refined)
            return env
        if isinstance(test, ast.Constant):
            truthy = bool(test.value)
            return env if truthy == assume else None
        return env

    def _refine_compare(
        self, env: Env, test: ast.Compare, assume: bool
    ) -> Optional[Env]:
        operands = [test.left, *test.comparators]
        pairs = list(zip(test.ops, zip(operands, operands[1:])))
        if not assume and len(pairs) > 1:
            # Negating a chain is a disjunction; stay conservative.
            return env
        out: Optional[Env] = env
        for op, (lhs, rhs) in pairs:
            if out is None:
                return None
            out = self._refine_pair(out, op, lhs, rhs, assume)
        return out

    _FLIPPED = {
        ast.Lt: ast.Gt,
        ast.LtE: ast.GtE,
        ast.Gt: ast.Lt,
        ast.GtE: ast.LtE,
        ast.Eq: ast.Eq,
        ast.NotEq: ast.NotEq,
    }
    _NEGATED = {
        ast.Lt: ast.GtE,
        ast.LtE: ast.Gt,
        ast.Gt: ast.LtE,
        ast.GtE: ast.Lt,
        ast.Eq: ast.NotEq,
        ast.NotEq: ast.Eq,
    }

    def _refine_pair(
        self,
        env: Env,
        op: ast.cmpop,
        lhs: ast.expr,
        rhs: ast.expr,
        assume: bool,
    ) -> Optional[Env]:
        kind = type(op)
        if kind not in self._FLIPPED:
            return env
        if not assume:
            kind = self._NEGATED[kind]
        env2 = self._refine_one_side(env, kind, lhs, rhs)
        if env2 is None:
            return None
        return self._refine_one_side(env2, self._FLIPPED[kind], rhs, lhs)

    def _refine_one_side(
        self, env: Env, kind: type, name_side: ast.expr, bound_side: ast.expr
    ) -> Optional[Env]:
        if not isinstance(name_side, ast.Name):
            return env
        bound = self.eval(bound_side, env)
        if bound.is_empty:
            return None
        current = env.get(name_side.id)
        if kind is ast.Lt:
            refined = current.assume_lt(bound)
        elif kind is ast.LtE:
            refined = current.assume_le(bound)
        elif kind is ast.Gt:
            refined = current.assume_gt(bound)
        elif kind is ast.GtE:
            refined = current.assume_ge(bound)
        elif kind is ast.Eq:
            refined = current.meet(bound)
        elif kind is ast.NotEq:
            refined = current.assume_ne(bound)
        else:
            return env
        if refined.is_empty:
            return None
        env.set(name_side.id, refined)
        return env


def _interval_min(a: Interval, b: Interval) -> Interval:
    if a.is_empty or b.is_empty:
        return EMPTY
    if a.lo < b.lo:
        lo, lo_open = a.lo, a.lo_open
    elif b.lo < a.lo:
        lo, lo_open = b.lo, b.lo_open
    else:
        lo, lo_open = a.lo, a.lo_open and b.lo_open
    if a.hi < b.hi:
        hi, hi_open = a.hi, a.hi_open
    elif b.hi < a.hi:
        hi, hi_open = b.hi, b.hi_open
    else:
        hi, hi_open = a.hi, a.hi_open or b.hi_open
    return Interval.make(lo, hi, lo_open, hi_open)


def _interval_max(a: Interval, b: Interval) -> Interval:
    return _interval_min(a.neg(), b.neg()).neg()
