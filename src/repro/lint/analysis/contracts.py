"""Range-contract checking: the bridge from annotations to I-rule events.

This module layers :mod:`repro.lint.analysis.intervals` (the abstract
interpreter) onto the whole-program symbol tables: it reads the
``Annotated`` contract aliases of :mod:`repro.contracts` off function
signatures (by name, through each module's import table — exactly how
the unit checker resolves :mod:`repro.units` aliases), seeds parameter
intervals from the declared ranges, interprets every function body in
the scoped packages, and emits one :class:`IntervalEvent` per finding:

* ``div``  (I001) — a division whose divisor interval is *known* (has a
  finite lower bound) and still contains zero;
* ``range`` (I002) — a value whose inferred interval is provably
  disjoint from the contract of the parameter/return it flows into;
* ``time`` (I003) — a provably negative delay/time reaching the
  simulator scheduling APIs (``schedule``/``call_in``/``call_at``/
  ``at``/``Timer.schedule``);
* ``drift`` (I004) — a function contracted to return some range whose
  body clamps or computes values with a finite bound outside it.

False-positive discipline mirrors the unit checker: unknown intervals
(TOP) never fire anything, definite violations require provable
disjointness, and the ``div`` criterion demands a known lower bound so
half-refined comparisons cannot manufacture noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.contracts import ALIAS_RANGES, Range
from repro.lint.analysis.intervals import (
    Env,
    Interval,
    IntervalInterpreter,
    TOP,
)
from repro.lint.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleTable,
    Program,
)
from repro.lint.astutil import dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.engine import SourceFile

__all__ = ["IntervalEvent", "analyze_contracts", "interval_of"]

#: Scheduling APIs whose first argument is a (relative or absolute)
#: simulation time that must never be negative.  ``at`` is ambiguous as
#: a bare name, so it only counts on a receiver that looks like the
#: simulator (``sim.at`` / ``self.sim.at``).
_TIME_METHODS = {"schedule", "call_in", "call_at"}
_TIME_KEYWORDS = {"delay", "time", "when"}


@dataclass(frozen=True)
class IntervalEvent:
    """One interval-analysis finding, before rule-code assignment."""

    kind: str  # div | range | time | drift
    path: str
    node: ast.AST
    message: str


def interval_of(rng: Range) -> Interval:
    """The abstract interval a :class:`repro.contracts.Range` denotes."""
    return Interval.make(rng.lo, rng.hi, rng.lo_open, rng.hi_open)


def _admits(declared: Range, value: Interval) -> bool:
    """True when every value in ``value`` provably satisfies ``declared``.

    Checked with :meth:`Range.contains` rather than interval inclusion
    because a closed infinite endpoint admits ``inf`` itself (TCP
    equations legitimately return ``math.inf`` as loss goes to zero),
    which Interval normalization cannot express.
    """
    return declared.contains(value.lo) and declared.contains(value.hi)


@dataclass
class ContractSignature:
    """Declared ranges of one function's parameters and return value."""

    info: FunctionInfo
    param_names: list[str]
    param_ranges: dict[str, Optional[Range]]
    return_range: Optional[Range]
    has_vararg: bool


class ContractWorld:
    """Whole-program contract anchors: per-function declared ranges."""

    def __init__(self, program: Program):
        self.program = program
        self.signatures: dict[int, ContractSignature] = {}  # id(FunctionInfo)
        for table in program.modules.values():
            for info in table.all_functions():
                self._index_function(info)

    def annotation_range(
        self, module: ModuleTable, annotation: Optional[ast.expr]
    ) -> Optional[Range]:
        """The :class:`Range` an annotation declares, if any.

        Contract aliases are honored only when the name resolves to
        :mod:`repro.contracts` through the module's import table (or is
        used inside ``repro.contracts`` itself) — a user-defined
        ``Probability`` in some other module stays uninterpreted.
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.Subscript):
            head = dotted_name(annotation.value)
            if head is not None and head.split(".")[-1] in ("Optional", "Annotated"):
                inner = annotation.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self.annotation_range(module, inner)
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            left = self.annotation_range(module, annotation.left)
            return left if left is not None else self.annotation_range(
                module, annotation.right
            )
        name = dotted_name(annotation)
        if name is None:
            return None
        leaf = name.split(".")[-1]
        if leaf not in ALIAS_RANGES:
            return None
        head = name.split(".")[0]
        target = module.imports.get(head)
        if target is None:
            return ALIAS_RANGES[leaf] if module.dotted == "repro.contracts" else None
        full = target + ("." + ".".join(name.split(".")[1:]) if "." in name else "")
        if full.startswith("repro.contracts"):
            return ALIAS_RANGES[leaf]
        return None

    def _index_function(self, info: FunctionInfo) -> None:
        args = info.node.args
        positional = list(args.posonlyargs) + list(args.args)
        ranges: dict[str, Optional[Range]] = {}
        for arg in positional + list(args.kwonlyargs):
            ranges[arg.arg] = self.annotation_range(info.module, arg.annotation)
        self.signatures[id(info)] = ContractSignature(
            info=info,
            param_names=[a.arg for a in positional],
            param_ranges=ranges,
            return_range=self.annotation_range(info.module, info.node.returns),
            has_vararg=args.vararg is not None,
        )

    def signature_of(self, info: FunctionInfo) -> Optional[ContractSignature]:
        return self.signatures.get(id(info))


class _FunctionAnalyzer(IntervalInterpreter):
    """Interprets one scope and emits contract events."""

    def __init__(
        self,
        world: ContractWorld,
        src: "SourceFile",
        module: ModuleTable,
        events: list[IntervalEvent],
        seen: set[tuple[int, str]],
        cls: Optional[ClassInfo] = None,
        signature: Optional[ContractSignature] = None,
    ):
        super().__init__()
        self.world = world
        self.src = src
        self.module = module
        self.events = events
        self._seen = seen
        self.cls = cls
        self.signature = signature

    # -- event plumbing ------------------------------------------------------

    def _emit(self, kind: str, node: ast.AST, message: str) -> None:
        key = (id(node), kind)
        if key in self._seen:
            return
        self._seen.add(key)
        self.events.append(IntervalEvent(kind, self.src.path, node, message))

    @staticmethod
    def _describe(node: ast.AST) -> str:
        try:
            text = ast.unparse(node)  # type: ignore[arg-type]
        except Exception:
            return "<expr>"
        return text if len(text) <= 40 else text[:37] + "..."

    # -- interpreter hooks ---------------------------------------------------

    def handle_division(self, node: ast.AST, divisor: Interval) -> None:
        if divisor.is_empty or not divisor.contains_zero:
            return
        # Only speak when the lower bound is *known*: an unconstrained
        # or half-refined divisor (TOP, (-inf, c]) stays silent, so
        # unannotated code can never produce noise.
        if divisor.lo == float("-inf"):
            return
        divisor_expr: Optional[ast.AST] = None
        if isinstance(node, ast.BinOp):
            divisor_expr = node.right
        elif isinstance(node, ast.AugAssign):
            divisor_expr = node.value
        label = self._describe(divisor_expr) if divisor_expr is not None else "<expr>"
        self._emit(
            "div",
            node,
            f"divides by {label!r} whose interval {divisor} includes 0 "
            "with no dominating guard (raise, clamp, or test the divisor "
            "before dividing)",
        )

    def handle_return(self, stmt: ast.Return, value: Interval) -> None:
        if self.signature is None or self.signature.return_range is None:
            return
        declared = self.signature.return_range
        contract = interval_of(declared)
        qualname = self.signature.info.qualname
        if value.is_empty or _admits(declared, value):
            return
        if value.disjoint(contract):
            self._emit(
                "range",
                stmt,
                f"returns a value in {value} from {qualname}(), which is "
                f"contracted to return {declared}",
            )
            return
        lo_escapes = value.lo > float("-inf") and not contract.contains(value.lo) and (
            value.lo < contract.lo or not value.lo_open
        )
        hi_escapes = value.hi < float("inf") and not contract.contains(value.hi) and (
            value.hi > contract.hi or not value.hi_open
        )
        if lo_escapes or hi_escapes:
            self._emit(
                "drift",
                stmt,
                f"{qualname}() is contracted to return {declared} but this "
                f"return admits values in {value}: the body's clamps/"
                "assignments drift outside the declared range",
            )

    def handle_call(self, call: ast.Call, env: Env) -> None:
        resolved = self._resolve_call(call)
        self._check_contracted_args(call, env, resolved)
        self._check_time_argument(call, env, resolved)

    def call_interval(self, call: ast.Call, env: Env) -> Interval:
        resolved = self._resolve_call(call)
        if isinstance(resolved, FunctionInfo):
            sig = self.world.signature_of(resolved)
            if sig is not None and sig.return_range is not None:
                return interval_of(sig.return_range)
        return TOP

    def handle_assign(
        self, target: ast.expr, value: Interval, stmt: ast.stmt, env: Env
    ) -> None:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(target, ast.Name):
            return
        declared = self.world.annotation_range(self.module, stmt.annotation)
        if declared is None:
            return
        contract = interval_of(declared)
        if _admits(declared, value):
            env.set(target.id, value)
            return
        if not value.is_empty and value.disjoint(contract):
            self._emit(
                "range",
                stmt,
                f"assigns a value in {value} to {target.id!r}, which is "
                f"contracted to {declared}",
            )
            return
        # The declaration is an extra assumption: narrow the local.
        env.set(target.id, value.meet(contract))

    # -- call resolution -----------------------------------------------------

    def _resolve_call(self, call: ast.Call) -> Optional[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.world.program.resolve(self.module, func.id)
            if isinstance(resolved, FunctionInfo):
                return resolved
            if isinstance(resolved, ClassInfo):
                return self.world.program.find_method(resolved, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                if self.cls is not None:
                    return self.world.program.find_method(self.cls, func.attr)
                return None
            name = dotted_name(func)
            if name is not None:
                resolved = self.world.program.resolve(self.module, name)
                if isinstance(resolved, FunctionInfo):
                    return resolved
                if isinstance(resolved, ClassInfo):
                    return self.world.program.find_method(resolved, "__init__")
        return None

    def _check_contracted_args(
        self, call: ast.Call, env: Env, resolved: Optional[FunctionInfo]
    ) -> None:
        if resolved is None:
            return
        sig = self.world.signature_of(resolved)
        if sig is None:
            return
        skip_self = resolved.cls is not None and not isinstance(call.func, ast.Name)
        if resolved.node.name == "__init__":
            skip_self = True
        params = sig.param_names[1:] if skip_self and sig.param_names else sig.param_names
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or position >= len(params):
                break
            self._check_arg(sig, params[position], arg, env)
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in sig.param_ranges:
                self._check_arg(sig, kw.arg, kw.value, env)

    def _check_arg(
        self, sig: ContractSignature, param: str, arg: ast.expr, env: Env
    ) -> None:
        declared = sig.param_ranges.get(param)
        if declared is None:
            return
        actual = self.eval(arg, env)
        if actual.is_empty or actual.is_top or _admits(declared, actual):
            return
        if actual.disjoint(interval_of(declared)):
            self._emit(
                "range",
                arg,
                f"passes a value in {actual} where parameter {param!r} of "
                f"{sig.info.qualname}() is contracted to {declared}",
            )

    def _check_time_argument(
        self, call: ast.Call, env: Env, resolved: Optional[FunctionInfo]
    ) -> None:
        api = self._time_api_name(call, resolved)
        if api is None:
            return
        delay: Optional[ast.expr] = None
        if call.args and not isinstance(call.args[0], ast.Starred):
            delay = call.args[0]
        else:
            for kw in call.keywords:
                if kw.arg in _TIME_KEYWORDS:
                    delay = kw.value
                    break
        if delay is None:
            return
        interval = self.eval(delay, env)
        if interval.is_empty:
            return
        provably_negative = interval.hi < 0 or (interval.hi == 0 and interval.hi_open)
        if provably_negative:
            self._emit(
                "time",
                delay,
                f"passes a provably negative time (interval {interval}) to "
                f"{api}(); the simulator rejects negative delays at runtime",
            )

    def _time_api_name(
        self, call: ast.Call, resolved: Optional[FunctionInfo]
    ) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if resolved is not None and resolved.cls is not None:
            if resolved.cls.name in ("Simulator", "Timer") and resolved.node.name in (
                *_TIME_METHODS,
                "at",
            ):
                return f"{resolved.cls.name}.{resolved.node.name}"
        if func.attr in _TIME_METHODS:
            return func.attr
        if func.attr == "at" and self._looks_like_sim(func.value):
            return "at"
        return None

    @staticmethod
    def _looks_like_sim(receiver: ast.expr) -> bool:
        if isinstance(receiver, ast.Name):
            return receiver.id in ("sim", "simulator")
        if isinstance(receiver, ast.Attribute):
            return receiver.attr in ("sim", "simulator")
        return False


def _seed_env(world: ContractWorld, info: FunctionInfo) -> Env:
    env = Env()
    sig = world.signature_of(info)
    if sig is not None:
        for name, rng in sig.param_ranges.items():
            if rng is not None:
                env.set(name, interval_of(rng))
    return env


def analyze_contracts(
    program: Program,
    files: Sequence["SourceFile"],
    scope_paths: Sequence[str],
) -> list[IntervalEvent]:
    """Run the interval/contract analysis over the in-scope files.

    Contract anchors (signatures) come from the whole program; function
    bodies are interpreted — and events reported — only for files whose
    paths sit inside ``scope_paths``.
    """
    from repro.lint.registry import in_package

    world = ContractWorld(program)
    events: list[IntervalEvent] = []
    for src in files:
        if src.tree is None or not in_package(src.path, *scope_paths):
            continue
        table = program.table(src.path)
        if table is None:
            continue
        seen: set[tuple[int, str]] = set()
        module_body = table.tree.body if isinstance(table.tree, ast.Module) else []
        _FunctionAnalyzer(world, src, table, events, seen).run(module_body, Env())
        for info in table.all_functions():
            analyzer = _FunctionAnalyzer(
                world,
                src,
                table,
                events,
                seen,
                cls=info.cls,
                signature=world.signature_of(info),
            )
            analyzer.run(info.node.body, _seed_env(world, info))
    events.sort(
        key=lambda e: (
            e.path,
            getattr(e.node, "lineno", 0),
            getattr(e.node, "col_offset", 0),
        )
    )
    return events
