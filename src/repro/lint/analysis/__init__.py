"""Whole-program analysis layer behind simlint's U- and F-rule families.

PR 3's rules are single-pass AST pattern matchers: they look at one node
at a time and need no idea what a name refers to.  The units-of-measure
rules (U001-U004) and the cache-purity rules (F001-F002) cannot work
that way — "this expression is in bits/s" and "this scenario runner
reaches file I/O three calls down" are *whole-program* facts.  This
package supplies the shared machinery:

* :mod:`repro.lint.analysis.symbols` — per-module symbol tables (imports,
  functions, classes, module-level bindings) plus cross-module name
  resolution over the set of files being linted;
* :mod:`repro.lint.analysis.dataflow` — a lightweight intraprocedural
  forward walker over assignments, calls and returns, in source order;
* :mod:`repro.lint.analysis.unitcheck` — unit inference and mismatch
  detection over the :class:`repro.units.Unit` algebra;
* :mod:`repro.lint.analysis.purity` — interprocedural reachability from
  cache-relevant entry points (``@scenario`` runners, ``jobs()``,
  ``reduce()``) to impure operations.

Analyses are built once per lint run and shared between rules through
the engine's :class:`repro.lint.engine.LintContext`.
"""

from repro.lint.analysis.dataflow import DataflowWalker, iter_scope_statements
from repro.lint.analysis.purity import PurityAnalysis, analyze_purity
from repro.lint.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleTable,
    Program,
    build_program,
)
from repro.lint.analysis.unitcheck import UnitEvent, analyze_units

__all__ = [
    "ClassInfo",
    "DataflowWalker",
    "FunctionInfo",
    "ModuleTable",
    "Program",
    "PurityAnalysis",
    "UnitEvent",
    "analyze_purity",
    "analyze_units",
    "build_program",
    "iter_scope_statements",
]
