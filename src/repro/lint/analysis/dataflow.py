"""A lightweight intraprocedural dataflow walker.

The analyses need to see one function body the way the interpreter does:
statements in source order, assignments binding names, calls and returns
as the interesting events — without descending into nested ``def``/
``class`` scopes (those are separate analysis subjects).  The walker is
deliberately flow-*insensitive* about joins: an ``if``/``else`` pair is
walked in source order and a rebinding simply overwrites, which is the
standard lightweight compromise (same one D003's set inference makes).
It trades a sliver of precision for never diverging and never needing a
fixpoint loop.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Union

__all__ = ["DataflowWalker", "iter_scope_statements"]

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def iter_scope_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Yield the statements of one scope in source order.

    Descends into control-flow bodies (``if``/``for``/``while``/``with``/
    ``try``/``match``) but not into nested function or class definitions
    — the nested ``def`` statement itself is yielded (so a walker can
    note the binding) without its body.
    """
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field_name, None)
            if inner:
                yield from iter_scope_statements(inner)
        for handler in getattr(stmt, "handlers", ()):
            yield from iter_scope_statements(handler.body)
        for case in getattr(stmt, "cases", ()):
            yield from iter_scope_statements(case.body)


class DataflowWalker:
    """Forward walk over one scope, dispatching the events analyses need.

    Subclass and override any of the ``on_*`` hooks:

    * :meth:`on_assign` — ``x = expr`` / ``x: T = expr`` (one call per
      target; tuple targets are unpacked into per-name events with a
      ``None`` value, since element-wise inference is out of scope);
    * :meth:`on_aug_assign` — ``x += expr``;
    * :meth:`on_return` — ``return expr``;
    * :meth:`on_call` — every call expression in the scope;
    * :meth:`on_statement` — every statement, before specific dispatch.

    ``walk`` visits statements in source order via
    :func:`iter_scope_statements`; expression-level events (calls) are
    found by walking each statement's expressions, again skipping nested
    ``def``/``class`` bodies.
    """

    def walk(self, scope: ScopeNode) -> None:
        for stmt in iter_scope_statements(list(scope.body)):
            self.on_statement(stmt)
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._dispatch_assign(target, stmt.value, stmt)
            elif isinstance(stmt, ast.AnnAssign):
                self._dispatch_assign(stmt.target, stmt.value, stmt)
            elif isinstance(stmt, ast.AugAssign):
                self.on_aug_assign(stmt.target, stmt.op, stmt.value, stmt)
            elif isinstance(stmt, ast.Return):
                self.on_return(stmt.value, stmt)
            for call in self._calls_in(stmt):
                self.on_call(call)

    def _dispatch_assign(
        self, target: ast.expr, value: Optional[ast.expr], stmt: ast.stmt
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._dispatch_assign(element, None, stmt)
        else:
            self.on_assign(target, value, stmt)

    def _calls_in(self, stmt: ast.stmt) -> Iterator[ast.Call]:
        """Call expressions directly inside one statement.

        Nested statements are visited by :func:`iter_scope_statements`
        already, so only this statement's *expression* children are
        scanned here — stopping at nested scopes and at nested
        statements (which get their own visit).
        """
        stack: list[ast.AST] = [
            child
            for child in ast.iter_child_nodes(stmt)
            if not isinstance(child, ast.stmt)
        ]
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(
                child
                for child in ast.iter_child_nodes(node)
                if not isinstance(child, ast.stmt)
            )

    # -- hooks ---------------------------------------------------------------

    def on_statement(self, stmt: ast.stmt) -> None:
        """Called for every statement in the scope, in source order."""

    def on_assign(
        self, target: ast.expr, value: Optional[ast.expr], stmt: ast.stmt
    ) -> None:
        """Called per assignment target (Name/Attribute/Subscript)."""

    def on_aug_assign(
        self, target: ast.expr, op: ast.operator, value: ast.expr, stmt: ast.stmt
    ) -> None:
        """Called for augmented assignments (``+=`` and friends)."""

    def on_return(self, value: Optional[ast.expr], stmt: ast.stmt) -> None:
        """Called for return statements."""

    def on_call(self, call: ast.Call) -> None:
        """Called for every call expression in the scope."""
