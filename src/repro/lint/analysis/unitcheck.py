"""Units-of-measure inference and mismatch detection.

The checker pushes :class:`repro.units.Unit` vectors through expressions
using two anchor sources:

* ``Annotated`` aliases from :mod:`repro.units` on parameters, returns,
  attributes and dataclass fields;
* the repository's name-suffix convention (``_s``, ``_bps``, ``_bytes``,
  ``_pkts``, ...) on any parameter, attribute, variable or function name.

Inference is intraprocedural (one scope at a time, via the dataflow
walker) but the *anchors* are whole-program: a call's argument units are
checked against the callee's declared parameter units wherever the
callee resolves inside the linted file set, and an attribute like
``cfg.rtt_s`` carries its unit into any module that touches it.

Unit algebra follows :class:`repro.units.Unit`; the one special case is
the literal ``8`` / ``8.0``, which in a product or quotient against a
bit- or byte-carrying operand is read as the conversion factor
``bit/byte`` (so ``bytes * 8`` is bits, ``bits / 8`` is bytes and
``8.0 / bandwidth_bps`` is seconds-per-byte).  Any other product mixing
``bit`` and ``byte`` is reported.

Four event kinds come out, one per U-rule:

* ``arith`` (U001) — incompatible units added, subtracted, compared,
  assigned or returned;
* ``mix`` (U002) — bit/byte mixing without the factor-8 conversion;
* ``arg`` (U003) — argument unit conflicts with the parameter's;
* ``suffix`` (U004) — a name's suffix conflicts with its annotation.

Unknown units propagate silently: the checker only speaks when *both*
sides of an operation are known, so partial annotation coverage can
never manufacture a false mismatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.lint.analysis.dataflow import DataflowWalker
from repro.lint.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleTable,
    Program,
)
from repro.lint.astutil import dotted_name
from repro.units import BITS_PER_BYTE, SUFFIX_UNITS, Unit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.engine import SourceFile

__all__ = ["UnitEvent", "analyze_units"]

#: Alias names exported by :mod:`repro.units`, resolved by final component.
_ALIAS_UNITS = {
    "Seconds": Unit.of(s=1),
    "Bits": Unit.of(bit=1),
    "Bytes": Unit.of(byte=1),
    "Packets": Unit.of(pkt=1),
    "Ratio": Unit.of(),
    "BitsPerSecond": Unit.of(bit=1, s=-1),
    "BytesPerSecond": Unit.of(byte=1, s=-1),
    "PacketsPerSecond": Unit.of(pkt=1, s=-1),
    "PerSecond": Unit.of(s=-1),
    "SecondsPerByte": Unit.of(s=1, byte=-1),
}

#: Contract aliases from :mod:`repro.contracts` carry a Unit too (they
#: compose Unit + Range metadata), so a ``PositiveSeconds`` parameter
#: anchors the unit inference exactly like a ``Seconds`` one.
from repro.contracts import ALIAS_UNITS as _CONTRACT_ALIAS_UNITS  # noqa: E402

#: Module prefixes an alias may resolve to, per alias table.
_ALIAS_SOURCES: "tuple[tuple[dict[str, Unit], str], ...]" = (
    (_ALIAS_UNITS, "repro.units"),
    (_CONTRACT_ALIAS_UNITS, "repro.contracts"),
)

#: Conversion helpers in :mod:`repro.units`: call -> result unit.
_CONVERSION_CALLS = {
    "bytes_to_bits": Unit.of(bit=1),
    "bits_to_bytes": Unit.of(byte=1),
    "bps_to_bytes_per_s": Unit.of(byte=1, s=-1),
    "bytes_per_s_to_bps": Unit.of(bit=1, s=-1),
}

#: Builtins through which a unit passes unchanged.
_PASSTHROUGH_CALLS = {"abs", "float", "int", "round", "min", "max"}

#: Longest suffixes first, so ``_per_s`` wins over ``_s``.
_SUFFIXES = sorted(SUFFIX_UNITS, key=len, reverse=True)

#: Method names that collide with builtin container methods; attribute
#: calls on *untyped* receivers never resolve through these (a bare
#: ``some_list.append(x)`` must not borrow TimeSeries.append's units).
_AMBIGUOUS_METHOD_NAMES = {
    "append", "add", "extend", "insert", "pop", "popleft", "update", "get",
    "items", "keys", "values", "clear", "remove", "sort", "index", "count",
    "copy", "join", "split", "open", "read", "write", "load", "send",
    "record", "sample", "increment", "start", "stop", "run", "build",
}


@dataclass(frozen=True)
class UnitEvent:
    """One unit inconsistency, before rule-code assignment."""

    kind: str  # arith | mix | arg | suffix
    path: str
    node: ast.AST
    message: str


def suffix_unit(name: Optional[str]) -> Optional[Unit]:
    """The unit a name's suffix declares, if any."""
    if not name:
        return None
    for suffix in _SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return SUFFIX_UNITS[suffix]
    return None


@dataclass(frozen=True)
class Literal:
    """A bare numeric constant: a transparent scalar (maybe the 8)."""

    value: float

    @property
    def is_eight(self) -> bool:
        return self.value == 8


#: Inference results are Unit, Literal, or None (unknown).
Inferred = "Unit | Literal | None"


@dataclass
class Signature:
    """Declared units of one function's parameters and return value."""

    info: FunctionInfo
    param_names: list[str]
    param_units: dict[str, Optional[Unit]]
    return_unit: Optional[Unit]
    has_vararg: bool


class UnitWorld:
    """Whole-program unit anchors: signatures and attribute units."""

    def __init__(self, program: Program):
        self.program = program
        self.signatures: dict[int, Signature] = {}  # id(FunctionInfo)
        self.class_attrs: dict[int, dict[str, Optional[Unit]]] = {}  # id(ClassInfo)
        #: attribute name -> unit, when every declaration in the program
        #: agrees; conflicting names are mapped to None and never used.
        self.attr_units: dict[str, Optional[Unit]] = {}
        #: function/method name -> return unit, when unambiguous.
        self.return_units: dict[str, Optional[Unit]] = {}
        for table in program.modules.values():
            for info in table.all_functions():
                self._index_function(info)
            for cls in table.classes.values():
                self._index_class_attrs(cls)
        self._merge_global_indexes()

    # -- construction --------------------------------------------------------

    def annotation_unit(
        self, module: ModuleTable, annotation: Optional[ast.expr]
    ) -> Optional[Unit]:
        """The :class:`Unit` an annotation expression declares, if any."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Subscript):
            # Optional[Seconds] / Sequence[Seconds] style wrappers: look
            # through one level when the head is a typing construct.
            head = dotted_name(annotation.value)
            if head is not None and head.split(".")[-1] in ("Optional", "Annotated"):
                inner = annotation.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self.annotation_unit(module, inner)
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            left = self.annotation_unit(module, annotation.left)
            return left if left is not None else self.annotation_unit(
                module, annotation.right
            )
        name = dotted_name(annotation)
        if name is None:
            return None
        leaf = name.split(".")[-1]
        head = name.split(".")[0]
        target = module.imports.get(head)
        for aliases, source in _ALIAS_SOURCES:
            if leaf not in aliases:
                continue
            # Only honor the alias when it actually resolves to its
            # defining module (or is used inside that module itself).
            if target is None:
                return aliases[leaf] if module.dotted == source else None
            full = target + (
                "." + ".".join(name.split(".")[1:]) if "." in name else ""
            )
            if full.startswith(source):
                return aliases[leaf]
            return None
        return None

    def declared_unit(
        self, module: ModuleTable, name: Optional[str], annotation: Optional[ast.expr]
    ) -> Optional[Unit]:
        """Annotation unit if present, else the name-suffix unit."""
        unit = self.annotation_unit(module, annotation)
        if unit is not None:
            return unit
        return suffix_unit(name)

    def _index_function(self, info: FunctionInfo) -> None:
        args = info.node.args
        params = list(args.posonlyargs) + list(args.args)
        names: list[str] = []
        units: dict[str, Optional[Unit]] = {}
        for arg in params + list(args.kwonlyargs):
            unit = self.declared_unit(info.module, arg.arg, arg.annotation)
            units[arg.arg] = unit
        names = [a.arg for a in params]
        return_unit = self.declared_unit(
            info.module, info.node.name, info.node.returns
        )
        self.signatures[id(info)] = Signature(
            info=info,
            param_names=names,
            param_units=units,
            return_unit=return_unit,
            has_vararg=args.vararg is not None,
        )

    def _index_class_attrs(self, cls: ClassInfo) -> None:
        attrs: dict[str, Optional[Unit]] = {}

        def record(name: str, unit: Optional[Unit]) -> None:
            if unit is None:
                return
            if name in attrs and attrs[name] is not None and attrs[name] != unit:
                attrs[name] = None  # conflicting declarations: unusable
            else:
                attrs.setdefault(name, unit)

        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                record(
                    stmt.target.id,
                    self.declared_unit(cls.module, stmt.target.id, stmt.annotation),
                )
        for method in cls.methods.values():
            sig = self.signatures.get(id(method))
            for node in ast.walk(method.node):
                target: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, annotation, value = node.target, node.annotation, node.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    unit = self.declared_unit(cls.module, target.attr, annotation)
                    if unit is None and isinstance(value, ast.Name) and sig:
                        unit = sig.param_units.get(value.id)
                    record(target.attr, unit)
        self.class_attrs[id(cls)] = attrs

    def _merge_global_indexes(self) -> None:
        for attrs in self.class_attrs.values():
            for name, unit in attrs.items():
                if unit is None:
                    continue
                if name in self.attr_units and self.attr_units[name] != unit:
                    self.attr_units[name] = None
                else:
                    self.attr_units.setdefault(name, unit)
        for sig in self.signatures.values():
            name = sig.info.node.name
            if sig.return_unit is None:
                continue
            if name in self.return_units and self.return_units[name] != sig.return_unit:
                self.return_units[name] = None
            else:
                self.return_units.setdefault(name, sig.return_unit)

    # -- queries -------------------------------------------------------------

    def class_attr_unit(self, cls: ClassInfo, attr: str) -> Optional[Unit]:
        for candidate in self.program.mro(cls):
            attrs = self.class_attrs.get(id(candidate), {})
            if attr in attrs:
                return attrs[attr]
        return None

    def signature_of(self, info: FunctionInfo) -> Optional[Signature]:
        return self.signatures.get(id(info))


@dataclass
class _Scope:
    """One scope being checked: its env and enclosing class, if any."""

    module: ModuleTable
    units: dict[str, Optional[Unit]] = field(default_factory=dict)
    types: dict[str, ClassInfo] = field(default_factory=dict)
    cls: Optional[ClassInfo] = None
    return_unit: Optional[Unit] = None
    return_label: str = ""


class _ScopeChecker(DataflowWalker):
    """Checks one scope (module body or one function) for unit events."""

    def __init__(
        self,
        world: UnitWorld,
        src: "SourceFile",
        scope: _Scope,
        events: list[UnitEvent],
        seen: set[tuple[int, str]],
    ):
        self.world = world
        self.src = src
        self.scope = scope
        self.events = events
        self._seen = seen
        self._memo: dict[int, "Unit | Literal | None"] = {}

    # -- event plumbing ------------------------------------------------------

    def _emit(self, kind: str, node: ast.AST, message: str) -> None:
        key = (id(node), kind)
        if key in self._seen:
            return
        self._seen.add(key)
        self.events.append(UnitEvent(kind, self.src.path, node, message))

    # -- name/attribute anchors ----------------------------------------------

    def name_unit(self, name: str) -> Optional[Unit]:
        unit = self.scope.units.get(name)
        if unit is not None:
            return unit
        return suffix_unit(name)

    def attribute_unit(self, node: ast.Attribute) -> Optional[Unit]:
        unit = suffix_unit(node.attr)
        if unit is not None:
            return unit
        receiver_cls = self._receiver_class(node.value)
        if receiver_cls is not None:
            return self.world.class_attr_unit(receiver_cls, node.attr)
        return self.world.attr_units.get(node.attr)

    def _receiver_class(self, receiver: ast.expr) -> Optional[ClassInfo]:
        if isinstance(receiver, ast.Name):
            return self.scope.types.get(receiver.id)
        return None

    # -- inference -----------------------------------------------------------

    def infer(self, node: Optional[ast.expr]) -> "Unit | Literal | None":
        if node is None:
            return None
        key = id(node)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = None  # cycle/duplicate guard while computing
        result = self._infer(node)
        self._memo[key] = result
        return result

    def _infer(self, node: ast.expr) -> "Unit | Literal | None":
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return Literal(float(node.value))
        if isinstance(node, ast.Name):
            return self.name_unit(node.id)
        if isinstance(node, ast.Attribute):
            return self.attribute_unit(node)
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            for sub in [node.left, *node.comparators]:
                self.infer(sub)
            return None
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            if isinstance(body, Unit) and isinstance(orelse, Unit):
                return body if body.compatible(orelse) else None
            if isinstance(body, Unit):
                return body
            if isinstance(orelse, Unit):
                return orelse
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.BoolOp):
            for sub in node.values:
                self.infer(sub)
            return None
        # Anything else (subscripts, comprehensions, f-strings...) is
        # unknown; walk children so nested operations are still checked.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr) and not isinstance(node, ast.Lambda):
                self.infer(child)
        return None

    def _infer_binop(self, node: ast.BinOp) -> "Unit | Literal | None":
        left = self.infer(node.left)
        right = self.infer(node.right)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if isinstance(left, Unit) and isinstance(right, Unit):
                if not left.compatible(right):
                    self._emit(
                        "arith",
                        node,
                        f"{'adds' if isinstance(op, ast.Add) else 'subtracts'} "
                        f"incompatible units: {left} and {right}"
                        + self._conversion_hint(left, right),
                    )
                    return None
                return left
            if isinstance(left, Unit) and isinstance(right, Literal):
                return left
            if isinstance(right, Unit) and isinstance(left, Literal):
                return right
            if isinstance(left, Literal) and isinstance(right, Literal):
                return None
            return None
        if isinstance(op, (ast.Mult, ast.Div, ast.FloorDiv)):
            return self._infer_product(node, op, left, right)
        if isinstance(op, ast.Mod):
            return left if isinstance(left, Unit) else None
        return None

    def _infer_product(
        self,
        node: ast.BinOp,
        op: ast.operator,
        left: "Unit | Literal | None",
        right: "Unit | Literal | None",
    ) -> "Unit | Literal | None":
        dividing = isinstance(op, (ast.Div, ast.FloorDiv))
        # The factor-8 conversion: a literal 8 against a bit/byte-carrying
        # operand is the unit bit/byte, oriented so the product cancels.
        if isinstance(left, Literal) and isinstance(right, Unit):
            lit_unit = self._eight_unit(left, right)
            if lit_unit is not None:
                left = lit_unit
            else:
                return right.inverse() if dividing else right
        elif isinstance(right, Unit) and left is None:
            return None
        if isinstance(right, Literal) and isinstance(left, Unit):
            lit_unit = self._eight_unit(right, left)
            if lit_unit is not None:
                right = lit_unit
            else:
                return left
        if isinstance(left, Unit) and isinstance(right, Unit):
            result = left.div(right) if dividing else left.mul(right)
            if result.mixes_bits_and_bytes:
                self._emit(
                    "mix",
                    node,
                    f"{'divides' if dividing else 'multiplies'} {left} "
                    f"{'by' if dividing else 'and'} {right} leaving "
                    f"{result}: bits and bytes mixed without the "
                    "factor-8 conversion (see repro.units.CONVERSIONS)",
                )
                return None
            return result
        return None

    def _eight_unit(self, literal: Literal, other: Unit) -> Optional[Unit]:
        """``bit/byte`` (or its inverse) when the 8 cancels; else None."""
        if not literal.is_eight:
            return None
        if other.exponent("bit") == 0 and other.exponent("byte") == 0:
            return None
        return BITS_PER_BYTE

    def _conversion_hint(self, a: Unit, b: Unit) -> str:
        bitty = {Unit.of(bit=1), Unit.of(byte=1)}
        if {a, b} == bitty:
            return " (convert with repro.units.bytes_to_bits / bits_to_bytes)"
        return ""

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        comparable = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
        for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
            if not isinstance(op, comparable):
                continue
            left, right = self.infer(lhs), self.infer(rhs)
            if (
                isinstance(left, Unit)
                and isinstance(right, Unit)
                and not left.compatible(right)
            ):
                self._emit(
                    "arith",
                    node,
                    f"compares incompatible units: {left} vs {right}"
                    + self._conversion_hint(left, right),
                )

    # -- call checking (U003) ------------------------------------------------

    def _infer_call(self, call: ast.Call) -> "Unit | Literal | None":
        for arg in call.args:
            self.infer(arg)
        for kw in call.keywords:
            self.infer(kw.value)
        name = dotted_name(call.func)
        if name in _PASSTHROUGH_CALLS and call.args:
            units = [
                u for u in (self.infer(a) for a in call.args) if isinstance(u, Unit)
            ]
            if units and all(units[0].compatible(u) for u in units[1:]):
                return units[0]
            return None
        resolved = self._resolve_call(call)
        if isinstance(resolved, Unit):  # conversion helper
            return resolved
        if isinstance(resolved, ClassInfo):
            return None
        if isinstance(resolved, FunctionInfo):
            sig = self.world.signature_of(resolved)
            return sig.return_unit if sig else None
        # Unresolved: fall back to the callee name's own suffix, then to
        # the unambiguous global return-unit index.
        if isinstance(call.func, ast.Attribute):
            unit = suffix_unit(call.func.attr)
            if unit is not None:
                return unit
            if call.func.attr not in _AMBIGUOUS_METHOD_NAMES:
                return self.world.return_units.get(call.func.attr)
        elif isinstance(call.func, ast.Name):
            return suffix_unit(call.func.id)
        return None

    def _resolve_call(
        self, call: ast.Call
    ) -> "FunctionInfo | ClassInfo | Unit | None":
        """The callee, resolved as far as the symbol tables allow."""
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.world.program.resolve(self.scope.module, func.id)
            if isinstance(resolved, (FunctionInfo, ClassInfo)):
                return self._maybe_conversion(resolved) or resolved
            return None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                if self.scope.cls is not None:
                    method = self.world.program.find_method(
                        self.scope.cls, func.attr
                    )
                    if method is not None:
                        return method
                return None
            receiver_cls = self._receiver_class(receiver)
            if receiver_cls is not None:
                return self.world.program.find_method(receiver_cls, func.attr)
            name = dotted_name(func)
            if name is not None:
                resolved = self.world.program.resolve(self.scope.module, name)
                if isinstance(resolved, (FunctionInfo, ClassInfo)):
                    return self._maybe_conversion(resolved) or resolved
        return None

    def _maybe_conversion(
        self, resolved: "FunctionInfo | ClassInfo"
    ) -> Optional[Unit]:
        if (
            isinstance(resolved, FunctionInfo)
            and resolved.module.dotted == "repro.units"
        ):
            return _CONVERSION_CALLS.get(resolved.node.name)
        return None

    def on_call(self, call: ast.Call) -> None:
        resolved = self._resolve_call(call)
        sig: Optional[Signature] = None
        skip_self = False
        if isinstance(resolved, FunctionInfo):
            sig = self.world.signature_of(resolved)
            skip_self = resolved.cls is not None and not isinstance(
                call.func, ast.Name
            )
        elif isinstance(resolved, ClassInfo):
            init = self.world.program.find_method(resolved, "__init__")
            sig = self.world.signature_of(init) if init else None
            skip_self = True
        if sig is None:
            return
        params = sig.param_names[1:] if skip_self and sig.param_names else sig.param_names
        for position, arg in enumerate(call.args):
            if position >= len(params):
                break  # varargs or miscounted: stop, don't guess
            self._check_arg(sig, params[position], arg)
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in sig.param_units:
                self._check_arg(sig, kw.arg, kw.value)

    def _check_arg(self, sig: Signature, param: str, arg: ast.expr) -> None:
        declared = sig.param_units.get(param)
        if declared is None:
            return
        actual = self.infer(arg)
        if isinstance(actual, Unit) and not actual.compatible(declared):
            self._emit(
                "arg",
                arg,
                f"passes {actual} where parameter {param!r} of "
                f"{sig.info.qualname}() expects {declared}"
                + self._conversion_hint(actual, declared),
            )

    # -- statement hooks -----------------------------------------------------

    def on_statement(self, stmt: ast.stmt) -> None:
        # Infer over every expression root so checks fire in conditions,
        # calls and bare expressions, not only in assignments/returns.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.infer(child)

    def on_assign(
        self, target: ast.expr, value: Optional[ast.expr], stmt: ast.stmt
    ) -> None:
        annotation = stmt.annotation if isinstance(stmt, ast.AnnAssign) else None
        inferred = self.infer(value) if value is not None else None
        if isinstance(target, ast.Name):
            declared = self.world.declared_unit(
                self.scope.module, target.id, annotation
            )
            self._check_declaration(target, target.id, annotation)
            if (
                declared is not None
                and isinstance(inferred, Unit)
                and not inferred.compatible(declared)
            ):
                self._emit(
                    "arith",
                    target,
                    f"assigns {inferred} to {target.id!r}, which is "
                    f"declared {declared}" + self._conversion_hint(inferred, declared),
                )
            unit = declared if declared is not None else (
                inferred if isinstance(inferred, Unit) else None
            )
            self.scope.units[target.id] = unit
            cls = self._constructed_class(value)
            if cls is not None:
                self.scope.types[target.id] = cls
            elif target.id in self.scope.types:
                del self.scope.types[target.id]
        elif isinstance(target, ast.Attribute):
            declared = self.world.annotation_unit(self.scope.module, annotation)
            if declared is None:
                declared = self.attribute_unit(target)
            if (
                declared is not None
                and isinstance(inferred, Unit)
                and not inferred.compatible(declared)
            ):
                self._emit(
                    "arith",
                    target,
                    f"assigns {inferred} to attribute {target.attr!r}, "
                    f"which is declared {declared}"
                    + self._conversion_hint(inferred, declared),
                )

    def on_aug_assign(
        self, target: ast.expr, op: ast.operator, value: ast.expr, stmt: ast.stmt
    ) -> None:
        if not isinstance(op, (ast.Add, ast.Sub)):
            return
        if isinstance(target, ast.Name):
            declared = self.name_unit(target.id)
        elif isinstance(target, ast.Attribute):
            declared = self.attribute_unit(target)
        else:
            return
        inferred = self.infer(value)
        if (
            declared is not None
            and isinstance(inferred, Unit)
            and not inferred.compatible(declared)
        ):
            verb = "adds" if isinstance(op, ast.Add) else "subtracts"
            self._emit(
                "arith",
                stmt,
                f"{verb} {inferred} in place to a {declared} quantity"
                + self._conversion_hint(inferred, declared),
            )

    def on_return(self, value: Optional[ast.expr], stmt: ast.stmt) -> None:
        inferred = self.infer(value) if value is not None else None
        declared = self.scope.return_unit
        if (
            declared is not None
            and isinstance(inferred, Unit)
            and not inferred.compatible(declared)
        ):
            self._emit(
                "arith",
                stmt,
                f"returns {inferred} from {self.scope.return_label}, "
                f"which is declared to return {declared}"
                + self._conversion_hint(inferred, declared),
            )

    # -- declaration conflicts (U004) ----------------------------------------

    def _check_declaration(
        self, node: ast.AST, name: str, annotation: Optional[ast.expr]
    ) -> None:
        from_suffix = suffix_unit(name)
        from_annotation = self.world.annotation_unit(self.scope.module, annotation)
        if (
            from_suffix is not None
            and from_annotation is not None
            and not from_suffix.compatible(from_annotation)
        ):
            self._emit(
                "suffix",
                node,
                f"name {name!r} says {from_suffix} but its annotation "
                f"says {from_annotation}; rename or fix the annotation",
            )

    def _constructed_class(self, value: Optional[ast.expr]) -> Optional[ClassInfo]:
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        if name is None:
            return None
        resolved = self.world.program.resolve(self.scope.module, name)
        return resolved if isinstance(resolved, ClassInfo) else None


def _function_scope(
    world: UnitWorld,
    info: FunctionInfo,
) -> _Scope:
    scope = _Scope(module=info.module, cls=info.cls)
    sig = world.signature_of(info)
    if sig is not None:
        scope.units.update(sig.param_units)
        scope.return_unit = sig.return_unit
    scope.return_label = f"{info.qualname}()"
    if info.cls is not None:
        scope.types["self"] = info.cls
    args = info.node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        cls = _annotation_class(world, info.module, arg.annotation)
        if cls is not None:
            scope.types[arg.arg] = cls
    return scope


def _annotation_class(
    world: UnitWorld, module: ModuleTable, annotation: Optional[ast.expr]
) -> Optional[ClassInfo]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    name = dotted_name(annotation)
    if name is None:
        return None
    return world.program.resolve_class(module, name)


def _check_signature_declarations(
    world: UnitWorld,
    src: "SourceFile",
    info: FunctionInfo,
    events: list[UnitEvent],
    seen: set[tuple[int, str]],
) -> None:
    """U004 on parameter and return declarations of one function."""
    checker = _ScopeChecker(world, src, _Scope(module=info.module), events, seen)
    args = info.node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        checker._check_declaration(arg, arg.arg, arg.annotation)
    checker._check_declaration(info.node, info.node.name, info.node.returns)


def analyze_units(
    program: Program,
    files: Sequence["SourceFile"],
    scope_paths: Sequence[str],
) -> list[UnitEvent]:
    """Run unit checking over the files whose paths sit in ``scope_paths``.

    Anchors (signatures, attribute units) come from the whole program;
    events are only reported for in-scope files.
    """
    from repro.lint.registry import in_package

    world = UnitWorld(program)
    events: list[UnitEvent] = []
    for src in files:
        if src.tree is None or not in_package(src.path, *scope_paths):
            continue
        table = program.table(src.path)
        if table is None:
            continue
        seen: set[tuple[int, str]] = set()
        module_scope = _Scope(module=table)
        _ScopeChecker(world, src, module_scope, events, seen).walk(table.tree)  # type: ignore[arg-type]
        for info in table.all_functions():
            _check_signature_declarations(world, src, info, events, seen)
            scope = _function_scope(world, info)
            _ScopeChecker(world, src, scope, events, seen).walk(info.node)
        for cls in table.classes.values():
            checker = _ScopeChecker(
                world, src, _Scope(module=table, cls=cls), events, seen
            )
            for stmt in cls.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    checker._check_declaration(
                        stmt.target, stmt.target.id, stmt.annotation
                    )
    events.sort(
        key=lambda e: (e.path, getattr(e.node, "lineno", 0), getattr(e.node, "col_offset", 0))
    )
    return events
