"""Module symbol tables and cross-module name resolution.

A :class:`Program` is built from every parseable file in one lint run.
Each file gets a :class:`ModuleTable` recording what the module *binds*:
imports (with aliases), top-level functions, classes with their methods,
and module-level data names.  Resolution then answers the question the
pattern rules never had to ask — "the name ``run_cbr_restart`` used in
this module: which function is that, in which file?" — across the whole
set of linted files, without importing anything.

Paths are mapped to dotted module names structurally (the ``repro``
package root is located inside the path), so the same resolution works
for real files (``src/repro/net/link.py``) and for the virtual paths the
fixture tests lint under (``repro/net/example.py``).
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.engine import SourceFile

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleTable",
    "Program",
    "build_program",
    "module_dotted_name",
]

#: AST node types that bind a callable scope.
FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_dotted_name(path: str) -> Optional[str]:
    """``repro.net.link`` for any path containing a ``repro/`` package root.

    Returns None for paths outside an importable package (test modules,
    scripts): such modules still get a table but cannot be the target of
    a cross-module import.
    """
    parts = pathlib.PurePosixPath(pathlib.PurePath(path).as_posix()).parts
    if "repro" not in parts:
        return None
    start = parts.index("repro")
    names = list(parts[start:])
    if not names[-1].endswith(".py"):
        return None
    names[-1] = names[-1][:-3]
    if names[-1] == "__init__":
        names.pop()
    return ".".join(names)


@dataclass
class FunctionInfo:
    """One function or method definition and where it lives."""

    module: "ModuleTable"
    qualname: str  # ``f`` or ``Class.f``
    node: FunctionNode
    cls: Optional["ClassInfo"] = None

    @property
    def name(self) -> str:
        return self.node.name

    def decorator_names(self) -> list[str]:
        """Dotted names of this function's decorators (call or bare)."""
        from repro.lint.astutil import dotted_name

        names = []
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = dotted_name(target)
            if name is not None:
                names.append(name)
        return names


@dataclass
class ClassInfo:
    """One class definition: methods plus base-class names as written."""

    module: "ModuleTable"
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: list[str] = field(default_factory=list)


@dataclass
class ModuleTable:
    """Everything one module binds, for name resolution."""

    path: str
    tree: ast.AST
    dotted: Optional[str]
    #: local alias -> absolute dotted target.  ``from a.b import f as g``
    #: yields ``g -> a.b.f``; ``import a.b.c as m`` yields ``m -> a.b.c``;
    #: plain ``import a.b.c`` yields ``a -> a`` (the root binding).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Names assigned at module level (data bindings, not defs/imports).
    module_names: set[str] = field(default_factory=set)
    #: Subset of ``module_names`` bound to a mutable container literal or
    #: constructor (list/dict/set), i.e. mutable module-global state.
    mutable_globals: set[str] = field(default_factory=set)

    def all_functions(self) -> list[FunctionInfo]:
        out = list(self.functions.values())
        for cls in self.classes.values():
            out.extend(cls.methods.values())
        return out


def _is_mutable_container(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in ("list", "dict", "set", "defaultdict", "deque", "OrderedDict")
    return False


def _collect_imports(table: ModuleTable) -> None:
    """Index every import in the module, including function-level ones.

    Scenario runners import their scenario functions lazily inside the
    function body (to keep worker imports cheap), so resolution must see
    those too.  A rebound alias keeps the *first* binding: good enough
    for this codebase, where aliases are never reused for two targets.
    """
    for node in ast.walk(table.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table.imports.setdefault(alias.asname, alias.name)
                else:
                    root = alias.name.split(".")[0]
                    table.imports.setdefault(root, root)
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports are not used in this repo
            for alias in node.names:
                local = alias.asname or alias.name
                table.imports.setdefault(local, f"{node.module}.{alias.name}")


def _build_table(path: str, tree: ast.AST) -> ModuleTable:
    table = ModuleTable(path=path, tree=tree, dotted=module_dotted_name(path))
    _collect_imports(table)
    body = tree.body if isinstance(tree, ast.Module) else []
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table.functions[stmt.name] = FunctionInfo(table, stmt.name, stmt)
        elif isinstance(stmt, ast.ClassDef):
            from repro.lint.astutil import dotted_name

            cls = ClassInfo(table, stmt.name, stmt)
            cls.base_names = [
                name
                for base in stmt.bases
                if (name := dotted_name(base)) is not None
            ]
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[sub.name] = FunctionInfo(
                        table, f"{stmt.name}.{sub.name}", sub, cls=cls
                    )
            table.classes[stmt.name] = cls
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    table.module_names.add(target.id)
                    if stmt.value is not None and _is_mutable_container(stmt.value):
                        table.mutable_globals.add(target.id)
    return table


@dataclass
class Program:
    """All module tables of one lint run, with cross-module resolution."""

    modules: dict[str, ModuleTable] = field(default_factory=dict)  # by path
    by_dotted: dict[str, ModuleTable] = field(default_factory=dict)

    def table(self, path: str) -> Optional[ModuleTable]:
        return self.modules.get(path)

    def _split_dotted(
        self, dotted: str
    ) -> Optional[tuple[ModuleTable, list[str]]]:
        """Longest-prefix match of ``dotted`` against known module names."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            table = self.by_dotted.get(".".join(parts[:cut]))
            if table is not None:
                return table, parts[cut:]
        return None

    def resolve(
        self, module: ModuleTable, name: str
    ) -> "FunctionInfo | ClassInfo | ModuleTable | None":
        """Resolve a (possibly dotted) name used inside ``module``.

        Handles local functions/classes, ``from m import f`` aliases and
        ``import m`` attribute chains — for targets that are themselves
        part of the linted file set.  Anything else (stdlib, third-party,
        dynamic) resolves to None and analyses treat it conservatively.
        """
        head, _, rest = name.partition(".")
        if not rest:
            if head in module.functions:
                return module.functions[head]
            if head in module.classes:
                return module.classes[head]
        target = module.imports.get(head)
        if target is None:
            return None
        dotted = target + ("." + rest if rest else "")
        split = self._split_dotted(dotted)
        if split is None:
            return None
        table, remainder = split
        if not remainder:
            return table
        if len(remainder) == 1:
            sym = remainder[0]
            if sym in table.functions:
                return table.functions[sym]
            if sym in table.classes:
                return table.classes[sym]
            # Re-exported name (e.g. via an __init__): follow one level of
            # the target module's own imports.
            onward = table.imports.get(sym)
            if onward is not None and onward != dotted:
                inner = self._split_dotted(onward)
                if inner is not None and len(inner[1]) <= 1:
                    t2, r2 = inner
                    if not r2:
                        return t2
                    return t2.functions.get(r2[0]) or t2.classes.get(r2[0])
        if len(remainder) == 2:
            cls = table.classes.get(remainder[0])
            if cls is not None:
                return cls.methods.get(remainder[1])
        return None

    def resolve_class(
        self, module: ModuleTable, name: str
    ) -> Optional[ClassInfo]:
        resolved = self.resolve(module, name)
        return resolved if isinstance(resolved, ClassInfo) else None

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """The class plus its resolvable project bases, nearest first."""
        out: list[ClassInfo] = []
        seen: set[int] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if id(current) in seen:
                continue
            seen.add(id(current))
            out.append(current)
            for base_name in current.base_names:
                base = self.resolve_class(current.module, base_name)
                if base is not None:
                    stack.append(base)
        return out

    def find_method(
        self, cls: ClassInfo, method: str
    ) -> Optional[FunctionInfo]:
        for candidate in self.mro(cls):
            if method in candidate.methods:
                return candidate.methods[method]
        return None


def build_program(files: Sequence["SourceFile"]) -> Program:
    """Build the whole-program symbol index for one lint run."""
    program = Program()
    for src in files:
        if src.tree is None:
            continue
        table = _build_table(src.path, src.tree)
        program.modules[src.path] = table
        if table.dotted is not None:
            # First table wins on dotted-name collisions (virtual fixture
            # paths shadowing real modules never co-occur in one run).
            program.by_dotted.setdefault(table.dotted, table)
    return program
