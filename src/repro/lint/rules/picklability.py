"""P001: jobs and scenario runners must survive a process boundary.

``ParallelExecutor`` pickles every :class:`~repro.experiments.jobs.Job`
into a worker, and workers resolve the job's scenario name against the
module-level ``SCENARIOS`` registry.  Both legs break quietly if a
scenario runner is registered from inside a function (the worker's
import never executes it) or a job field smuggles a lambda / local
function (pickle refuses, or worse, resolves differently).  P001 pins
both at the AST level.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.astutil import call_name
from repro.lint.engine import SourceFile
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule

__all__ = ["PicklabilityRule"]

#: Call names that build job descriptions (fields must pickle).
_JOB_BUILDERS = {"job", "Job", "jobs.job", "jobs.Job"}


def _is_scenario_decorator(dec: ast.expr) -> bool:
    """Recognize ``@scenario("name")`` (bare or attribute-qualified)."""
    if not isinstance(dec, ast.Call):
        return False
    name = call_name(dec)
    return name is not None and name.split(".")[-1] == "scenario"


@rule
class PicklabilityRule(Rule):
    """P001: scenario runners and Job field values must be module-level."""

    code = "P001"
    summary = (
        "@scenario runners must be module-level and Job fields must not "
        "carry lambdas/closures (jobs cross process boundaries by pickle)"
    )
    scope = ("repro/experiments",)

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        tree = src.tree
        yield from self._nested_scenarios(src, tree)
        yield from self._lambda_fields(src, tree)

    # -- @scenario registration depth ----------------------------------------

    def _nested_scenarios(self, src: SourceFile, tree: ast.AST) -> Iterator[Finding]:
        module_level = {
            id(stmt)
            for stmt in getattr(tree, "body", [])
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(_is_scenario_decorator(d) for d in node.decorator_list):
                continue
            if id(node) not in module_level:
                yield self.finding(
                    src,
                    node,
                    f"@scenario runner {node.name!r} is not a module-level "
                    "function; worker processes re-import the module and "
                    "will never execute this registration",
                )

    # -- lambdas flowing into job descriptions -------------------------------

    def _lambda_fields(self, src: SourceFile, tree: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name not in _JOB_BUILDERS:
                continue
            for argument in [*node.args, *(kw.value for kw in node.keywords)]:
                for sub in ast.walk(argument):
                    if isinstance(sub, ast.Lambda):
                        yield self.finding(
                            src,
                            sub,
                            "lambda passed into a Job description; job "
                            "fields cross process boundaries by pickle and "
                            "must be module-level values (use a DropperSpec/"
                            "ProtocolSpec or a named module-level function)",
                        )
