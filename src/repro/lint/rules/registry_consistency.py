"""R001: the experiment registry, modules and scenario names must agree.

The CLI dispatches figures through ``ALL_FIGURES`` / ``EXTENSIONS`` in
``repro/experiments/__init__.py``, and workers resolve each job's
scenario name against the ``@scenario`` registry.  Drift between those
tables and the modules on disk fails at *runtime*, usually deep inside
a sweep.  R001 checks, across the whole tree at once:

* every ``figNN_*.py`` / ``ext_*.py`` module exposes the declarative
  trio ``jobs`` / ``reduce`` / ``run``;
* every ``ALL_FIGURES`` entry ``figNN`` maps to a module named
  ``figNN_...`` that exists, and every figure module on disk has an
  entry (same for ``EXTENSIONS`` and ``ext_*`` modules);
* every scenario name used by a ``job(...)`` call is registered by
  exactly one ``@scenario("name")`` decorator somewhere in the package.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Sequence

from repro.lint.astutil import call_name, str_const
from repro.lint.engine import LintContext, SourceFile
from repro.lint.findings import Finding
from repro.lint.registry import Rule, in_package, rule

__all__ = ["RegistryConsistencyRule"]

_FIGURE_MODULE = re.compile(r"^(fig\d+)_\w+$")
_EXT_MODULE = re.compile(r"^ext_(\w+)$")
_REQUIRED_API = ("jobs", "reduce", "run")


def _module_level_names(tree: ast.AST) -> set[str]:
    names: set[str] = set()
    for stmt in getattr(tree, "body", []):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


def _dict_assignment(tree: ast.AST, name: str) -> Optional[ast.Dict]:
    for stmt in getattr(tree, "body", []):
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Dict):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
    return None


@rule
class RegistryConsistencyRule(Rule):
    """R001: figure modules, registry tables and scenario names agree."""

    code = "R001"
    summary = (
        "experiment registry consistency: figure modules expose "
        "jobs/reduce/run, ALL_FIGURES/EXTENSIONS match the modules on "
        "disk, and every used scenario name is registered"
    )
    project = True

    def check_project(
        self, files: Sequence[SourceFile], context: LintContext
    ) -> Iterator[Finding]:
        package = [
            src for src in files if in_package(src.path, "repro/experiments")
        ]
        if not package:
            return
        figure_modules = {
            src.module_name: src
            for src in package
            if _FIGURE_MODULE.match(src.module_name)
            or _EXT_MODULE.match(src.module_name)
        }
        yield from self._check_module_api(figure_modules)
        init = next((s for s in package if s.module_name == "__init__"), None)
        if init is not None and init.tree is not None:
            yield from self._check_tables(init, figure_modules)
        yield from self._check_scenarios(package)

    # -- jobs / reduce / run -------------------------------------------------

    def _check_module_api(
        self, figure_modules: "dict[str, SourceFile]"
    ) -> Iterator[Finding]:
        for name in sorted(figure_modules):
            src = figure_modules[name]
            assert src.tree is not None
            defined = _module_level_names(src.tree)
            missing = [api for api in _REQUIRED_API if api not in defined]
            if missing:
                yield Finding(
                    self.code,
                    src.path,
                    1,
                    1,
                    f"experiment module {name!r} does not define "
                    f"{', '.join(missing)} at module level; every figure "
                    "module must expose the declarative jobs/reduce/run "
                    "trio",
                )

    # -- ALL_FIGURES / EXTENSIONS tables -------------------------------------

    def _check_tables(
        self, init: SourceFile, figure_modules: "dict[str, SourceFile]"
    ) -> Iterator[Finding]:
        assert init.tree is not None
        listed: set[str] = set()
        for table, pattern in (("ALL_FIGURES", _FIGURE_MODULE), ("EXTENSIONS", _EXT_MODULE)):
            mapping = _dict_assignment(init.tree, table)
            if mapping is None:
                yield Finding(
                    self.code,
                    init.path,
                    1,
                    1,
                    f"experiments/__init__.py defines no literal {table} "
                    "dict; the CLI figure table cannot be checked",
                )
                continue
            for key_node, value_node in zip(mapping.keys, mapping.values):
                key = str_const(key_node)
                module = (
                    value_node.id if isinstance(value_node, ast.Name) else None
                )
                where = key_node if key_node is not None else mapping
                if key is None or module is None:
                    yield Finding(
                        self.code,
                        init.path,
                        getattr(where, "lineno", 1),
                        getattr(where, "col_offset", 0) + 1,
                        f"{table} entries must be literal "
                        "'name': module_name pairs so the CLI table is "
                        "statically checkable",
                    )
                    continue
                listed.add(module)
                expected_prefix = key if table == "ALL_FIGURES" else f"ext_{key}"
                if not (
                    module == expected_prefix
                    or module.startswith(expected_prefix + "_")
                ):
                    yield Finding(
                        self.code,
                        init.path,
                        where.lineno,
                        where.col_offset + 1,
                        f"{table}[{key!r}] maps to module {module!r}, which "
                        f"does not match the expected {expected_prefix}* "
                        "naming; the CLI name and module name disagree",
                    )
                if figure_modules and module not in figure_modules:
                    yield Finding(
                        self.code,
                        init.path,
                        where.lineno,
                        where.col_offset + 1,
                        f"{table}[{key!r}] maps to module {module!r}, but "
                        "no such module exists in repro/experiments",
                    )
        for name in sorted(figure_modules):
            if name not in listed:
                yield Finding(
                    self.code,
                    figure_modules[name].path,
                    1,
                    1,
                    f"experiment module {name!r} is not listed in "
                    "ALL_FIGURES/EXTENSIONS; the CLI cannot run it",
                )

    # -- scenario names ------------------------------------------------------

    def _check_scenarios(self, package: Sequence[SourceFile]) -> Iterator[Finding]:
        registered: dict[str, tuple[str, int]] = {}
        duplicates: list[tuple[SourceFile, ast.expr, str]] = []
        for src in package:
            assert src.tree is not None
            for node in ast.walk(src.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                for dec in node.decorator_list:
                    if not isinstance(dec, ast.Call):
                        continue
                    name = call_name(dec)
                    if name is None or name.split(".")[-1] != "scenario":
                        continue
                    label = str_const(dec.args[0]) if dec.args else None
                    if label is None:
                        continue
                    if label in registered:
                        duplicates.append((src, dec, label))
                    else:
                        registered[label] = (src.path, dec.lineno)
        for src, dec, label in duplicates:
            first_path, first_line = registered[label]
            yield self.finding(
                src,
                dec,
                f"scenario {label!r} is registered more than once (first "
                f"at {first_path}:{first_line}); the later registration "
                "silently wins in workers",
            )
        if not registered:
            return  # registry not in view (partial lint run)
        for src in package:
            assert src.tree is not None
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                used: Optional[str] = None
                where: ast.AST = node
                if name is not None and name.split(".")[-1] == "job":
                    if len(node.args) >= 2:
                        used = str_const(node.args[1])
                elif name is not None and name.split(".")[-1] == "Job":
                    for kw in node.keywords:
                        if kw.arg == "scenario":
                            used = str_const(kw.value)
                            where = kw.value
                if used is not None and used not in registered:
                    yield self.finding(
                        src,
                        where,
                        f"job uses scenario {used!r}, which no "
                        "@scenario(...) decorator registers; available: "
                        f"{', '.join(sorted(registered))}",
                    )
