"""T001: measurement storage belongs to :mod:`repro.telemetry`.

Before the telemetry subsystem existed, every layer grew its own ad-hoc
measurement lists — ``self._drop_times = []``, ``self._cwnd_trace = []``,
``self._queue_samples = []`` — each with its own append discipline, its
own memory layout and no way to export or replay.  The refactor replaced
them with typed probes (:class:`~repro.telemetry.probes.CounterProbe`,
:class:`~repro.telemetry.probes.SeriesProbe`,
:class:`~repro.telemetry.probes.GaugeProbe`) that share array-backed
storage, uniform half-open window semantics and JSONL trace export.

This rule keeps the old pattern from creeping back: inside the
simulation packages, an instance attribute whose name says "I am a
measurement" (``*_times``, ``*_trace``, ``*_series``, ``*_samples``)
must not be initialized as a bare ``list`` — it should be a probe.
Genuine *algorithm state* that happens to be a list (e.g. the recent-ACK
window RAP prunes for its average) is fine under a name that says what
it is, or with an inline suppression carrying a reason.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.astutil import call_name
from repro.lint.engine import SourceFile
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule
from repro.lint.rules.determinism import SIM_PACKAGES

__all__ = ["BareMeasurementListRule"]

#: Attribute-name suffixes that declare "this is measurement data".
_MEASUREMENT_SUFFIXES = ("_times", "_trace", "_series", "_samples")


def _is_bare_list(value: Optional[ast.expr]) -> bool:
    """True for ``[]``, ``list()`` and list comprehensions."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return True
    if isinstance(value, ast.Call) and call_name(value) == "list":
        return True
    return False


def _measurement_attr(target: ast.expr) -> Optional[str]:
    """The attribute name when ``target`` is ``self.<measurement-name>``."""
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
        and target.attr.endswith(_MEASUREMENT_SUFFIXES)
    ):
        return target.attr
    return None


@rule
class BareMeasurementListRule(Rule):
    """T001: no bare measurement lists outside ``repro.telemetry``."""

    code = "T001"
    summary = (
        "measurement-named attributes (*_times/_trace/_series/_samples) "
        "must be telemetry probes, not bare lists"
    )
    scope = SIM_PACKAGES
    requires_reason = True

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        for node in ast.walk(src.tree):
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            if not _is_bare_list(value):
                continue
            for target in targets:
                attr = _measurement_attr(target)
                if attr is not None:
                    yield self.finding(
                        src,
                        node,
                        f"initializes measurement attribute {attr!r} as a "
                        "bare list; use a repro.telemetry probe "
                        "(CounterProbe/SeriesProbe/GaugeProbe) so it gets "
                        "array storage, window semantics and trace export "
                        "— or rename it to say what algorithm state it is",
                    )
