"""E001: no blind ``except`` in worker execution paths without a reason.

The executor's job is to *surface* worker failures (retry, degrade,
salvage) — a silent ``except Exception: pass`` anywhere on that path can
eat a crashed simulation and ship a half-empty table.  Deliberate
best-effort handlers (pool teardown, tmp-file sweeps) are fine, but each
must carry a written justification:

    except Exception:  # simlint: disable=E001(best-effort pool teardown)

A bare ``# simlint: disable=E001`` without a reason does not suppress.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.engine import SourceFile
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule

__all__ = ["BlindExceptRule"]

_BLIND = {"Exception", "BaseException"}


def _blind_name(node: Optional[ast.expr]) -> Optional[str]:
    """The blind exception name an ``except`` clause catches, if any."""
    if node is None:
        return "<bare>"
    if isinstance(node, ast.Name) and node.id in _BLIND:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _BLIND:
        return node.attr
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _blind_name(element)
            if name is not None:
                return name
    return None


@rule
class BlindExceptRule(Rule):
    """E001: blind excepts on worker execution paths need a justification."""

    code = "E001"
    summary = (
        "no bare/blind 'except' in worker execution paths without a "
        "# simlint: disable=E001(reason) justification"
    )
    scope = ("repro/experiments",)
    requires_reason = True

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            name = _blind_name(node.type)
            if name is None:
                continue
            what = (
                "a bare 'except:'"
                if name == "<bare>"
                else f"'except {name}'"
            )
            yield self.finding(
                src,
                node,
                f"{what} on a worker execution path can swallow real "
                "failures; catch specific exceptions or justify with "
                "# simlint: disable=E001(reason)",
            )
