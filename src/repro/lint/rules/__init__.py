"""Rule modules: importing this package registers every simlint rule."""

from repro.lint.rules import (  # noqa: F401  (import-for-registration)
    determinism,
    exceptions,
    hashing,
    intervals,
    picklability,
    purity,
    registry_consistency,
    telemetry,
    units,
)

__all__ = [
    "determinism",
    "exceptions",
    "hashing",
    "intervals",
    "picklability",
    "purity",
    "registry_consistency",
    "telemetry",
    "units",
]
