"""F001-F002: cache purity of the experiment execution paths.

The content-addressed result cache assumes a job's payload is a pure
function of the :class:`~repro.experiments.jobs.Job`.  Anything else a
runner consults — a file, an environment variable, mutable module state
— is invisible to the cache key, so a cached replay can silently
diverge from a fresh run.  These rules walk the call graph (see
:mod:`repro.lint.analysis.purity`) from every cache-relevant entry
point — ``@scenario``-decorated runners plus the module-level ``jobs()``
and ``reduce()`` functions of the figure modules — and flag each impure
operation that is reachable, naming the call chain that reaches it:

====  ==================================================================
F001  file I/O or process-state reads reachable from a cache-relevant
      entry point (``open()``, pathlib read/write methods,
      ``os.environ``, ``sys.argv``)
F002  module-global mutation reachable from a cache-relevant entry
      point (``global`` rebinding, stores into or mutating calls on a
      module-level container)
====  ==================================================================

Calls that do not resolve inside the linted files (stdlib, third-party,
dynamic dispatch) are assumed pure, and *reads* of module globals are
allowed (registries are immutable-by-convention configuration) — the
analysis under-reports rather than flooding real findings with noise.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.lint.engine import LintContext, SourceFile
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule

__all__ = ["CacheIoPurityRule", "CacheGlobalPurityRule"]


class _PurityRule(Rule):
    """Shared plumbing: pull this rule's event kinds from the context."""

    kinds: tuple[str, ...] = ()
    project = True
    requires_reason = True

    def check_project(
        self, files: Sequence[SourceFile], context: LintContext
    ) -> Iterator[Finding]:
        by_path = {src.path: src for src in files}
        for event in context.purity.events:
            if event.kind not in self.kinds:
                continue
            src = by_path.get(event.path)
            if src is None:
                continue
            yield self.finding(src, event.node, event.message)


@rule
class CacheIoPurityRule(_PurityRule):
    """F001: I/O and process-state reads on cached execution paths."""

    code = "F001"
    kinds = ("io", "env")
    summary = (
        "cache purity: file I/O or process-state read (open, pathlib, "
        "os.environ, sys.argv) reachable from a @scenario runner, "
        "jobs() or reduce()"
    )


@rule
class CacheGlobalPurityRule(_PurityRule):
    """F002: module-global mutation on cached execution paths."""

    code = "F002"
    kinds = ("global",)
    summary = (
        "cache purity: module-global mutation reachable from a "
        "@scenario runner, jobs() or reduce()"
    )
