"""Determinism rules: D001 (rng discipline), D002 (wall clock), D003 (sets).

The reproduction's acceptance bar is byte-identical output across runs,
processes and ``PYTHONHASHSEED`` values.  These rules pin the three ways
that bar historically breaks: ad-hoc ``random`` draws that bypass the
named :class:`~repro.sim.rng.RngRegistry` streams, wall-clock reads
inside the simulation domain, and iteration over unordered containers
whose order can leak into event scheduling or hashed payloads.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Sequence

from repro.lint.astutil import call_name
from repro.lint.engine import SourceFile
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule

__all__ = ["DirectRandomRule", "WallClockRule", "UnorderedIterationRule"]

#: Packages whose code runs *inside* a simulation (sim time only).
SIM_PACKAGES = ("repro/sim", "repro/net", "repro/cc", "repro/traffic")
#: The wider determinism domain: everything that feeds figure output,
#: plus repro/perf — benchmark *documents* must stay structurally
#: deterministic (D003 set-iteration order would leak into BENCH JSON)
#: even though their measured values are wall-clock by nature.
DOMAIN_PACKAGES = SIM_PACKAGES + (
    "repro/metrics",
    "repro/analysis",
    "repro/experiments",
    "repro/perf",
)

#: Wall-clock callables, by dotted name as written at the call site.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
}
#: Wall-clock call-name *suffixes* (``datetime.datetime.now`` et al.).
_WALL_CLOCK_SUFFIXES = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)
#: Names that, imported from :mod:`time`, smuggle a wall clock in.
_WALL_CLOCK_IMPORTS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}


@rule
class DirectRandomRule(Rule):
    """D001: all randomness must flow through ``RngRegistry.stream``.

    Direct ``random.Random(...)`` construction (most notoriously the
    silent ``random.Random(0)`` fallbacks) and module-level ``random.*``
    draws create streams no experiment seed controls: two components
    sharing seed 0 are correlated, and a module-level draw perturbs
    every later consumer of the global generator.
    """

    code = "D001"
    summary = (
        "no direct random.Random() / module-level random.* draws in "
        "simulation packages; use RngRegistry streams"
    )
    scope = SIM_PACKAGES

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is not None and name.split(".")[0] == "random" and "." in name:
                    what = (
                        "constructs a private random.Random"
                        if name == "random.Random"
                        else f"draws from the module-level generator ({name})"
                    )
                    yield self.finding(
                        src,
                        node,
                        f"{what}; route randomness through a named "
                        "RngRegistry.stream (or accept an explicit rng)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    src,
                    node,
                    "imports names directly from 'random'; simulation code "
                    "must draw from RngRegistry streams, not ambient "
                    "generators",
                )


@rule
class WallClockRule(Rule):
    """D002: simulation-domain code reads sim time, never the wall clock.

    A ``time.time()`` (or ``perf_counter`` / ``datetime.now``) inside the
    domain makes output depend on host speed and scheduling.  The
    executor and run log are allowlisted: telemetry about *how long the
    run took* is wall-clock by definition and never feeds a table.
    """

    code = "D002"
    summary = (
        "no wall-clock reads (time.time / perf_counter / datetime.now) "
        "in simulation-domain packages"
    )
    scope = DOMAIN_PACKAGES
    allowlist = (
        "repro/experiments/executor.py",
        "repro/experiments/runlog.py",
        # repro/perf *is* the wall clock: its entire job is measuring how
        # long the kernel takes (min-of-k over time.perf_counter) and
        # cProfile-ing figure runs.  Its output goes to BENCH_*.json and
        # the profile report, never into a figure table, so exempting the
        # whole package cannot let host timing leak into results.  The
        # other determinism rules (D003 in particular) still apply.
        "repro/perf",
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                if name in _WALL_CLOCK_CALLS or any(
                    name == s or name.endswith("." + s) for s in _WALL_CLOCK_SUFFIXES
                ):
                    yield self.finding(
                        src,
                        node,
                        f"reads the wall clock ({name}); simulation-domain "
                        "code must use the Simulator's sim-time clock",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = sorted(
                    a.name for a in node.names if a.name in _WALL_CLOCK_IMPORTS
                )
                if bad:
                    yield self.finding(
                        src,
                        node,
                        f"imports wall-clock function(s) {', '.join(bad)} "
                        "from 'time' into simulation-domain code",
                    )


def _is_set_expr(node: Optional[ast.expr], set_names: "set[str]") -> bool:
    """Conservatively recognize expressions that yield unordered sets."""
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        # set-algebra methods on a known-set (or literal-set) receiver
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expr(node.func.value, set_names)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _shallow_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of a scope, not descending into nested scopes."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                # statements nested under non-stmt nodes (e.g. in
                # comprehensions) don't exist; expressions are handled
                # by the iteration scan, not the binding scan.
                stack.extend(
                    grand for grand in ast.walk(child) if isinstance(grand, ast.stmt)
                )


@rule
class UnorderedIterationRule(Rule):
    """D003: don't iterate sets where order can escape.

    Set iteration order depends on ``PYTHONHASHSEED`` for strings and on
    insertion history for integers.  If such an order reaches event
    scheduling, job lists or hashed payloads, two identical runs produce
    different bytes.  Iterate ``sorted(the_set)`` instead (dicts are
    insertion-ordered and are fine).
    """

    code = "D003"
    summary = (
        "no iteration over sets (order escapes into scheduling or "
        "payloads); iterate sorted(...) instead"
    )
    scope = DOMAIN_PACKAGES

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        from repro.lint.astutil import scopes

        for scope_node, body in scopes(src.tree):
            set_names: set[str] = set()
            for stmt in _shallow_statements(body):
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                    value: Optional[ast.expr] = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                    value = stmt.value
                else:
                    continue
                if _is_set_expr(value, set_names):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            set_names.add(target.id)
            yield from self._scan_iterations(src, scope_node, body, set_names)

    def _scan_iterations(
        self,
        src: SourceFile,
        scope_node: ast.AST,
        body: Sequence[ast.stmt],
        set_names: "set[str]",
    ) -> Iterator[Finding]:
        own_scopes = {
            id(n)
            for n in ast.walk(scope_node)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and n is not scope_node
        }

        def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if id(child) in own_scopes:
                    continue
                yield child
                yield from walk_scope(child)

        for node in walk_scope(scope_node):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and call_name(node) in (
                "list",
                "tuple",
            ):
                if len(node.args) == 1:
                    iters.append(node.args[0])
            for it in iters:
                if _is_set_expr(it, set_names):
                    yield self.finding(
                        src,
                        it,
                        "iterates a set; the order is PYTHONHASHSEED- and "
                        "history-dependent and can escape into scheduling "
                        "or payloads — iterate sorted(...) instead",
                    )
