"""I001-I004: interval analysis proving the paper's numeric invariants.

The figure tables depend on quantities that must stay inside known
ranges — loss-event rates and drop probabilities in ``[0, 1]``, rates
non-negative, scheduling delays non-negative — and on divisions whose
denominators legitimately approach zero (the TCP response function
divides by ``p``; Bansal et al., SIGCOMM 2001).  These rules run the
interval abstract interpreter in
:mod:`repro.lint.analysis.intervals`, seeded from the
:mod:`repro.contracts` ``Annotated`` range aliases, over the protocol
packages:

====  ==================================================================
I001  division by a value whose interval includes 0 without a
      dominating guard (``1.0 / p`` with ``p: Probability``)
I002  a value provably outside a ``Range`` contract flows into an
      annotated parameter, return or declaration (``f(1.5)`` into a
      ``Probability``)
I003  a provably negative time reaches ``schedule``/``call_in``/
      ``call_at``/``at``/``Timer.schedule``
I004  contract drift: a signature declares a range the body's clamps
      provably escape (``return min(x, 1.5)`` under ``Probability``)
====  ==================================================================

All four are project rules sharing one analysis build through the
engine's :class:`~repro.lint.engine.LintContext`.  Unknown intervals
stay silent — only *provable* facts are reported, so unannotated code
can never produce noise.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.lint.engine import LintContext, SourceFile
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule

__all__ = [
    "INTERVAL_SCOPE",
    "DivisionByZeroIntervalRule",
    "RangeContractRule",
    "NegativeTimeRule",
    "ContractDriftRule",
]

#: The packages whose numeric invariants the I-rules police.
INTERVAL_SCOPE = (
    "repro/cc",
    "repro/net",
    "repro/sim",
    "repro/metrics",
    "repro/analysis",
)


class _IntervalRule(Rule):
    """Shared plumbing: pull this rule's event kind from the context."""

    kind = ""
    scope = INTERVAL_SCOPE
    project = True

    def check_project(
        self, files: Sequence[SourceFile], context: LintContext
    ) -> Iterator[Finding]:
        by_path = {src.path: src for src in files}
        for event in context.interval_events(INTERVAL_SCOPE):
            if event.kind != self.kind:
                continue
            src = by_path.get(event.path)
            if src is None:
                continue
            yield self.finding(src, event.node, event.message)


@rule
class DivisionByZeroIntervalRule(_IntervalRule):
    """I001: possible division by zero under a known interval."""

    code = "I001"
    kind = "div"
    summary = (
        "interval analysis: division by a value whose interval includes "
        "0 without a dominating guard"
    )
    rationale = (
        "The TCP-friendly equations divide by the loss-event rate p, "
        "which legitimately approaches 0 as loss vanishes; elapsed-time "
        "denominators start at 0 at flow startup.  An unguarded division "
        "turns those edge cases into inf/nan that flow silently into "
        "figure tables.  The interval interpreter proves a divisor "
        "nonzero when a guard dominates the division (a raise, an early "
        "return, or a clamp like max(x, 1e-9)); it reports only when the "
        "divisor's interval is known and still contains zero."
    )
    bad_example = (
        "from repro.contracts import Probability\n"
        "\n"
        "def response_rate(p: Probability) -> float:\n"
        "    return 1.22 / p        # p in [0, 1]: may divide by zero\n"
    )
    good_example = (
        "from repro.contracts import Probability\n"
        "\n"
        "def response_rate(p: Probability) -> float:\n"
        "    if p <= 0.0:\n"
        "        raise ValueError(\"loss rate must be positive\")\n"
        "    return 1.22 / p        # p now provably in (0, 1]\n"
    )


@rule
class RangeContractRule(_IntervalRule):
    """I002: a value provably escapes a Range contract."""

    code = "I002"
    kind = "range"
    summary = (
        "interval analysis: value provably outside a Range contract "
        "flows into an annotated parameter, return or declaration"
    )
    rationale = (
        "Silent parameter-range violations in congestion-control code "
        "skew exactly the fairness and smoothness metrics the figures "
        "report.  When the interpreter can prove a value's interval is "
        "disjoint from the contract it flows into (a probability of "
        "1.5, a negative rate), the call is wrong at every execution "
        "that reaches it — no runtime test needed."
    )
    bad_example = (
        "from repro.contracts import Probability\n"
        "\n"
        "def drop(p: Probability) -> bool: ...\n"
        "\n"
        "drop(1.5)                  # [1.5, 1.5] is disjoint from [0, 1]\n"
    )
    good_example = (
        "from repro.contracts import Probability\n"
        "\n"
        "def drop(p: Probability) -> bool: ...\n"
        "\n"
        "drop(min(rate, 1.0))       # provably inside [0, 1]\n"
    )


@rule
class NegativeTimeRule(_IntervalRule):
    """I003: provably negative time into the scheduling APIs."""

    code = "I003"
    kind = "time"
    summary = (
        "interval analysis: provably negative time passed to "
        "schedule/call_in/call_at/at/Timer.schedule"
    )
    rationale = (
        "The event kernel rejects negative delays with a SimulationError "
        "at runtime — mid-experiment, after minutes of simulation.  When "
        "the delay's interval is provably negative the crash is certain, "
        "so the analyzer reports it at lint time instead.  Zero delays "
        "are legal (same-timestamp scheduling) and never flagged."
    )
    bad_example = (
        "class Agent:\n"
        "    def start(self) -> None:\n"
        "        self.sim.call_in(-0.5, self.tick)   # certain crash\n"
    )
    good_example = (
        "class Agent:\n"
        "    def start(self) -> None:\n"
        "        self.sim.call_in(0.5, self.tick)\n"
    )


@rule
class ContractDriftRule(_IntervalRule):
    """I004: body clamps drift outside the declared contract."""

    code = "I004"
    kind = "drift"
    summary = (
        "interval analysis: signature declares a Range contract the "
        "body's clamps or bounds provably drift outside"
    )
    rationale = (
        "A signature that promises Probability while the body clamps to "
        "min(x, 1.5) is lying to every caller — and to the other "
        "I-rules, which seed intervals from that promise.  Drift is "
        "reported when a returned interval has a finite bound outside "
        "the declared range: the clamp admits values the contract "
        "forbids, even though some executions stay inside."
    )
    bad_example = (
        "from repro.contracts import Probability\n"
        "\n"
        "def clamp(x: float) -> Probability:\n"
        "    return min(x, 1.5)     # admits (1, 1.5]: outside [0, 1]\n"
    )
    good_example = (
        "from repro.contracts import Probability\n"
        "\n"
        "def clamp(x: float) -> Probability:\n"
        "    return min(max(x, 0.0), 1.0)\n"
    )
