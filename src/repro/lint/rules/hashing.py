"""H001: content-hash stability for job identities and persisted JSON.

Three ways a job's content hash (or a cached payload) silently stops
being stable across processes and Python invocations:

* the builtin ``hash()`` — salted per-process by ``PYTHONHASHSEED`` for
  strings, so it must never feed anything persisted or ordered;
* ``json.dumps`` without ``sort_keys=True`` — byte layout then depends
  on dict construction order, which refactors shuffle freely;
* a field added to the ``Job`` dataclass without deciding whether it is
  identity (must appear in ``describe()``) or display-only (must be
  ``field(..., compare=False)``) — the ambiguity is exactly how two
  semantically different jobs end up sharing a cache entry.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.astutil import call_name, keyword_value
from repro.lint.engine import SourceFile
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule
from repro.lint.rules.determinism import DOMAIN_PACKAGES

__all__ = ["HashStabilityRule"]


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = call_name(dec) if isinstance(dec, ast.Call) else None
        if name is None and isinstance(target, (ast.Name, ast.Attribute)):
            name = target.id if isinstance(target, ast.Name) else target.attr
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _compare_false(value: Optional[ast.expr]) -> bool:
    """True when a field default is ``field(..., compare=False)``."""
    if not isinstance(value, ast.Call):
        return False
    name = call_name(value)
    if name is None or name.split(".")[-1] != "field":
        return False
    kw = keyword_value(value, "compare")
    return isinstance(kw, ast.Constant) and kw.value is False


def _describe_keys(cls: ast.ClassDef) -> Optional[set[str]]:
    """String keys of the dict returned by ``describe()``, if findable."""
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "describe":
            for node in ast.walk(stmt):
                if isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Dict
                ):
                    keys: set[str] = set()
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.add(key.value)
                    return keys
    return None


@rule
class HashStabilityRule(Rule):
    """H001: keep content hashes stable across processes and versions."""

    code = "H001"
    summary = (
        "hashed/persisted payloads must be canonical: no builtin hash(), "
        "json.dumps needs sort_keys=True, Job fields are identity or "
        "explicitly display-only"
    )
    scope = DOMAIN_PACKAGES

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        assert src.tree is not None
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name == "hash" and node.args:
                    yield self.finding(
                        src,
                        node,
                        "builtin hash() is salted per-process by "
                        "PYTHONHASHSEED; use hashlib over a canonical "
                        "encoding for anything persisted or ordered",
                    )
                elif name is not None and name.endswith("json.dumps"):
                    kw = keyword_value(node, "sort_keys")
                    if not (isinstance(kw, ast.Constant) and kw.value is True):
                        yield self.finding(
                            src,
                            node,
                            "json.dumps without sort_keys=True: the byte "
                            "layout then tracks dict construction order, "
                            "which is not a stable identity",
                        )
            elif isinstance(node, ast.ClassDef) and node.name == "Job":
                yield from self._check_job_fields(src, node)

    # -- Job field / describe() consistency ----------------------------------

    def _check_job_fields(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        if not _is_dataclass_decorated(cls):
            return
        keys = _describe_keys(cls)
        if keys is None:
            return  # no canonical describe() to cross-check against
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            target = stmt.target
            if not isinstance(target, ast.Name):
                continue
            annotation = ast.dump(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            name = target.id
            display_only = _compare_false(stmt.value)
            if display_only and name in keys:
                yield self.finding(
                    src,
                    stmt,
                    f"display-only Job field {name!r} (compare=False) "
                    "leaks into the hashed describe() payload",
                )
            elif not display_only and name not in keys:
                yield self.finding(
                    src,
                    stmt,
                    f"Job field {name!r} neither feeds describe() nor is "
                    "marked display-only (compare=False); decide whether "
                    "it is identity or display and make it explicit",
                )
