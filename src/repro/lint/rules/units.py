"""U001-U004: units-of-measure consistency.

The quantity packages (``net``, ``cc``, ``metrics``, ``telemetry``) mix
seconds, bits, bytes, packets and ratios in nearly every expression; a
silent bits/bytes or time/rate confusion produces plausible-looking but
wrong figure tables.  These rules run the whole-program unit inference
in :mod:`repro.lint.analysis.unitcheck` — seeded from the
:mod:`repro.units` ``Annotated`` aliases and the ``_s``/``_bps``/
``_bytes``/``_pkts`` suffix convention — over those packages:

====  ==================================================================
U001  incompatible units added, subtracted, compared, assigned or
      returned (``rtt_s + packet_bytes``)
U002  bits and bytes mixed in one product without the factor-8
      conversion (``payload_bytes / bandwidth_bps``)
U003  call argument whose unit conflicts with the parameter's declared
      unit (``link(delay_s=size_bytes)``)
U004  a name's unit suffix contradicts its annotation
      (``rtt_s: Bytes``)
====  ==================================================================

All four are project rules sharing one analysis build through the
engine's :class:`~repro.lint.engine.LintContext`.  Inference only
reports when *both* sides of an operation have known units, so
unannotated code stays silent rather than noisy.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.lint.engine import LintContext, SourceFile
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rule

__all__ = [
    "UnitArithmeticRule",
    "UnitArgumentRule",
    "UnitBitsBytesRule",
    "UnitSuffixRule",
]

#: The packages whose quantities the U-rules police.
UNIT_SCOPE = (
    "repro/net",
    "repro/cc",
    "repro/metrics",
    "repro/telemetry",
)


class _UnitRule(Rule):
    """Shared plumbing: pull this rule's event kind from the context."""

    kind = ""
    scope = UNIT_SCOPE
    project = True

    def check_project(
        self, files: Sequence[SourceFile], context: LintContext
    ) -> Iterator[Finding]:
        by_path = {src.path: src for src in files}
        for event in context.unit_events(UNIT_SCOPE):
            if event.kind != self.kind:
                continue
            src = by_path.get(event.path)
            if src is None:
                continue
            yield self.finding(src, event.node, event.message)


@rule
class UnitArithmeticRule(_UnitRule):
    """U001: incompatible units combined or bound."""

    code = "U001"
    kind = "arith"
    summary = (
        "units of measure: incompatible units added, subtracted, "
        "compared, assigned or returned"
    )


@rule
class UnitBitsBytesRule(_UnitRule):
    """U002: bit/byte mixing without the factor-8 conversion."""

    code = "U002"
    kind = "mix"
    summary = (
        "units of measure: bits and bytes mixed in one product without "
        "the whitelisted factor-8 conversion"
    )


@rule
class UnitArgumentRule(_UnitRule):
    """U003: argument unit conflicts with the parameter's."""

    code = "U003"
    kind = "arg"
    summary = (
        "units of measure: call argument unit conflicts with the "
        "callee parameter's declared unit"
    )


@rule
class UnitSuffixRule(_UnitRule):
    """U004: name suffix contradicts the annotation."""

    code = "U004"
    kind = "suffix"
    summary = (
        "units of measure: a name's unit suffix (_s, _bps, _bytes, "
        "_pkts, ...) contradicts its Annotated unit alias"
    )
