"""Finding baselines: adopt the analyzer on a codebase with history.

Whole-program rule families (units, purity) are designed to be clean on
this repository, but downstream users — and future rule generations —
need a way to turn a new rule on without first fixing every historical
finding.  A baseline file records the *accepted* findings; a lint run
with ``--baseline FILE`` suppresses exactly those and fails only on new
ones.

Identity is content-based, not line-based: a finding's fingerprint is
the SHA-256 of ``rule|path|message``, so reformatting or adding imports
above a baselined finding does not resurrect it.  Identical findings in
one file (same rule, same message) are occurrence-counted — a baseline
with two entries for a fingerprint admits two findings, and a third is
reported as new.

Baselines are expected to shrink: entries whose findings no longer occur
are *stale* and reported (on stderr and in the JSON/SARIF payloads) so
they get pruned, but they never fail the run — fixing code must not
break lint.  ``--write-baseline`` regenerates the file from the current
findings, which is both how a baseline is born and how it is pruned.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.findings import Finding

__all__ = ["Baseline", "BASELINE_SCHEMA_VERSION", "fingerprint"]

#: Bump when the baseline file layout changes shape.
BASELINE_SCHEMA_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Content fingerprint of one finding (line/column excluded)."""
    text = "|".join((finding.rule, finding.path, finding.message))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class Baseline:
    """Accepted findings, occurrence-counted by content fingerprint."""

    #: fingerprint -> number of admitted occurrences.
    counts: dict[str, int] = field(default_factory=dict)
    #: fingerprint -> human description (for stale reporting).
    descriptions: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            fp = fingerprint(finding)
            baseline.counts[fp] = baseline.counts.get(fp, 0) + 1
            baseline.descriptions.setdefault(
                fp, f"{finding.path}: {finding.rule} {finding.message}"
            )
        return baseline

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "Baseline":
        """Read a baseline file; malformed content raises ``ValueError``."""
        try:
            payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path}: not valid JSON ({exc})") from None
        if not isinstance(payload, dict) or "fingerprints" not in payload:
            raise ValueError(
                f"baseline {path}: expected an object with a 'fingerprints' key"
            )
        baseline = cls()
        entries = payload["fingerprints"]
        if not isinstance(entries, dict):
            raise ValueError(f"baseline {path}: 'fingerprints' must be an object")
        for fp, entry in entries.items():
            if isinstance(entry, dict):
                count = int(entry.get("count", 1))
                description = str(entry.get("description", ""))
            else:
                count = int(entry)
                description = ""
            baseline.counts[fp] = count
            baseline.descriptions[fp] = description
        return baseline

    def dump(self, path: "str | pathlib.Path") -> None:
        payload = {
            "version": BASELINE_SCHEMA_VERSION,
            "fingerprints": {
                fp: {
                    "count": self.counts[fp],
                    "description": self.descriptions.get(fp, ""),
                }
                for fp in sorted(self.counts)
            },
        }
        pathlib.Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def apply(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], int, list[str]]:
        """Split findings into (kept, baselined_count, stale_descriptions).

        Consumes each fingerprint's allowance in finding order; findings
        beyond the allowance are kept (they are *new*).  Entries with
        unconsumed allowance are stale.
        """
        remaining = dict(self.counts)
        kept: list[Finding] = []
        baselined = 0
        for finding in findings:
            fp = fingerprint(finding)
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                baselined += 1
            else:
                kept.append(finding)
        stale = [
            self.descriptions.get(fp) or fp
            for fp in sorted(remaining)
            if remaining[fp] > 0
        ]
        return kept, baselined, stale
