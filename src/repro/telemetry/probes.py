"""Typed probe handles: the write-side API of the telemetry plane.

A probe is a small, cheap handle a component holds onto and emits into
whenever something measurable happens.  Probes work standalone (a
dropper counts its drops whether or not anyone is recording) and can be
*adopted* by a :class:`~repro.telemetry.recorder.Recorder` under a
hierarchical channel name, which is what makes them exportable.

Three kinds:

``CounterProbe``
    Timestamped cumulative event counts (arrivals, drops, timeouts).
``SeriesProbe``
    Explicit (time, value) samples (cwnd trace, cumulative bytes).
``GaugeProbe``
    A series fed by polling a ``read()`` callable at a sampling cadence
    (queue occupancy).
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Callable, Iterator, Optional, Sequence

from repro.telemetry.series import TimeSeries
from repro.units import Seconds

__all__ = ["Probe", "CounterProbe", "SeriesProbe", "GaugeProbe"]


class Probe:
    """Base class for telemetry channels; defines the export surface."""

    kind: str = ""

    def __init__(self, name: str = ""):
        self.name = name

    @property
    def times(self) -> Sequence[float]:
        raise NotImplementedError

    @property
    def values(self) -> Sequence[float]:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.times)

    def snapshot(self) -> dict:
        """Channel payload for trace export (JSON-compatible)."""
        return {
            "kind": self.kind,
            "times": list(self.times),
            "values": list(self.values),
        }


class CounterProbe(Probe):
    """Cumulative event counter with per-event timestamps.

    Stores event times and the running total in parallel ``array('d')``
    buffers, so windowed counts are two bisects — no per-event tuple
    objects, and half-open ``[start, end)`` semantics to match
    :class:`~repro.telemetry.series.Counter`.
    """

    kind = "counter"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._times: array = array("d")
        self._totals: array = array("d")
        # Hot-path caches: increment() fires once per packet event, so the
        # running total and last timestamp live in plain attributes rather
        # than being re-read from the array tails on every call.
        self._total = 0.0
        self._last_time = -math.inf
        self._integral = True  # every increment so far was a whole number

    @property
    def times(self) -> Sequence[float]:
        return self._times

    @property
    def values(self) -> Sequence[float]:
        return self._totals

    @property
    def event_times(self) -> Sequence[float]:
        return self._times

    @property
    def count(self) -> "int | float":
        total = self._total
        if self._integral:
            return int(total)
        return total

    def increment(self, time: Seconds, amount: "int | float" = 1) -> None:
        if time < self._last_time:
            raise ValueError(
                f"events must be time-ordered: {time} < {self._last_time}"
            )
        if amount.__class__ is not int:
            # Fractional (byte-weighted) increments demote count_in() to
            # exact float differences; the common amount=1 path pays one
            # class check only.
            if self._integral and not float(amount).is_integer():
                self._integral = False
        self._last_time = time
        total = self._total + amount
        self._total = total
        self._times.append(time)
        self._totals.append(total)

    def count_in(self, start: Seconds, end: Seconds) -> "int | float":
        """Total amount incremented over the half-open window [start, end).

        Returns an ``int`` only when every increment was integral; a
        counter fed fractional amounts gets the exact float difference
        (the old implementation silently floored it through ``int()``).
        """
        times = self._times
        totals = self._totals
        idx = bisect.bisect_left(times, end) - 1
        after = totals[idx] if idx >= 0 else 0.0
        idx = bisect.bisect_left(times, start) - 1
        before = totals[idx] if idx >= 0 else 0.0
        diff = after - before
        return int(diff) if self._integral else diff

    def load(self, times: Sequence[float], totals: Sequence[float]) -> None:
        """Replace contents from an exported snapshot (trace replay)."""
        self._times = array("d", times)
        self._totals = array("d", totals)
        self._total = self._totals[-1] if self._totals else 0.0
        self._last_time = self._times[-1] if self._times else -math.inf
        # Integral running totals imply integral increments (totals start
        # from zero), so replayed counters keep the int/float contract.
        self._integral = all(v.is_integer() for v in self._totals)


class SeriesProbe(Probe):
    """Explicit (time, value) samples, backed by a :class:`TimeSeries`.

    Can wrap an existing series (``SeriesProbe(series=ts)``) so legacy
    structures become recordable channels without copying.
    """

    kind = "series"

    def __init__(self, name: str = "", series: Optional[TimeSeries] = None):
        super().__init__(name)
        self.series = series if series is not None else TimeSeries(name)

    @property
    def times(self) -> Sequence[float]:
        return self.series.times

    @property
    def values(self) -> Sequence[float]:
        return self.series.values

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(self.series)

    def record(self, time: Seconds, value: float) -> None:
        self.series.append(time, value)

    def load(self, times: Sequence[float], values: Sequence[float]) -> None:
        """Replace contents from an exported snapshot (trace replay)."""
        fresh = TimeSeries(self.series.name)
        fresh.extend(times, values)
        self.series = fresh


class GaugeProbe(SeriesProbe):
    """A series fed by sampling a ``read()`` callable.

    The owner (or a :class:`PeriodicTask`) calls :meth:`sample` at the
    recording cadence; each call reads the current value and appends it.
    """

    kind = "gauge"

    def __init__(
        self, name: str = "", read: Optional[Callable[[], float]] = None
    ):
        super().__init__(name)
        self.read = read

    def sample(self, time: Seconds) -> float:
        if self.read is None:
            raise RuntimeError(f"gauge {self.name!r} has no read() callable")
        value = float(self.read())
        self.record(time, value)
        return value
