"""Typed probe handles: the write-side API of the telemetry plane.

A probe is a small, cheap handle a component holds onto and emits into
whenever something measurable happens.  Probes work standalone (a
dropper counts its drops whether or not anyone is recording) and can be
*adopted* by a :class:`~repro.telemetry.recorder.Recorder` under a
hierarchical channel name, which is what makes them exportable.

Three kinds:

``CounterProbe``
    Timestamped cumulative event counts (arrivals, drops, timeouts).
``SeriesProbe``
    Explicit (time, value) samples (cwnd trace, cumulative bytes).
``GaugeProbe``
    A series fed by polling a ``read()`` callable at a sampling cadence
    (queue occupancy).
"""

from __future__ import annotations

import bisect
from array import array
from typing import Callable, Iterator, Optional, Sequence

from repro.telemetry.series import TimeSeries

__all__ = ["Probe", "CounterProbe", "SeriesProbe", "GaugeProbe"]


class Probe:
    """Base class for telemetry channels; defines the export surface."""

    kind: str = ""

    def __init__(self, name: str = ""):
        self.name = name

    @property
    def times(self) -> Sequence[float]:
        raise NotImplementedError

    @property
    def values(self) -> Sequence[float]:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.times)

    def snapshot(self) -> dict:
        """Channel payload for trace export (JSON-compatible)."""
        return {
            "kind": self.kind,
            "times": list(self.times),
            "values": list(self.values),
        }


class CounterProbe(Probe):
    """Cumulative event counter with per-event timestamps.

    Stores event times and the running total in parallel ``array('d')``
    buffers, so windowed counts are two bisects — no per-event tuple
    objects, and half-open ``[start, end)`` semantics to match
    :class:`~repro.telemetry.series.Counter`.
    """

    kind = "counter"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._times: array = array("d")
        self._totals: array = array("d")

    @property
    def times(self) -> Sequence[float]:
        return self._times

    @property
    def values(self) -> Sequence[float]:
        return self._totals

    @property
    def event_times(self) -> Sequence[float]:
        return self._times

    @property
    def count(self) -> int:
        return int(self._totals[-1]) if self._totals else 0

    def increment(self, time: float, amount: float = 1) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"events must be time-ordered: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._totals.append((self._totals[-1] if self._totals else 0.0) + amount)

    def count_in(self, start: float, end: float) -> int:
        """Total amount incremented over the half-open window [start, end)."""

        def cumulative_before(t: float) -> float:
            idx = bisect.bisect_left(self._times, t) - 1
            return self._totals[idx] if idx >= 0 else 0.0

        return int(cumulative_before(end) - cumulative_before(start))

    def load(self, times: Sequence[float], totals: Sequence[float]) -> None:
        """Replace contents from an exported snapshot (trace replay)."""
        self._times = array("d", times)
        self._totals = array("d", totals)


class SeriesProbe(Probe):
    """Explicit (time, value) samples, backed by a :class:`TimeSeries`.

    Can wrap an existing series (``SeriesProbe(series=ts)``) so legacy
    structures become recordable channels without copying.
    """

    kind = "series"

    def __init__(self, name: str = "", series: Optional[TimeSeries] = None):
        super().__init__(name)
        self.series = series if series is not None else TimeSeries(name)

    @property
    def times(self) -> Sequence[float]:
        return self.series.times

    @property
    def values(self) -> Sequence[float]:
        return self.series.values

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(self.series)

    def record(self, time: float, value: float) -> None:
        self.series.append(time, value)

    def load(self, times: Sequence[float], values: Sequence[float]) -> None:
        """Replace contents from an exported snapshot (trace replay)."""
        fresh = TimeSeries(self.series.name)
        fresh.extend(times, values)
        self.series = fresh


class GaugeProbe(SeriesProbe):
    """A series fed by sampling a ``read()`` callable.

    The owner (or a :class:`PeriodicTask`) calls :meth:`sample` at the
    recording cadence; each call reads the current value and appends it.
    """

    kind = "gauge"

    def __init__(
        self, name: str = "", read: Optional[Callable[[], float]] = None
    ):
        super().__init__(name)
        self.read = read

    def sample(self, time: float) -> float:
        if self.read is None:
            raise RuntimeError(f"gauge {self.name!r} has no read() callable")
        value = float(self.read())
        self.record(time, value)
        return value
