"""Ambient recorder context.

Simulation components shouldn't thread a recorder argument through every
constructor; instead the experiment layer activates a recorder around
one run and components look it up at build time:

    with capture() as recorder:
        result = run_scenario(cfg)
    recorder.export(path)

``active_recorder()`` returns ``None`` outside any ``capture`` block, in
which case components simply keep their probes private (measurement
still works, nothing is exported).  The stack nests, matching nested
scenario runs in tests.  Executor workers are separate processes, so a
module-level stack is safe: within one process scenario runs are
strictly sequential.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.telemetry.recorder import Recorder

__all__ = ["capture", "active_recorder"]

_STACK: list[Recorder] = []


def active_recorder() -> Optional[Recorder]:
    """The innermost active recorder, or None when not capturing."""
    return _STACK[-1] if _STACK else None


@contextlib.contextmanager
def capture(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Activate ``recorder`` (a fresh one by default) for the block."""
    rec = recorder if recorder is not None else Recorder()
    _STACK.append(rec)
    try:
        yield rec
    finally:
        _STACK.pop()
