"""The central recorder: named channels, metadata, JSONL trace export.

A :class:`Recorder` owns a flat namespace of hierarchical channel names
(``link.bottleneck.drops``, ``flow.3.cwnd``) mapping to probes.
Components either ask the recorder for a probe (:meth:`counter`,
:meth:`series`, :meth:`gauge`) or create probes privately and hand them
over with :meth:`adopt` — adoption is how pre-existing instrumentation
(a sender's cwnd probe) becomes part of a trace without the component
knowing about recording at all.

Traces are exported as JSONL: a header line carrying schema version and
run metadata, then one line per channel.  The format is deliberately
line-oriented so traces can be grepped and streamed; see
``docs/telemetry.md``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Callable, Optional, Union

from repro.telemetry.probes import CounterProbe, GaugeProbe, Probe, SeriesProbe
from repro.units import Seconds

__all__ = ["Recorder", "TRACE_SCHEMA_VERSION"]

TRACE_SCHEMA_VERSION = 1

#: Default sampling period for gauges when the caller does not specify one.
DEFAULT_CADENCE_S = 0.1


class Recorder:
    """Registry of named telemetry channels for one simulation run."""

    def __init__(self, cadence_s: Seconds = DEFAULT_CADENCE_S):
        self.cadence_s = float(cadence_s)
        self.channels: dict[str, Probe] = {}
        self.meta: dict[str, Any] = {}

    # Channel management ------------------------------------------------------

    def adopt(self, channel: str, probe: Probe) -> Probe:
        """Register an existing probe under ``channel``.

        Idempotent for the same probe object; adopting a *different*
        probe under an existing name is an error (two components would
        silently shadow each other's measurements).
        """
        existing = self.channels.get(channel)
        if existing is not None:
            if existing is probe:
                return probe
            raise ValueError(f"channel {channel!r} already has a probe")
        self.channels[channel] = probe
        return probe

    def counter(self, channel: str) -> CounterProbe:
        """Create-or-get a counter channel."""
        probe = self.channels.get(channel)
        if probe is None:
            probe = CounterProbe(channel)
            self.channels[channel] = probe
        if not isinstance(probe, CounterProbe):
            raise TypeError(f"channel {channel!r} is {probe.kind}, not counter")
        return probe

    def series(self, channel: str) -> SeriesProbe:
        """Create-or-get a series channel."""
        probe = self.channels.get(channel)
        if probe is None:
            probe = SeriesProbe(channel)
            self.channels[channel] = probe
        if not isinstance(probe, SeriesProbe):
            raise TypeError(f"channel {channel!r} is {probe.kind}, not series")
        return probe

    def gauge(
        self, channel: str, read: Optional[Callable[[], float]] = None
    ) -> GaugeProbe:
        """Create-or-get a gauge channel, optionally binding its read()."""
        probe = self.channels.get(channel)
        if probe is None:
            probe = GaugeProbe(channel, read=read)
            self.channels[channel] = probe
        if not isinstance(probe, GaugeProbe):
            raise TypeError(f"channel {channel!r} is {probe.kind}, not gauge")
        if read is not None:
            probe.read = read
        return probe

    def annotate(self, key: str, value: Any) -> None:
        """Attach run metadata (flow groupings, link bandwidths...)."""
        self.meta[key] = value

    # Export ------------------------------------------------------------------

    def export_text(self) -> str:
        """Serialize all channels to JSONL (header line + one per channel)."""
        header = {
            "__telemetry__": TRACE_SCHEMA_VERSION,
            "meta": self.meta,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for channel, probe in self.channels.items():
            record = {"channel": channel}
            record.update(probe.snapshot())
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + "\n"

    def export(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the JSONL trace to ``path``."""
        target = pathlib.Path(path)
        target.write_text(self.export_text(), encoding="utf-8")
        return target
