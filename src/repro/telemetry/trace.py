"""Offline trace access: recompute any metric without re-simulating.

:class:`TraceReader` parses the JSONL trace a
:class:`~repro.telemetry.recorder.Recorder` exported and rebuilds the
probes, so every windowed measurement (loss rate, throughput,
stabilization time...) can be recomputed from the artifact alone.
``link(name)`` and ``flows()`` reassemble the standard channel layouts
into :class:`~repro.telemetry.measures.LinkMetrics` /
:class:`~repro.telemetry.measures.FlowMetrics`, which run the exact same
arithmetic as the live monitors — JSON round-trips IEEE doubles exactly,
so replayed numbers are bit-identical.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any, Union

from repro.telemetry.measures import FlowMetrics, LinkMetrics
from repro.telemetry.probes import CounterProbe, GaugeProbe, Probe, SeriesProbe
from repro.telemetry.series import TimeSeries

__all__ = ["TraceReader"]

_PROBE_KINDS = {
    "counter": CounterProbe,
    "series": SeriesProbe,
    "gauge": GaugeProbe,
}

_FLOW_BYTES = re.compile(r"^flow\.(\d+)\.bytes$")


class TraceReader:
    """Parsed view of one exported telemetry trace."""

    def __init__(self, meta: dict[str, Any], channels: dict[str, Probe]):
        self.meta = meta
        self.channels = channels

    # Construction ------------------------------------------------------------

    @classmethod
    def loads(cls, text: str) -> "TraceReader":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty trace")
        header = json.loads(lines[0])
        if "__telemetry__" not in header:
            raise ValueError("not a telemetry trace (missing header line)")
        meta = header.get("meta", {})
        channels: dict[str, Probe] = {}
        for line in lines[1:]:
            record = json.loads(line)
            name = record["channel"]
            kind = record["kind"]
            probe_cls = _PROBE_KINDS.get(kind)
            if probe_cls is None:
                raise ValueError(f"unknown channel kind {kind!r} for {name!r}")
            probe = probe_cls(name)
            probe.load(record["times"], record["values"])
            channels[name] = probe
        return cls(meta, channels)

    @classmethod
    def from_file(cls, path: Union[str, pathlib.Path]) -> "TraceReader":
        return cls.loads(pathlib.Path(path).read_text(encoding="utf-8"))

    # Channel access ----------------------------------------------------------

    def __contains__(self, channel: str) -> bool:
        return channel in self.channels

    def channel(self, name: str) -> Probe:
        try:
            return self.channels[name]
        except KeyError:
            raise KeyError(
                f"trace has no channel {name!r}; "
                f"available: {sorted(self.channels)}"
            ) from None

    def counter(self, name: str) -> CounterProbe:
        probe = self.channel(name)
        if not isinstance(probe, CounterProbe):
            raise TypeError(f"channel {name!r} is {probe.kind}, not counter")
        return probe

    def series(self, name: str) -> TimeSeries:
        probe = self.channel(name)
        if not isinstance(probe, SeriesProbe):
            raise TypeError(f"channel {name!r} is {probe.kind}, not series")
        return probe.series

    # Standard layouts --------------------------------------------------------

    def link(self, name: str) -> LinkMetrics:
        """Rebuild a link's metrics from its ``link.<name>.*`` channels."""
        prefix = f"link.{name}."
        if not any(key.startswith(prefix) for key in self.channels):
            raise KeyError(f"trace has no channels for link {name!r}")
        metrics = LinkMetrics(
            name, bandwidth_bps=self.meta.get(f"link.{name}.bandwidth_bps")
        )
        for attr, suffix in (
            ("arrivals", "arrivals"),
            ("drops", "drops"),
            ("marks", "marks"),
        ):
            probe = self.channels.get(prefix + suffix)
            if isinstance(probe, CounterProbe):
                setattr(metrics, attr, probe)
        departures = self.channels.get(prefix + "departed_bytes")
        if isinstance(departures, SeriesProbe):
            metrics.departures = departures
        queue_depth = self.channels.get(prefix + "queue_pkts")
        if isinstance(queue_depth, GaugeProbe):
            metrics.queue_depth = queue_depth
        return metrics

    def flows(self) -> FlowMetrics:
        """Rebuild per-flow accounting from ``flow.<id>.bytes`` channels."""
        metrics = FlowMetrics()
        for name, probe in self.channels.items():
            match = _FLOW_BYTES.match(name)
            if match and isinstance(probe, SeriesProbe):
                metrics._probes[int(match.group(1))] = probe
        return metrics
