"""Measurement views over telemetry channels: link and flow metrics.

These classes hold the *arithmetic* of the paper's measurements — loss
rate, utilization, per-flow throughput — decoupled from how the samples
got there.  Live monitors (:class:`repro.net.monitor.LinkMonitor`,
:class:`repro.net.monitor.FlowAccountant`) subclass them and fill the
probes during simulation; :class:`repro.telemetry.trace.TraceReader`
builds bare instances from a saved trace.  Because both paths run the
same code over the same floats (JSON round-trips doubles exactly), a
replayed metric is bit-identical to the live one.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.telemetry.probes import CounterProbe, GaugeProbe, SeriesProbe
from repro.telemetry.series import TimeSeries
from repro.units import BitsPerSecond, Bytes, Ratio, Seconds

__all__ = ["LinkMetrics", "FlowMetrics"]


class LinkMetrics:
    """Arrival/drop/mark/departure channels of one link, plus derived rates.

    All windowed counts use the half-open convention ``[start, end)``.
    """

    def __init__(
        self, name: str = "link", bandwidth_bps: Optional[BitsPerSecond] = None
    ):
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.arrivals = CounterProbe("arrivals")
        self.drops = CounterProbe("drops")
        self.marks = CounterProbe("marks")  # ECN CE marks (RED marking mode)
        self.departures = SeriesProbe("departed_bytes")
        self.queue_depth: Optional[GaugeProbe] = None

    # Back-compat views of the raw event timestamps ---------------------------

    @property
    def arrival_times(self) -> Sequence[float]:
        return self.arrivals.event_times

    @property
    def drop_times(self) -> Sequence[float]:
        return self.drops.event_times

    @property
    def mark_times(self) -> Sequence[float]:
        return self.marks.event_times

    # Derived measurements ----------------------------------------------------

    def arrivals_in(self, start: Seconds, end: Seconds) -> int:
        return self.arrivals.count_in(start, end)

    def drops_in(self, start: Seconds, end: Seconds) -> int:
        return self.drops.count_in(start, end)

    def marks_in(self, start: Seconds, end: Seconds) -> int:
        return self.marks.count_in(start, end)

    def mark_rate(self, start: Seconds, end: Seconds) -> Ratio:
        """Fraction of arrivals CE-marked over [start, end); NaN if idle."""
        arrivals = self.arrivals_in(start, end)
        if arrivals == 0:
            return math.nan
        return self.marks_in(start, end) / arrivals

    def loss_rate(self, start: Seconds, end: Seconds) -> Ratio:
        """Fraction of arrivals dropped over [start, end); NaN if idle."""
        arrivals = self.arrivals_in(start, end)
        if arrivals == 0:
            return math.nan
        return self.drops_in(start, end) / arrivals

    def loss_rate_series(
        self,
        window_s: Seconds,
        start: Seconds,
        end: Seconds,
        stride_s: Seconds = 0.0,
    ) -> TimeSeries:
        """Loss rate over a sliding window.

        Each sample at time t is the loss rate over [t - window_s, t).  The
        paper averages the loss rate over the previous ten RTTs; pass
        ``window_s = 10 * rtt``.  ``stride_s`` defaults to the window length
        (non-overlapping windows).  Window edges are computed by integer
        index (``start + window_s + i * stride``) so accumulated rounding
        error cannot skew the boundaries on long runs.
        """
        stride = stride_s if stride_s > 0 else window_s
        series = TimeSeries("loss_rate")
        i = 0
        while True:
            t = start + window_s + i * stride
            if t > end:
                break
            rate = self.loss_rate(t - window_s, t)
            if not math.isnan(rate):
                series.append(t, rate)
            i += 1
        return series

    def departed_bytes_in(self, start: Seconds, end: Seconds) -> Bytes:
        def cumulative(t: float) -> float:
            value = self.departures.series.last_before(t)
            return value if value is not None else 0.0

        return cumulative(end) - cumulative(start)

    def utilization(self, start: Seconds, end: Seconds) -> Ratio:
        """Fraction of the link's capacity used over [start, end)."""
        if self.bandwidth_bps is None:
            raise RuntimeError("link bandwidth unknown (monitor not attached?)")
        capacity_bytes = self.bandwidth_bps * (end - start) / 8.0
        if capacity_bytes <= 0:
            return 0.0
        return self.departed_bytes_in(start, end) / capacity_bytes


class FlowMetrics:
    """Per-flow cumulative delivered-bytes channels and derived throughput."""

    def __init__(self) -> None:
        self._probes: dict[int, SeriesProbe] = {}

    def _flow_probe(self, flow_id: int) -> SeriesProbe:
        probe = self._probes.get(flow_id)
        if probe is None:
            probe = SeriesProbe(f"flow{flow_id}_bytes")
            self._probes[flow_id] = probe
            self._on_new_flow(flow_id, probe)
        return probe

    def _on_new_flow(self, flow_id: int, probe: SeriesProbe) -> None:
        """Hook: live accountants adopt the probe into a recorder here."""

    @property
    def flows(self) -> list[int]:
        return sorted(self._probes)

    def delivered_bytes(self, flow_id: int, start: Seconds, end: Seconds) -> Bytes:
        probe = self._probes.get(flow_id)
        if probe is None:
            return 0.0
        series = probe.series

        def cumulative(t: float) -> float:
            value = series.last_before(t)
            return value if value is not None else 0.0

        return cumulative(end) - cumulative(start)

    def throughput_bps(
        self, flow_id: int, start: Seconds, end: Seconds
    ) -> BitsPerSecond:
        """Average delivered rate of one flow over [start, end), bits/s."""
        duration = end - start
        if duration <= 0:
            return 0.0
        return self.delivered_bytes(flow_id, start, end) * 8.0 / duration

    def rate_series_bps(
        self, flow_id: int, window_s: Seconds, start: Seconds, end: Seconds
    ) -> TimeSeries:
        """Delivered rate sampled over consecutive windows, bits/s.

        Window edges are computed by integer index to avoid float drift.
        """
        series = TimeSeries(f"flow{flow_id}_rate")
        i = 0
        while True:
            t = start + window_s + i * window_s
            if t > end:
                break
            series.append(t, self.throughput_bps(flow_id, t - window_s, t))
            i += 1
        return series
