"""Array-backed time-series storage and post-processing.

:class:`TimeSeries` is the storage primitive every telemetry channel is
built on.  Samples are held in two parallel ``array('d')`` buffers (one
for times, one for values) rather than a Python list of tuples: half the
pointer overhead, contiguous memory, and cheap slicing for the window
operations the paper's metrics are computed from (loss-rate
stabilization, f(k) utilization, smoothness...).

Interval conventions
--------------------
Every windowed operation in this module uses the half-open convention
``start <= t < end``.  Historically :class:`Counter.count_in` used
``start < t <= end`` while the link monitor used ``[start, end)``; the
half-open-left convention now applies uniformly so adjacent windows
tile the timeline without double-counting boundary events.
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Iterable, Iterator, Optional, Sequence

from repro.units import Seconds

__all__ = ["TimeSeries", "interval_average", "Counter"]


class TimeSeries:
    """An append-only series of (time, value) samples, sorted by time.

    Appends must be in non-decreasing time order (the simulator clock is
    monotonic, so this is free).
    """

    __slots__ = ("_times", "_values", "name")

    def __init__(self, name: str = ""):
        self.name = name
        self._times: array = array("d")
        self._values: array = array("d")

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> Sequence[float]:
        return self._times

    @property
    def values(self) -> Sequence[float]:
        return self._values

    def append(self, time: Seconds, value: float) -> None:
        times = self._times
        if times and time < times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} < {times[-1]}"
            )
        times.append(time)
        self._values.append(value)

    def extend(self, times: Iterable[float], values: Iterable[float]) -> None:
        """Bulk-append pre-ordered samples (used when loading traces).

        Ordering is validated once over the whole input, then both buffers
        grow through a single C-level ``array.extend`` — no per-sample
        Python ``append`` (with its comparison) in the loop, which is what
        used to dominate trace-replay load time.  Unordered input raises
        ``ValueError`` *before* anything is appended, so a failed extend
        leaves the series untouched.
        """
        new_times = array("d", times)
        new_values = array("d", values)
        # zip() semantics: the shorter input decides how much is appended.
        n = min(len(new_times), len(new_values))
        del new_times[n:], new_values[n:]
        if not n:
            return
        ordered = new_times.tolist()
        if self._times and ordered[0] < self._times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {ordered[0]} < {self._times[-1]}"
            )
        if ordered != sorted(ordered):
            for i in range(1, n):
                if ordered[i] < ordered[i - 1]:
                    raise ValueError(
                        "samples must be time-ordered: "
                        f"{ordered[i]} < {ordered[i - 1]}"
                    )
        self._times.extend(new_times)
        self._values.extend(new_values)

    def window(self, start: Seconds, end: Seconds) -> "TimeSeries":
        """Samples with start <= time < end, as a new series."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        out = TimeSeries(self.name)
        out._times = self._times[lo:hi]
        out._values = self._values[lo:hi]
        return out

    def mean(self) -> float:
        """Unweighted mean of sample values; NaN when empty."""
        if not self._values:
            return math.nan
        return sum(self._values) / len(self._values)

    def max(self) -> float:
        return max(self._values) if self._values else math.nan

    def last_before(self, time: Seconds) -> Optional[float]:
        """Value of the latest sample at or before ``time``."""
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return None
        return self._values[idx]

    def resample(self, period: Seconds, start: Seconds, end: Seconds) -> "TimeSeries":
        """Step-function resampling at a fixed period (sample-and-hold).

        Sample times are computed as ``start + i * period`` by integer
        index rather than by accumulating ``t += period``, so rounding
        error cannot drift the grid over long runs.
        """
        out = TimeSeries(self.name)
        i = 0
        while True:
            t = start + i * period
            if t >= end:
                break
            value = self.last_before(t)
            if value is not None:
                out.append(t, value)
            i += 1
        return out


def interval_average(
    samples: "TimeSeries | Iterable[tuple[float, float]]",
    start: Seconds,
    end: Seconds,
) -> float:
    """Average value of samples with start <= t < end; NaN when none.

    A :class:`TimeSeries` (time-sorted by construction) is windowed with
    two bisects and a C-level slice sum instead of scanning every sample;
    arbitrary iterables fall back to the linear scan.
    """
    if isinstance(samples, TimeSeries):
        times = samples._times
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_left(times, end)
        if hi <= lo:
            return math.nan
        window = samples._values[lo:hi]
        return sum(window) / len(window)
    total = 0.0
    count = 0
    for t, v in samples:
        if start <= t < end:
            total += v
            count += 1
    return total / count if count else math.nan


class Counter:
    """A cumulative event counter with timestamped checkpoints.

    Used by monitors to turn raw counts (packets forwarded, packets dropped)
    into rates over arbitrary windows.
    """

    __slots__ = ("_series", "_count", "_integral")

    def __init__(self) -> None:
        self._count = 0
        self._series = TimeSeries()
        self._integral = True  # every increment so far was a whole number

    @property
    def count(self) -> "int | float":
        return self._count

    def increment(self, time: Seconds, amount: "int | float" = 1) -> None:
        if amount.__class__ is not int:
            if self._integral and not float(amount).is_integer():
                self._integral = False
        self._count += amount
        self._series.append(time, self._count)

    def count_in(self, start: Seconds, end: Seconds) -> "int | float":
        """Total amount incremented over the half-open window [start, end).

        Returns an ``int`` only when every increment was integral;
        fractional (e.g. byte-weighted) counters get the exact float
        difference instead of a silent ``int()`` floor.
        """
        times = self._series.times
        values = self._series.values
        idx = bisect.bisect_left(times, end) - 1
        after = values[idx] if idx >= 0 else 0.0
        idx = bisect.bisect_left(times, start) - 1
        before = values[idx] if idx >= 0 else 0.0
        diff = after - before
        return int(diff) if self._integral else diff
