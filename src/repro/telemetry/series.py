"""Array-backed time-series storage and post-processing.

:class:`TimeSeries` is the storage primitive every telemetry channel is
built on.  Samples are held in two parallel ``array('d')`` buffers (one
for times, one for values) rather than a Python list of tuples: half the
pointer overhead, contiguous memory, and cheap slicing for the window
operations the paper's metrics are computed from (loss-rate
stabilization, f(k) utilization, smoothness...).

Interval conventions
--------------------
Every windowed operation in this module uses the half-open convention
``start <= t < end``.  Historically :class:`Counter.count_in` used
``start < t <= end`` while the link monitor used ``[start, end)``; the
half-open-left convention now applies uniformly so adjacent windows
tile the timeline without double-counting boundary events.
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Iterable, Iterator, Optional, Sequence

__all__ = ["TimeSeries", "interval_average", "Counter"]


class TimeSeries:
    """An append-only series of (time, value) samples, sorted by time.

    Appends must be in non-decreasing time order (the simulator clock is
    monotonic, so this is free).
    """

    __slots__ = ("_times", "_values", "name")

    def __init__(self, name: str = ""):
        self.name = name
        self._times: array = array("d")
        self._values: array = array("d")

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> Sequence[float]:
        return self._times

    @property
    def values(self) -> Sequence[float]:
        return self._values

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def extend(self, times: Iterable[float], values: Iterable[float]) -> None:
        """Bulk-append pre-ordered samples (used when loading traces)."""
        for time, value in zip(times, values):
            self.append(time, value)

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with start <= time < end, as a new series."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        out = TimeSeries(self.name)
        out._times = self._times[lo:hi]
        out._values = self._values[lo:hi]
        return out

    def mean(self) -> float:
        """Unweighted mean of sample values; NaN when empty."""
        if not self._values:
            return math.nan
        return sum(self._values) / len(self._values)

    def max(self) -> float:
        return max(self._values) if self._values else math.nan

    def last_before(self, time: float) -> Optional[float]:
        """Value of the latest sample at or before ``time``."""
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return None
        return self._values[idx]

    def resample(self, period: float, start: float, end: float) -> "TimeSeries":
        """Step-function resampling at a fixed period (sample-and-hold).

        Sample times are computed as ``start + i * period`` by integer
        index rather than by accumulating ``t += period``, so rounding
        error cannot drift the grid over long runs.
        """
        out = TimeSeries(self.name)
        i = 0
        while True:
            t = start + i * period
            if t >= end:
                break
            value = self.last_before(t)
            if value is not None:
                out.append(t, value)
            i += 1
        return out


def interval_average(
    samples: Iterable[tuple[float, float]], start: float, end: float
) -> float:
    """Average value of samples with start <= t < end; NaN when none."""
    total = 0.0
    count = 0
    for t, v in samples:
        if start <= t < end:
            total += v
            count += 1
    return total / count if count else math.nan


class Counter:
    """A cumulative event counter with timestamped checkpoints.

    Used by monitors to turn raw counts (packets forwarded, packets dropped)
    into rates over arbitrary windows.
    """

    __slots__ = ("_series", "_count")

    def __init__(self) -> None:
        self._count = 0
        self._series = TimeSeries()

    @property
    def count(self) -> int:
        return self._count

    def increment(self, time: float, amount: int = 1) -> None:
        self._count += amount
        self._series.append(time, self._count)

    def count_in(self, start: float, end: float) -> int:
        """Total amount incremented over the half-open window [start, end)."""
        times = self._series.times
        values = self._series.values

        def cumulative_before(t: float) -> int:
            idx = bisect.bisect_left(times, t) - 1
            return int(values[idx]) if idx >= 0 else 0

        return cumulative_before(end) - cumulative_before(start)
