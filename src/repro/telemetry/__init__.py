"""First-class telemetry: typed probes, a central recorder, trace replay.

Every measurement in the repo flows through this package.  Components
emit into :class:`Probe` handles (counter / gauge / series); a
:class:`Recorder` collects probes under hierarchical channel names
(``link.bottleneck.drops``, ``flow.3.cwnd``) and exports JSONL traces;
:class:`TraceReader` rebuilds the channels offline so any metric can be
recomputed without re-simulating.  See ``docs/telemetry.md``.
"""

from repro.telemetry.context import active_recorder, capture
from repro.telemetry.measures import FlowMetrics, LinkMetrics
from repro.telemetry.probes import CounterProbe, GaugeProbe, Probe, SeriesProbe
from repro.telemetry.recorder import Recorder, TRACE_SCHEMA_VERSION
from repro.telemetry.series import Counter, TimeSeries, interval_average
from repro.telemetry.trace import TraceReader

__all__ = [
    "Counter",
    "CounterProbe",
    "FlowMetrics",
    "GaugeProbe",
    "LinkMetrics",
    "Probe",
    "Recorder",
    "SeriesProbe",
    "TimeSeries",
    "TraceReader",
    "TRACE_SCHEMA_VERSION",
    "active_recorder",
    "capture",
    "interval_average",
]
