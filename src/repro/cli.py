"""Command-line interface: regenerate paper figures from the shell.

Usage::

    python -m repro list
    python -m repro run fig05                 # fast scale, print the table
    python -m repro run fig05 --scale paper   # the paper's parameters
    python -m repro run all --out results/    # everything, persisted
    python -m repro run fig04 --chart         # ASCII rendering of the shape
    python -m repro run all --parallel 4      # fan jobs out over 4 processes
    python -m repro run all --no-cache        # force fresh simulations
    python -m repro run all --cache-dir /tmp/repro-cache
    python -m repro run all --run-log run.jsonl --job-timeout 600
    python -m repro run fig04 --trace         # also record telemetry traces
    python -m repro trace fig04               # list the stored traces
    python -m repro trace fig04 --job 0       # channels of one job's trace
    python -m repro trace fig04 --replay      # recompute the table from traces
    python -m repro run all --dispatch fifo   # submission-order dispatch
    python -m repro bench                     # kernel + figure benchmarks
    python -m repro bench --quick             # CI smoke mode
    python -m repro bench --sweep             # cold-sweep throughput
    python -m repro bench --compare OLD NEW   # regression deltas by name
    python -m repro bench --compare OLD NEW --gate event_chain  # gating
    python -m repro profile fig04 --top 15    # cProfile hot-function report

``run --trace`` records every probe channel (queue arrivals/drops/marks,
per-flow delivered bytes, cwnd, sending rates...) while simulating and
stores the JSONL trace beside each cached result.  ``trace --replay``
then rebuilds the figure's table from those traces alone — no
simulation — and prints it byte-identically, which is how CI proves the
telemetry stream carries everything the figures need
(see ``docs/telemetry.md``).

Results are cached on disk (``~/.cache/repro`` by default, see
``--cache-dir``) keyed by the content hash of each job plus a
code-version salt, so a warm second run replays from the cache without
simulating anything.  Parallel runs produce byte-identical tables to
serial runs: every job carries its own seed and results are re-ordered
by job index before reduction.

Parallel runs are fault-tolerant: a crashed worker breaks only its own
slot (the job is retried on a rebuilt pool), stuck jobs can be bounded
with ``--job-timeout``, failing jobs retry up to ``--max-retries`` times,
and completed results always reach the cache before any failure
propagates.  ``--run-log PATH`` appends one JSONL provenance record per
job (content hash, attempts, worker pid, wall time, dispatch order,
predicted cost) plus a summary per figure — see ``docs/experiments.md``.

Dispatch is throughput-oriented by default: a learned cost model
(persisted beside the result cache) predicts each job's wall seconds,
the longest jobs are submitted first (``--dispatch lpt``), jobs cheaper
than a pool round-trip run inline in the coordinator, worker pools fork
from a warm preloaded fork-server template, and results travel as
packed canonical-JSON frames.  None of this can change a table — only
how fast it appears; see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.experiments import ALL_FIGURES, EXTENSIONS
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.executor import JobResult, make_executor
from repro.experiments.runner import Table
from repro.viz import line_chart

__all__ = ["main"]


def _figure_chart(name: str, table: Table) -> Optional[str]:
    """Best-effort ASCII chart for a figure's table, if it is chartable."""
    columns = table.columns
    # Tables shaped (group, x, y): one series per group.
    if len(columns) == 3:
        group_col, x_col, y_col = columns
        series: dict[str, list[tuple[float, float]]] = {}
        for group, x, y in table.rows:
            try:
                series.setdefault(str(group), []).append((float(x), float(y)))
            except (TypeError, ValueError):
                return None
        try:
            return line_chart(series, title=table.title, log_x=all(
                x > 0 for pts in series.values() for x, _ in pts
            ))
        except ValueError:
            return None
    # Tables shaped (x, y...): one series per y column.
    try:
        xs = [float(x) for x in table.column(columns[0])]
    except (TypeError, ValueError):
        return None
    series = {}
    for y_col in columns[1:]:
        pts = []
        for x, y in zip(xs, table.column(y_col)):
            try:
                pts.append((x, float(y)))
            except (TypeError, ValueError):
                return None
        series[y_col] = pts
    try:
        return line_chart(series, title=table.title)
    except ValueError:
        return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Dynamic Behavior of "
        "Slowly-Responsive Congestion Control Algorithms' (SIGCOMM 2001).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the available figures")
    run_parser = sub.add_parser("run", help="run one figure (or 'all')")
    run_parser.add_argument("figure", help="figure name (e.g. fig05) or 'all'")
    run_parser.add_argument(
        "--scale",
        choices=("fast", "paper"),
        default="fast",
        help="scenario scale (default: fast)",
    )
    run_parser.add_argument(
        "--out", type=pathlib.Path, help="directory to persist tables into"
    )
    run_parser.add_argument(
        "--chart", action="store_true", help="also render an ASCII chart"
    )
    run_parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="run jobs across N worker processes (default: serial)",
    )
    run_parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached job results (default: on; --no-cache disables)",
    )
    run_parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    run_parser.add_argument(
        "--run-log",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="append one JSONL provenance record per job (plus a summary "
        "per figure) to PATH; also honors REPRO_RUN_LOG",
    )
    run_parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout for parallel runs; a stuck worker "
        "is killed and the job retried (also honors REPRO_JOB_TIMEOUT)",
    )
    run_parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="bounded retry budget for failing jobs (default: 2; also "
        "honors REPRO_MAX_RETRIES)",
    )
    run_parser.add_argument(
        "--trace",
        action="store_true",
        help="record a telemetry trace per job, stored beside the cached "
        "result (requires the cache; inspect with 'repro trace')",
    )
    run_parser.add_argument(
        "--dispatch",
        choices=("fifo", "lpt"),
        default=None,
        help="execution order: 'lpt' submits the predicted-longest jobs "
        "first (default), 'fifo' preserves submission order; tables are "
        "byte-identical either way (also honors REPRO_DISPATCH)",
    )
    bench_parser = sub.add_parser(
        "bench", help="run the kernel benchmarks and write BENCH_*.json"
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads and fewer repeats (CI smoke mode)",
    )
    bench_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("."),
        metavar="DIR",
        help="directory for BENCH_kernel.json / BENCH_figures.json "
        "(default: current directory)",
    )
    bench_parser.add_argument(
        "-k",
        "--repeats",
        type=int,
        default=0,
        metavar="N",
        help="override the min-of-k repeat count (default: per-benchmark)",
    )
    bench_parser.add_argument(
        "--skip-figures",
        action="store_true",
        help="only the kernel micro/macro benchmarks (skip figure jobs)",
    )
    bench_parser.add_argument(
        "--sweep",
        action="store_true",
        help="measure end-to-end cold-sweep throughput (serial vs old "
        "dispatch vs the LPT scheduler) and write BENCH_sweep.json",
    )
    bench_parser.add_argument(
        "--parallel",
        type=int,
        default=4,
        metavar="N",
        help="worker count for the --sweep parallel configurations "
        "(default: 4)",
    )
    bench_parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="diff two BENCH files by benchmark name instead of measuring",
    )
    bench_parser.add_argument(
        "--gate",
        action="append",
        default=None,
        metavar="NAME",
        help="with --compare: exit non-zero if benchmark NAME regressed "
        "more than 10%% per-op (repeatable; others stay advisory)",
    )
    bench_parser.add_argument(
        "--validate",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="schema-check one BENCH file and exit",
    )
    profile_parser = sub.add_parser(
        "profile", help="cProfile a figure's jobs and print hot functions"
    )
    profile_parser.add_argument("figure", help="figure name (e.g. fig04)")
    profile_parser.add_argument(
        "--scale",
        choices=("fast", "paper"),
        default="fast",
        help="scenario scale (default: fast)",
    )
    profile_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="profile the figure's first N jobs (default: 1)",
    )
    profile_parser.add_argument(
        "--top",
        type=int,
        default=25,
        metavar="N",
        help="functions to show (default: 25)",
    )
    profile_parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
        help="pstats sort key (default: cumulative)",
    )
    trace_parser = sub.add_parser(
        "trace", help="inspect or replay stored telemetry traces"
    )
    trace_parser.add_argument("figure", help="figure name (e.g. fig04)")
    trace_parser.add_argument(
        "--scale",
        choices=("fast", "paper"),
        default="fast",
        help="scenario scale the traces were recorded at (default: fast)",
    )
    trace_parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    trace_parser.add_argument(
        "--job",
        type=int,
        default=None,
        metavar="N",
        help="show the channels of job N's trace instead of the summary",
    )
    trace_parser.add_argument(
        "--channel",
        default=None,
        metavar="NAME",
        help="with --job: dump one channel's samples as 'time value' lines",
    )
    trace_parser.add_argument(
        "--replay",
        action="store_true",
        help="recompute the figure's table from the stored traces alone "
        "(no simulation) and print it",
    )
    trace_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="with --replay: directory to persist the replayed table into",
    )
    args = parser.parse_args(argv)

    runnable = {**ALL_FIGURES, **EXTENSIONS}
    if args.command == "list":
        for name, module in runnable.items():
            doc = (module.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{name}: {summary}")
        return 0

    if args.command == "bench":
        return _bench_command(args)

    names = list(runnable) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in runnable]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(runnable)}", file=sys.stderr)
        return 2

    if args.command == "profile":
        from repro.perf.profiling import profile_figure

        print(
            profile_figure(
                args.figure,
                scale=args.scale,
                jobs=args.jobs,
                top=args.top,
                sort=args.sort,
            )
        )
        return 0

    if args.command == "trace":
        return _trace_command(args, runnable)

    if args.trace and not args.cache:
        print(
            "--trace requires the cache: trace artifacts are stored beside "
            "cached results (drop --no-cache)",
            file=sys.stderr,
        )
        return 2

    cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
    cache = ResultCache(cache_dir) if args.cache else None
    executor = make_executor(
        args.parallel,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        run_log=args.run_log,
        dispatch=args.dispatch,
        # The cost model learns job wall times across runs; its sidecar
        # lives beside the result cache (cache off -> in-memory model).
        cost_model=(
            pathlib.Path(cache_dir) / "costmodel.json" if args.cache else None
        ),
    )

    total_jobs = total_computed = total_hits = total_dedup = 0
    total_retries = total_timeouts = total_rebuilds = 0
    any_degraded = False
    try:
        for name in names:
            started = time.time()
            module = runnable[name]
            jobs = module.jobs(args.scale)
            if args.trace:
                jobs = [dataclasses.replace(jb, trace=True) for jb in jobs]
            results = executor.map(jobs, cache)
            table = module.reduce(results)
            elapsed = time.time() - started
            report = executor.last_report
            total_jobs += report.jobs
            total_computed += report.computed
            total_hits += report.cache_hits
            total_dedup += report.deduplicated
            total_retries += report.retries
            total_timeouts += report.timeouts
            total_rebuilds += report.pool_rebuilds
            any_degraded = any_degraded or report.degraded
            print(table.format())
            print(
                f"[{name} completed in {elapsed:.1f}s at scale={args.scale}: "
                f"{report.jobs} jobs, {report.computed} computed, "
                f"{report.cache_hits} cache hits, "
                f"{report.deduplicated} deduplicated{_report_extras(report)}]"
            )
            if args.chart:
                chart = _figure_chart(name, table)
                if chart:
                    print()
                    print(chart)
            if args.out:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(table.format() + "\n")
            print()
    finally:
        executor.close()  # release warm worker pools
    if len(names) > 1:
        where = "off" if cache is None else str(cache.root or "memory")
        extras = ""
        if total_retries:
            extras += f", {total_retries} retried"
        if total_timeouts:
            extras += f", {total_timeouts} timed out"
        if total_rebuilds:
            extras += f", {total_rebuilds} pool rebuilds"
        if any_degraded:
            extras += ", degraded to serial"
        print(
            f"[total: {total_jobs} jobs, {total_computed} computed, "
            f"{total_hits} cache hits, {total_dedup} deduplicated{extras}; "
            f"cache={where}, workers={executor.workers}]"
        )
    return 0


def _bench_command(args) -> int:
    """``repro bench``: measure, compare or validate BENCH documents."""
    from repro.perf import (
        BenchSchemaError,
        compare_documents,
        dump_document,
        figure_benchmarks,
        gate_failures,
        kernel_microbenchmarks,
        load_bench,
        new_document,
        packet_forwarding_benchmark,
        render_comparison,
        sweep_benchmarks,
        validate_bench,
    )

    if args.validate is not None:
        try:
            import json

            with open(args.validate, encoding="utf-8") as fh:
                validate_bench(json.load(fh))
        except (OSError, ValueError) as exc:
            print(f"{args.validate}: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid {load_bench(str(args.validate))['schema']}")
        return 0

    if args.compare is not None:
        old_path, new_path = args.compare
        try:
            deltas = compare_documents(load_bench(old_path), load_bench(new_path))
        except (OSError, BenchSchemaError, ValueError) as exc:
            print(f"compare failed: {exc}", file=sys.stderr)
            return 1
        print(render_comparison(deltas))
        if args.gate:
            failures = gate_failures(deltas, args.gate)
            for failure in failures:
                print(f"GATE: {failure}", file=sys.stderr)
            if failures:
                return 1
            print(f"gate ok: {', '.join(args.gate)}")
        return 0

    args.out.mkdir(parents=True, exist_ok=True)
    mode = "quick" if args.quick else "full"

    if args.sweep:
        print(
            f"[bench: sweep throughput, mode={mode}, "
            f"parallel={args.parallel}]"
        )
        started = time.time()
        sweep_doc = new_document(
            "sweep", args.quick, sweep_benchmarks(args.quick, args.parallel)
        )
        sweep_path = args.out / "BENCH_sweep.json"
        sweep_path.write_text(dump_document(sweep_doc))
        for entry in sweep_doc["benchmarks"]:
            speedup = entry.get("speedup")
            tag = f"  {speedup:.2f}x vs old dispatch" if speedup is not None else ""
            print(f"  {entry['name']:<28} {entry['best_s']:>8.3f} s/sweep{tag}")
        print(f"wrote {sweep_path} ({time.time() - started:.1f}s)")
        return 0
    print(f"[bench: kernel micro/macro, mode={mode}]")
    started = time.time()
    entries = kernel_microbenchmarks(quick=args.quick, k=args.repeats)
    entries.append(packet_forwarding_benchmark(quick=args.quick, k=args.repeats))
    kernel_doc = new_document("kernel", args.quick, entries)
    kernel_path = args.out / "BENCH_kernel.json"
    kernel_path.write_text(dump_document(kernel_doc))
    for entry in kernel_doc["benchmarks"]:
        speedup = entry.get("speedup")
        tag = f"  {speedup:.2f}x vs reference" if speedup is not None else ""
        print(
            f"  {entry['name']:<24} {entry['per_op_ns']:>12,.0f} ns/op "
            f"({entry['unit']}){tag}"
        )
    print(f"wrote {kernel_path} ({time.time() - started:.1f}s)")

    if not args.skip_figures:
        print(f"[bench: figure jobs, mode={mode}]")
        started = time.time()
        figures_doc = new_document(
            "figures", args.quick, figure_benchmarks(quick=args.quick, k=args.repeats)
        )
        figures_path = args.out / "BENCH_figures.json"
        figures_path.write_text(dump_document(figures_doc))
        for entry in figures_doc["benchmarks"]:
            print(f"  {entry['name']:<24} {entry['best_s']:>8.2f} s/job")
        print(f"wrote {figures_path} ({time.time() - started:.1f}s)")
    return 0


def _trace_command(args, runnable) -> int:
    """``repro trace``: inspect or replay the stored telemetry traces."""
    from repro.experiments.replay import replay_job
    from repro.telemetry.trace import TraceReader

    if args.figure == "all":
        print("trace works on one figure at a time", file=sys.stderr)
        return 2
    module = runnable[args.figure]
    cache = ResultCache(args.cache_dir if args.cache_dir else default_cache_dir())
    jobs = module.jobs(args.scale)

    def missing(jb) -> int:
        print(
            f"no trace for {args.figure} job {jb.index} "
            f"(key {cache.key(jb)[:12]}...); record one with "
            f"'repro run {args.figure} --trace --scale {args.scale}'",
            file=sys.stderr,
        )
        return 1

    if args.replay:
        results = []
        for jb in jobs:
            text = cache.load_trace(jb)
            if text is None:
                return missing(jb)
            try:
                payload = replay_job(jb, TraceReader.loads(text))
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 1
            results.append(JobResult(job=jb, value=payload, cached=False))
        table = module.reduce(results)
        # Exactly the table, nothing else: CI diffs this against `repro
        # run`'s persisted table to prove replay is byte-identical.
        print(table.format())
        if args.out:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{args.figure}.txt").write_text(table.format() + "\n")
        return 0

    if args.job is not None:
        matching = [jb for jb in jobs if jb.index == args.job]
        if not matching:
            print(
                f"{args.figure} has no job {args.job} "
                f"(valid: 0..{len(jobs) - 1})",
                file=sys.stderr,
            )
            return 2
        jb = matching[0]
        text = cache.load_trace(jb)
        if text is None:
            return missing(jb)
        reader = TraceReader.loads(text)
        if args.channel is not None:
            try:
                probe = reader.channel(args.channel)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            for t, v in zip(probe.times, probe.values):
                print(f"{t!r} {v!r}")
            return 0
        print(f"{args.figure} job {jb.index}: {cache.trace_path(jb)}")
        for key in sorted(reader.meta):
            print(f"  meta {key} = {reader.meta[key]!r}")
        for name in sorted(reader.channels):
            probe = reader.channels[name]
            print(f"  {probe.kind:7s} {name}  ({len(probe.times)} samples)")
        return 0

    stored = 0
    for jb in jobs:
        if cache.has_trace(jb):
            stored += 1
            reader = TraceReader.loads(cache.load_trace(jb))
            print(
                f"job {jb.index}: {len(reader.channels)} channels  "
                f"{cache.trace_path(jb)}"
            )
        else:
            print(f"job {jb.index}: no trace")
    if stored == 0:
        print(
            f"(no traces stored; record them with "
            f"'repro run {args.figure} --trace --scale {args.scale}')"
        )
    return 0


def _report_extras(report) -> str:
    """Fault-tolerance accounting, shown only when something happened."""
    extras = ""
    if report.retries:
        extras += f", {report.retries} retried"
    if report.timeouts:
        extras += f", {report.timeouts} timed out"
    if report.pool_rebuilds:
        extras += f", {report.pool_rebuilds} pool rebuilds"
    if report.degraded:
        extras += ", degraded to serial"
    if report.failures:
        extras += f", {report.failures} failed"
    return extras
