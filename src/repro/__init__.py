"""repro: reproduction of "Dynamic Behavior of Slowly-Responsive Congestion
Control Algorithms" (Bansal, Balakrishnan, Floyd & Shenker, SIGCOMM 2001).

The library has five layers:

* :mod:`repro.sim` — a discrete-event simulation kernel;
* :mod:`repro.net` — the network substrate: links, DropTail/RED queues,
  nodes, the single-bottleneck dumbbell, droppers, monitors;
* :mod:`repro.cc` — the congestion control algorithms under study: TCP(b),
  binomial (SQRT/IIAD), RAP, TFRC(k) (with the paper's self-clocking
  option), TEAR, and the TCP response functions;
* :mod:`repro.traffic` / :mod:`repro.metrics` / :mod:`repro.analysis` —
  workloads, measurement machinery and closed-form models;
* :mod:`repro.experiments` — one module per paper figure
  (``fig03`` ... ``fig20``), each with a ``run(scale)`` entry point.

Quickstart::

    from repro.sim import Simulator
    from repro.net import Dumbbell
    from repro.cc import establish, new_tcp_flow, new_tfrc_flow

    sim = Simulator()
    net = Dumbbell(sim, bandwidth_bps=1e6, rtt_s=0.05)
    tcp_sender, tcp_sink = new_tcp_flow(sim)
    tcp_flow = establish(net, tcp_sender, tcp_sink)
    tfrc_sender, tfrc_recv = new_tfrc_flow(sim, n_intervals=6)
    tfrc_flow = establish(net, tfrc_sender, tfrc_recv)
    tcp_sender.start_at(0.0)
    tfrc_sender.start_at(0.1)
    sim.run(until=60.0)
    print(net.accountant.throughput_bps(tcp_flow, 20, 60))
    print(net.accountant.throughput_bps(tfrc_flow, 20, 60))
"""

__version__ = "1.1.0"

from repro.sim import Simulator
from repro.net import Dumbbell
from repro.cc import establish, new_rap_flow, new_tcp_flow, new_tear_flow, new_tfrc_flow

__all__ = [
    "Dumbbell",
    "Simulator",
    "__version__",
    "establish",
    "new_rap_flow",
    "new_tcp_flow",
    "new_tear_flow",
    "new_tfrc_flow",
]
