"""Random Early Detection (RED) queue management.

Implements the classic Floyd & Jacobson RED estimator and drop logic in
packet mode, with the "gentle" extension (drop probability ramps from
``max_p`` to 1 between ``max_thresh`` and ``2 * max_thresh`` rather than
jumping to 1), matching the configuration used by the paper's ns-2
simulations.

The paper's scenarios set ``min_thresh`` and ``max_thresh`` to 0.25 and 1.25
times the bandwidth-delay product and the physical queue to 2.5 times the
BDP; :func:`red_for_bdp` builds exactly that.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.packet import Packet
from repro.net.queue import QueueDiscipline
from repro.sim.rng import deterministic_default_rng
from repro.contracts import (
    NonNegSeconds,
    PositiveBytes,
    PositiveRate,
    PositiveRatio,
    PositiveSeconds,
    Probability,
)
from repro.units import Packets

__all__ = ["REDQueue", "red_for_bdp"]


class REDQueue(QueueDiscipline):
    """RED AQM in packet mode.

    ``bypass_idle`` is False: the average-queue estimator must observe
    every arrival and every drain-to-idle, so the owning link may never
    skip ``enqueue``/``dequeue`` for this discipline.

    Parameters
    ----------
    capacity_pkts:
        Physical buffer size; arrivals beyond it are force-dropped.
    min_thresh, max_thresh:
        Average-queue thresholds, in packets.
    max_p:
        Drop probability as the average queue reaches ``max_thresh``.
    weight:
        EWMA weight for the average queue size estimator.
    gentle:
        Ramp drop probability to 1 at ``2 * max_thresh`` instead of
        dropping everything above ``max_thresh``.
    rng:
        Random stream for drop decisions (deterministic in tests).
    mean_packet_size:
        Used to estimate how many packets could have been transmitted
        during an idle period, for the idle-time estimator correction.
    """

    def __init__(
        self,
        capacity_pkts: int,
        min_thresh: Packets,
        max_thresh: Packets,
        max_p: Probability = 0.1,
        weight: float = 0.002,
        gentle: bool = True,
        rng: Optional[random.Random] = None,
        mean_packet_size: PositiveBytes = 1000,
        bandwidth_bps: PositiveRate = 10e6,
        ecn_marking: bool = False,
    ):
        super().__init__(capacity_pkts)
        self.bypass_idle = False  # estimator needs every arrival/drain
        if not 0 < min_thresh < max_thresh:
            raise ValueError("need 0 < min_thresh < max_thresh")
        if not 0 < max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        if not 0 < weight <= 1:
            raise ValueError("weight must be in (0, 1]")
        self.min_thresh = min_thresh
        self.max_thresh = max_thresh
        self.max_p = max_p
        self.weight = weight
        self.gentle = gentle
        self._rng = rng if rng is not None else deterministic_default_rng()
        self._mean_pkt_time = mean_packet_size * 8.0 / bandwidth_bps
        # With ECN marking (RFC 3168), early "drops" of ECN-capable packets
        # become Congestion Experienced marks and the packet is enqueued —
        # but only while the average queue is in the marking region
        # (below max_thresh); beyond it, ECN packets drop like any other.
        self.ecn_marking = ecn_marking
        self.marks = 0
        self.avg = 0.0
        self._count = 0  # packets since the last early drop
        self._idle_since: Optional[float] = None

    def _update_average(self) -> None:
        """EWMA update, with the idle-period correction from the RED paper."""
        q = len(self)
        if q == 0 and self._idle_since is not None:
            idle = self._clock() - self._idle_since
            missed = int(idle / self._mean_pkt_time)
            self.avg *= (1.0 - self.weight) ** missed
            self._idle_since = None
        self.avg += self.weight * (q - self.avg)

    def _drop_probability(self) -> Probability:
        """Early-drop probability for the current average queue size."""
        if self.avg < self.min_thresh:
            return 0.0
        if self.avg < self.max_thresh:
            frac = (self.avg - self.min_thresh) / (self.max_thresh - self.min_thresh)
            return self.max_p * frac
        if self.gentle and self.avg < 2 * self.max_thresh:
            frac = (self.avg - self.max_thresh) / self.max_thresh
            return self.max_p + (1.0 - self.max_p) * frac
        return 1.0

    def _congested(self, packet: Packet) -> bool:
        """Mark instead of dropping when both ends are ECN-capable.

        Returns True when the packet should be dropped; False when it was
        marked (or nothing needed doing) and should be admitted.

        Per RFC 3168 §7 (and ns-2's RED), marking substitutes for drops
        only in the probabilistic region, while the average queue sits
        between the thresholds.  Once the average exceeds ``max_thresh``
        — the gentle ramp and the forced-drop region — the queue is
        past the point where marks alone can relieve congestion, so even
        ECN-capable packets are dropped.  Without this, a saturated ECN
        flow would never lose a packet short of physical overflow and
        the average queue could pin above the marking region forever.
        """
        if self.ecn_marking and packet.ect and self.avg < self.max_thresh:
            packet.ce = True
            self.marks += 1
            if self.telemetry is not None and self.telemetry.marks is not None:
                self.telemetry.marks.increment(self._clock())
            on_mark = getattr(self.observer, "on_mark", None)
            if on_mark is not None:
                on_mark(packet)
            return False
        return True

    def admit(self, packet: Packet) -> bool:
        self._update_average()
        if len(self) >= self.capacity_pkts:
            self._count = 0
            return False  # physical overflow always drops, even with ECN
        p_b = self._drop_probability()
        if p_b <= 0.0:
            self._count = -1
            return True
        if p_b >= 1.0:
            self._count = 0
            return not self._congested(packet)
        self._count += 1
        # Spread drops uniformly: p_a = p_b / (1 - count * p_b).
        denominator = 1.0 - self._count * p_b
        p_a = 1.0 if denominator <= 0 else min(1.0, p_b / denominator)
        if self._rng.random() < p_a:
            self._count = 0
            return not self._congested(packet)
        return True

    def dequeue(self) -> Optional[Packet]:
        packet = super().dequeue()
        if packet is not None and len(self) == 0:
            self._idle_since = self._clock()
        return packet


def red_for_bdp(
    bandwidth_bps: PositiveRate,
    rtt_s: PositiveSeconds,
    packet_size: PositiveBytes = 1000,
    queue_bdp: PositiveRatio = 2.5,
    min_thresh_bdp: PositiveRatio = 0.25,
    max_thresh_bdp: PositiveRatio = 1.25,
    rng: Optional[random.Random] = None,
    ecn_marking: bool = False,
) -> REDQueue:
    """RED queue with the paper's BDP-proportional configuration.

    Queue capacity 2.5 x BDP, ``min_thresh`` 0.25 x BDP and ``max_thresh``
    1.25 x BDP (Section 3 of the paper), with thresholds floored so tiny
    scaled-down scenarios stay valid.
    """
    bdp_pkts = bandwidth_bps * rtt_s / (8.0 * packet_size)
    capacity = max(4, int(round(queue_bdp * bdp_pkts)))
    min_thresh = max(1.0, min_thresh_bdp * bdp_pkts)
    max_thresh = max(min_thresh + 1.0, max_thresh_bdp * bdp_pkts)
    return REDQueue(
        capacity_pkts=capacity,
        min_thresh=min_thresh,
        max_thresh=max_thresh,
        rng=rng,
        mean_packet_size=packet_size,
        bandwidth_bps=bandwidth_bps,
        ecn_marking=ecn_marking,
    )
