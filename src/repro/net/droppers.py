"""Deterministic and random packet droppers.

Section 4.3 of the paper studies smoothness under *crafted* loss patterns
(e.g. "three losses, each after 50 packet arrivals, followed by three more,
each after 400"), which are imposed on a single flow independent of queue
state.  These droppers sit on a link's delivery path and implement such
patterns.  A Bernoulli dropper is also provided for validating steady-state
response functions against the TCP-friendly equation.

Droppers act on DATA packets only; ACK and feedback packets pass through,
matching the paper's setup where the reverse path is uncongested.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from repro.net.packet import Packet
from repro.sim.rng import deterministic_default_rng
from repro.telemetry.probes import CounterProbe
from repro.contracts import NonNegSeconds, PositiveSeconds, Probability
from repro.units import Seconds

__all__ = [
    "Dropper",
    "CountBasedDropper",
    "CutoffDropper",
    "TimedDropper",
    "PeriodicDropper",
    "PhaseDropper",
    "BernoulliDropper",
    "mild_bursty_pattern",
    "severe_bursty_phases",
]


class Dropper:
    """Base class: forwards packets downstream unless :meth:`should_drop`."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._downstream: Optional[Callable[[Packet], None]] = None
        self._clock = clock if clock is not None else lambda: 0.0
        self.dropped = CounterProbe("drops")
        self.passed = 0

    def connect(self, downstream: Callable[[Packet], None]) -> None:
        self._downstream = downstream

    def receive(self, packet: Packet) -> None:
        if self._downstream is None:
            raise RuntimeError("dropper is not connected")
        if packet.is_data and self.should_drop(packet):
            self.dropped.increment(self._clock())
            return
        self.passed += 1
        self._downstream(packet)

    def should_drop(self, packet: Packet) -> bool:
        raise NotImplementedError

    @property
    def drop_times(self) -> Sequence[float]:
        return self.dropped.event_times

    @property
    def drops(self) -> int:
        return self.dropped.count


class CountBasedDropper(Dropper):
    """Drop one packet after each gap in ``gaps`` arrivals, cycling.

    ``gaps = [50, 50, 50, 400, 400, 400]`` reproduces the paper's "mildly
    bursty" Figure 17 pattern: three losses each after 50 arrivals, then
    three each after 400, repeating.
    """

    def __init__(self, gaps: Sequence[int], clock: Optional[Callable[[], float]] = None):
        super().__init__(clock)
        if not gaps or any(g < 1 for g in gaps):
            raise ValueError("gaps must be positive packet counts")
        self._gaps = list(gaps)
        self._gap_index = 0
        self._since_last_drop = 0

    def should_drop(self, packet: Packet) -> bool:
        self._since_last_drop += 1
        if self._since_last_drop > self._gaps[self._gap_index]:
            self._since_last_drop = 0
            self._gap_index = (self._gap_index + 1) % len(self._gaps)
            return True
        return False


class PeriodicDropper(CountBasedDropper):
    """Drop every ``period``-th data packet (steady-state loss rate 1/period)."""

    def __init__(self, period: int, clock: Optional[Callable[[], float]] = None):
        super().__init__([period - 1] if period > 1 else [1], clock)
        if period < 2:
            raise ValueError("period must be at least 2")


class PhaseDropper(Dropper):
    """Cycle through time phases, each dropping every Nth packet.

    ``phases`` is a sequence of ``(duration_s, drop_every_n)`` pairs.  The
    paper's "more bursty" Figure 18 pattern is a 6 s phase dropping every
    200th packet followed by a 1 s phase dropping every 4th.
    """

    def __init__(
        self,
        phases: Sequence[tuple[Seconds, int]],
        clock: Callable[[], float],
    ):
        super().__init__(clock)
        if not phases:
            raise ValueError("need at least one phase")
        for duration, n in phases:
            if duration <= 0 or n < 1:
                raise ValueError("phases need positive duration and drop period")
        self._phases = list(phases)
        self._cycle = sum(duration for duration, _ in phases)
        self._arrivals_in_phase = 0
        self._last_phase_index = 0

    def _phase_index(self, now: float) -> int:
        offset = now % self._cycle
        for index, (duration, _) in enumerate(self._phases):
            if offset < duration:
                return index
            offset -= duration
        return len(self._phases) - 1

    def should_drop(self, packet: Packet) -> bool:
        index = self._phase_index(self._clock())
        if index != self._last_phase_index:
            self._last_phase_index = index
            self._arrivals_in_phase = 0
        self._arrivals_in_phase += 1
        _, period = self._phases[index]
        if self._arrivals_in_phase >= period:
            self._arrivals_in_phase = 0
            return True
        return False


class CutoffDropper(Dropper):
    """Pass the first ``after_packets`` data packets, then drop everything.

    Models a path that goes dead (route failure, total overload) — used to
    test timeout and self-clocking behaviour when ACKs stop entirely.
    """

    def __init__(self, after_packets: int, clock: Optional[Callable[[], float]] = None):
        super().__init__(clock)
        if after_packets < 0:
            raise ValueError("after_packets must be non-negative")
        self.after_packets = after_packets
        self._seen = 0

    def should_drop(self, packet: Packet) -> bool:
        self._seen += 1
        return self._seen > self.after_packets


class TimedDropper(Dropper):
    """Drop the first data packet after each ``interval`` of time.

    With ``interval`` equal to one RTT this produces the paper's
    *persistent congestion* pattern — "the loss of one packet per
    round-trip time" — used to define the responsiveness metric.
    ``start_at`` delays the onset so a flow can reach steady state first.
    """

    def __init__(
        self,
        interval_s: PositiveSeconds,
        clock: Callable[[], float],
        start_at: NonNegSeconds = 0.0,
    ):
        super().__init__(clock)
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s
        self.start_at = start_at
        self._next_drop_after = start_at

    def should_drop(self, packet: Packet) -> bool:
        now = self._clock()
        if now >= self._next_drop_after:
            # Schedule the next drop one interval after this one.
            self._next_drop_after = now + self.interval_s
            return True
        return False


class BernoulliDropper(Dropper):
    """Drop each data packet independently with probability ``p``."""

    def __init__(
        self,
        p: Probability,
        rng: Optional[random.Random] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        super().__init__(clock)
        if not 0 <= p < 1:
            raise ValueError("p must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else deterministic_default_rng()

    def should_drop(self, packet: Packet) -> bool:
        return self._rng.random() < self.p


def mild_bursty_pattern() -> list[int]:
    """Figure 17 / 19 gap pattern."""
    return [50, 50, 50, 400, 400, 400]


def severe_bursty_phases() -> list[tuple[float, int]]:
    """Figure 18 phases: 6 s of 1-in-200 loss, then 1 s of 1-in-4 loss."""
    return [(6.0, 200), (1.0, 4)]
