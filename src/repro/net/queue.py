"""Queueing disciplines: the base interface and DropTail.

A queue decides, per arriving packet, whether to enqueue or drop.  The
owning :class:`~repro.net.link.Link` dequeues packets for transmission.
Queues emit arrivals, drops and ECN marks into telemetry probes (a
:class:`QueueProbes` bundle wired up by the per-link
:class:`~repro.net.monitor.LinkMonitor`), which is how loss rates are
measured.  An optional :class:`DropObserver` callback interface is kept
for ad-hoc per-packet hooks in tests and experiments.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Optional, Protocol

from repro.net.packet import Packet
from repro.telemetry.probes import CounterProbe

__all__ = ["QueueDiscipline", "DropTailQueue", "DropObserver", "QueueProbes"]


class DropObserver(Protocol):
    """Callbacks a queue invokes on packet arrival and drop."""

    def on_arrival(self, packet: Packet) -> None: ...

    def on_drop(self, packet: Packet) -> None: ...


@dataclasses.dataclass
class QueueProbes:
    """Telemetry channels a queue emits into (wired by a link monitor)."""

    arrivals: CounterProbe
    drops: CounterProbe
    marks: Optional[CounterProbe] = None


class QueueDiscipline:
    """Base class: a FIFO buffer with a pluggable admission decision.

    Parameters
    ----------
    capacity_pkts:
        Maximum number of packets held (including the one in service).
    """

    def __init__(self, capacity_pkts: int):
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity_pkts = capacity_pkts
        self._buffer: deque[Packet] = deque()
        self._bytes = 0
        self.observer: Optional[DropObserver] = None
        self.telemetry: Optional[QueueProbes] = None
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock (done by the owning link)."""
        self._clock = clock

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def byte_length(self) -> int:
        return self._bytes

    def admit(self, packet: Packet) -> bool:
        """Admission decision.  Subclasses override (RED drops early)."""
        return len(self._buffer) < self.capacity_pkts

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet; returns True if enqueued, False if dropped."""
        if self.telemetry is not None:
            self.telemetry.arrivals.increment(self._clock())
        if self.observer is not None:
            self.observer.on_arrival(packet)
        if not self.admit(packet):
            if self.telemetry is not None:
                self.telemetry.drops.increment(self._clock())
            if self.observer is not None:
                self.observer.on_drop(packet)
            return False
        packet.enqueued_at = self._clock()
        self._buffer.append(packet)
        self._bytes += packet.size
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or None if empty."""
        if not self._buffer:
            return None
        packet = self._buffer.popleft()
        self._bytes -= packet.size
        return packet


class DropTailQueue(QueueDiscipline):
    """Plain FIFO tail-drop queue."""
