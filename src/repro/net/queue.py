"""Queueing disciplines: the base interface and DropTail.

A queue decides, per arriving packet, whether to enqueue or drop.  The
owning :class:`~repro.net.link.Link` dequeues packets for transmission.
Queues emit arrivals, drops and ECN marks into telemetry probes (a
:class:`QueueProbes` bundle wired up by the per-link
:class:`~repro.net.monitor.LinkMonitor`), which is how loss rates are
measured.  An optional :class:`DropObserver` callback interface is kept
for ad-hoc per-packet hooks in tests and experiments.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Optional, Protocol

from repro.net.packet import Packet
from repro.telemetry.probes import CounterProbe
from repro.units import Bytes

__all__ = ["QueueDiscipline", "DropTailQueue", "DropObserver", "QueueProbes"]


class DropObserver(Protocol):
    """Callbacks a queue invokes on packet arrival and drop."""

    def on_arrival(self, packet: Packet) -> None: ...

    def on_drop(self, packet: Packet) -> None: ...


@dataclasses.dataclass
class QueueProbes:
    """Telemetry channels a queue emits into (wired by a link monitor)."""

    arrivals: CounterProbe
    drops: CounterProbe
    marks: Optional[CounterProbe] = None


class QueueDiscipline:
    """Base class: a FIFO buffer with a pluggable admission decision.

    Parameters
    ----------
    capacity_pkts:
        Maximum number of packets *waiting* in the buffer.  The packet
        currently being transmitted is **not** counted: the owning
        :class:`~repro.net.link.Link` dequeues it for the duration of its
        serialization and exposes it as ``link.in_service``.  A busy link
        with a capacity-N drop-tail queue therefore holds up to N + 1
        packets in total (N queued + 1 in service) — the ns-2 convention,
        where the buffer and the transmitter are separate stages.  This
        is pinned by regression tests; changing it to "N including the
        one in service" would shrink every buffer by one packet and
        perturb all figure tables.
    """

    #: Whether the owning link may skip the enqueue/dequeue round trip for
    #: a packet arriving at an idle link with an empty buffer.  True for
    #: passive FIFO disciplines whose admit/dequeue have no side effects;
    #: disciplines with per-arrival state (RED's average-queue estimator)
    #: must override this to False.
    bypass_idle = True

    def __init__(self, capacity_pkts: int):
        if capacity_pkts < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity_pkts = capacity_pkts
        self._buffer: deque[Packet] = deque()
        self._bytes = 0
        self.observer: Optional[DropObserver] = None
        self.telemetry: Optional[QueueProbes] = None
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock (done by the owning link)."""
        self._clock = clock

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def byte_length(self) -> Bytes:
        """Bytes waiting in the buffer (excluding the packet in service)."""
        return self._bytes

    def admit(self, packet: Packet) -> bool:
        """Admission decision.  Subclasses override (RED drops early)."""
        return len(self._buffer) < self.capacity_pkts

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet; returns True if enqueued, False if dropped."""
        telemetry = self.telemetry
        observer = self.observer
        now = self._clock()
        if telemetry is not None:
            telemetry.arrivals.increment(now)
        if observer is not None:
            observer.on_arrival(packet)
        if not self.admit(packet):
            if telemetry is not None:
                telemetry.drops.increment(now)
            if observer is not None:
                observer.on_drop(packet)
            return False
        packet.enqueued_at = now
        self._buffer.append(packet)
        self._bytes += packet.size
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head-of-line packet, or None if empty."""
        if not self._buffer:
            return None
        packet = self._buffer.popleft()
        self._bytes -= packet.size
        return packet


class DropTailQueue(QueueDiscipline):
    """Plain FIFO tail-drop queue."""
