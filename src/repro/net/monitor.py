"""Measurement taps: link monitors and per-flow accounting.

:class:`LinkMonitor` and :class:`FlowAccountant` are thin *live
frontends* over the telemetry measurement bases
(:class:`~repro.telemetry.measures.LinkMetrics` /
:class:`~repro.telemetry.measures.FlowMetrics`): they wire simulation
components (queue probes, link taps, receiver callbacks) into the
channels and inherit every derived metric — loss rate, utilization,
per-flow throughput — from the base, so the identical arithmetic runs
over a trace replayed offline.

When a :class:`~repro.telemetry.recorder.Recorder` is passed (or active
via :func:`~repro.telemetry.context.capture`), all channels are adopted
under hierarchical names (``link.<name>.drops``, ``flow.<id>.bytes``)
and end up in the exported trace.
"""

from __future__ import annotations

from typing import Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.queue import QueueProbes
from repro.sim.engine import Simulator
from repro.telemetry.measures import FlowMetrics, LinkMetrics
from repro.telemetry.probes import GaugeProbe, SeriesProbe
from repro.telemetry.recorder import Recorder
from repro.telemetry.series import TimeSeries
from repro.units import Seconds

__all__ = ["LinkMonitor", "FlowAccountant"]


class LinkMonitor(LinkMetrics):
    """Observes arrivals, drops, marks and departures on one link.

    Attach with :meth:`attach`; the monitor hands the queue a probe
    bundle and registers a departure tap on the link (no monkey-patching
    of link internals).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        recorder: Optional[Recorder] = None,
    ):
        super().__init__(name=name or "link")
        self.sim = sim
        self._departed_bytes = 0
        self._link: Optional[Link] = None
        self._queue_sampler = None  # PeriodicTask once sampling starts
        self._recorder = recorder
        if recorder is not None:
            prefix = f"link.{self.name}"
            recorder.adopt(f"{prefix}.arrivals", self.arrivals)
            recorder.adopt(f"{prefix}.drops", self.drops)
            recorder.adopt(f"{prefix}.marks", self.marks)
            recorder.adopt(f"{prefix}.departed_bytes", self.departures)

    @property
    def attached(self) -> bool:
        return self._link is not None

    def attach(self, link: Link) -> None:
        if self._link is not None:
            raise RuntimeError("monitor is already attached to a link")
        self._link = link
        self.bandwidth_bps = link.bandwidth_bps
        link.queue.telemetry = QueueProbes(
            arrivals=self.arrivals, drops=self.drops, marks=self.marks
        )
        link.add_tap(self._on_departure)
        if self._recorder is not None:
            self._recorder.annotate(
                f"link.{self.name}.bandwidth_bps", link.bandwidth_bps
            )

    def _on_departure(self, packet: Packet) -> None:
        self._departed_bytes += packet.size
        self.departures.record(self.sim.now, self._departed_bytes)

    def sample_queue(self, period_s: Optional[Seconds] = None) -> TimeSeries:
        """Start periodic queue-occupancy sampling; returns the series.

        The series records (time, packets queued) every ``period_s``
        seconds (the recorder's cadence by default) until :meth:`stop`
        or the end of the simulation — the standing-queue dynamics the
        paper's Section 2 background discusses.
        """
        if self._link is None:
            raise RuntimeError("monitor is not attached to a link")
        if period_s is None:
            if self._recorder is None:
                raise ValueError("period_s required without a recorder cadence")
            period_s = self._recorder.cadence_s
        from repro.sim.process import PeriodicTask

        link = self._link
        if self.queue_depth is None:
            gauge = GaugeProbe("queue_pkts", read=lambda: float(len(link.queue)))
            self.queue_depth = gauge
            if self._recorder is not None:
                self._recorder.adopt(f"link.{self.name}.queue_pkts", gauge)
        else:
            # Restarting (e.g. at a new period) keeps appending to the
            # same channel rather than shadowing it with a fresh gauge.
            gauge = self.queue_depth
            gauge.read = lambda: float(len(link.queue))

        def snapshot() -> None:
            gauge.sample(self.sim.now)

        if self._queue_sampler is not None:
            self._queue_sampler.stop()
        task = PeriodicTask(self.sim, period_s, snapshot)
        task.start()
        self._queue_sampler = task
        return gauge.series

    def stop(self) -> None:
        """Stop periodic sampling; safe to call at any lifecycle stage."""
        if self._queue_sampler is not None:
            self._queue_sampler.stop()
            self._queue_sampler = None


class FlowAccountant(FlowMetrics):
    """Counts data delivered to receivers, per flow."""

    def __init__(self, sim: Simulator, recorder: Optional[Recorder] = None):
        super().__init__()
        self.sim = sim
        self._recorder = recorder

    def _on_new_flow(self, flow_id: int, probe: SeriesProbe) -> None:
        if self._recorder is not None:
            self._recorder.adopt(f"flow.{flow_id}.bytes", probe)

    def on_deliver(self, packet: Packet) -> None:
        """Record a data packet that reached its receiver."""
        probe = self._flow_probe(packet.flow_id)
        values = probe.series.values
        total = (values[-1] if values else 0.0) + packet.size
        probe.record(self.sim.now, total)
