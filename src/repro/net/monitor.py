"""Measurement taps: link monitors and per-flow accounting.

:class:`LinkMonitor` observes one link's queue (arrivals and drops) and its
transmitter (departures), producing the loss-rate and utilization series the
paper's metrics are computed from.  :class:`FlowAccountant` counts delivered
data per flow at the receivers, producing per-flow throughput.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.tracing import TimeSeries

__all__ = ["LinkMonitor", "FlowAccountant"]


class LinkMonitor:
    """Observes arrivals, drops and departures on one link.

    Attach with :meth:`attach`; the monitor registers itself as the queue's
    drop observer and wraps the link's delivery path to count departures.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.arrival_times: list[float] = []
        self.drop_times: list[float] = []
        self.mark_times: list[float] = []  # ECN CE marks (RED marking mode)
        self.departures = TimeSeries("departed_bytes")
        self._departed_bytes = 0
        self._link: Optional[Link] = None

    def attach(self, link: Link) -> None:
        self._link = link
        link.queue.observer = self
        original = link._transmission_done

        def observed_transmission_done(packet: Packet) -> None:
            self._departed_bytes += packet.size
            self.departures.append(self.sim.now, self._departed_bytes)
            original(packet)

        link._transmission_done = observed_transmission_done  # type: ignore[method-assign]

    def sample_queue(self, period_s: float) -> TimeSeries:
        """Start periodic queue-occupancy sampling; returns the series.

        The series records (time, packets queued) every ``period_s``
        seconds for the rest of the simulation — the standing-queue
        dynamics the paper's Section 2 background discusses.
        """
        if self._link is None:
            raise RuntimeError("monitor is not attached to a link")
        from repro.sim.process import PeriodicTask

        series = TimeSeries("queue_pkts")
        link = self._link

        def snapshot() -> None:
            series.append(self.sim.now, float(len(link.queue)))

        task = PeriodicTask(self.sim, period_s, snapshot)
        task.start()
        self._queue_sampler = task  # keep alive, allow later stop()
        return series

    # Queue observer protocol -------------------------------------------------

    def on_arrival(self, packet: Packet) -> None:
        self.arrival_times.append(self.sim.now)

    def on_drop(self, packet: Packet) -> None:
        self.drop_times.append(self.sim.now)

    def on_mark(self, packet: Packet) -> None:
        self.mark_times.append(self.sim.now)

    # Derived measurements ----------------------------------------------------

    @staticmethod
    def _count_in(times: list[float], start: float, end: float) -> int:
        import bisect

        return bisect.bisect_left(times, end) - bisect.bisect_left(times, start)

    def arrivals_in(self, start: float, end: float) -> int:
        return self._count_in(self.arrival_times, start, end)

    def drops_in(self, start: float, end: float) -> int:
        return self._count_in(self.drop_times, start, end)

    def marks_in(self, start: float, end: float) -> int:
        return self._count_in(self.mark_times, start, end)

    def mark_rate(self, start: float, end: float) -> float:
        """Fraction of arrivals CE-marked over [start, end); NaN if idle."""
        arrivals = self.arrivals_in(start, end)
        if arrivals == 0:
            return math.nan
        return self.marks_in(start, end) / arrivals

    def loss_rate(self, start: float, end: float) -> float:
        """Fraction of arrivals dropped over [start, end); NaN if idle."""
        arrivals = self.arrivals_in(start, end)
        if arrivals == 0:
            return math.nan
        return self.drops_in(start, end) / arrivals

    def loss_rate_series(
        self, window_s: float, start: float, end: float, stride_s: float = 0.0
    ) -> TimeSeries:
        """Loss rate over a sliding window.

        Each sample at time t is the loss rate over [t - window_s, t).  The
        paper averages the loss rate over the previous ten RTTs; pass
        ``window_s = 10 * rtt``.  ``stride_s`` defaults to the window length
        (non-overlapping windows).
        """
        stride = stride_s if stride_s > 0 else window_s
        series = TimeSeries("loss_rate")
        t = start + window_s
        while t <= end:
            rate = self.loss_rate(t - window_s, t)
            if not math.isnan(rate):
                series.append(t, rate)
            t += stride
        return series

    def departed_bytes_in(self, start: float, end: float) -> float:
        def cumulative(t: float) -> float:
            value = self.departures.last_before(t)
            return value if value is not None else 0.0

        return cumulative(end) - cumulative(start)

    def utilization(self, start: float, end: float) -> float:
        """Fraction of the link's capacity used over [start, end)."""
        if self._link is None:
            raise RuntimeError("monitor is not attached to a link")
        capacity_bytes = self._link.bandwidth_bps * (end - start) / 8.0
        if capacity_bytes <= 0:
            return 0.0
        return self.departed_bytes_in(start, end) / capacity_bytes


class FlowAccountant:
    """Counts data delivered to receivers, per flow."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._series: dict[int, TimeSeries] = {}
        self._bytes: dict[int, int] = {}

    def on_deliver(self, packet: Packet) -> None:
        """Record a data packet that reached its receiver."""
        flow = packet.flow_id
        total = self._bytes.get(flow, 0) + packet.size
        self._bytes[flow] = total
        series = self._series.get(flow)
        if series is None:
            series = TimeSeries(f"flow{flow}_bytes")
            self._series[flow] = series
        series.append(self.sim.now, total)

    @property
    def flows(self) -> list[int]:
        return sorted(self._series)

    def delivered_bytes(self, flow_id: int, start: float, end: float) -> float:
        series = self._series.get(flow_id)
        if series is None:
            return 0.0

        def cumulative(t: float) -> float:
            value = series.last_before(t)
            return value if value is not None else 0.0

        return cumulative(end) - cumulative(start)

    def throughput_bps(self, flow_id: int, start: float, end: float) -> float:
        """Average delivered rate of one flow over [start, end), bits/s."""
        duration = end - start
        if duration <= 0:
            return 0.0
        return self.delivered_bytes(flow_id, start, end) * 8.0 / duration

    def rate_series_bps(
        self, flow_id: int, window_s: float, start: float, end: float
    ) -> TimeSeries:
        """Delivered rate sampled over consecutive windows, bits/s."""
        series = TimeSeries(f"flow{flow_id}_rate")
        t = start + window_s
        while t <= end:
            series.append(t, self.throughput_bps(flow_id, t - window_s, t))
            t += window_s
        return series
