"""Nodes: endpoints and routers.

A :class:`Node` forwards packets by destination address and delivers packets
addressed to itself to the agent registered for the packet's flow.  This is
all the routing the single-bottleneck dumbbell needs, while staying general
enough for arbitrary topologies built by hand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.link import Link
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Simulator

__all__ = ["Node"]


class Node:
    """A network node with destination-based forwarding.

    Parameters
    ----------
    sim:
        The simulation kernel.
    address:
        Unique integer address.
    name:
        Debugging label.
    """

    def __init__(self, sim: "Simulator", address: int, name: str = ""):
        self.sim = sim
        self.address = address
        self.name = name or f"node{address}"
        self._routes: dict[int, Link] = {}
        self._default_route: Optional[Link] = None
        self._flow_handlers: dict[int, Callable[[Packet], None]] = {}

    def add_route(self, dst: int, link: Link) -> None:
        """Route packets for node ``dst`` out of ``link``."""
        self._routes[dst] = link

    def set_default_route(self, link: Link) -> None:
        """Fallback link for destinations without an explicit route."""
        self._default_route = link

    def bind_flow(self, flow_id: int, handler: Callable[[Packet], None]) -> None:
        """Deliver packets of ``flow_id`` addressed to this node to ``handler``."""
        if flow_id in self._flow_handlers:
            raise ValueError(f"flow {flow_id} already bound on {self.name}")
        self._flow_handlers[flow_id] = handler

    def unbind_flow(self, flow_id: int) -> None:
        self._flow_handlers.pop(flow_id, None)

    def send(self, packet: Packet) -> None:
        """Inject a locally generated packet into the network."""
        self._forward(packet)

    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from a link."""
        if packet.dst == self.address:
            handler = self._flow_handlers.get(packet.flow_id)
            if handler is not None:
                handler(packet)
            # Packets for unbound flows (e.g. a stopped agent) are dropped
            # silently, as a real host would discard them.
            return
        # _forward, inlined: receive is on the per-packet hot path for
        # every router hop, and the extra call shows up in profiles.
        link = self._routes.get(packet.dst, self._default_route)
        if link is None:
            raise RuntimeError(
                f"{self.name}: no route for packet to {packet.dst}"
            )
        link.send(packet)

    def _forward(self, packet: Packet) -> None:
        link = self._routes.get(packet.dst, self._default_route)
        if link is None:
            raise RuntimeError(
                f"{self.name}: no route for packet to {packet.dst}"
            )
        link.send(packet)
