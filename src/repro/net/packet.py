"""Packet model.

A single packet class serves every protocol in the library.  Protocol
agents stash their control information (ACK numbers, TFRC feedback reports,
timestamps) in dedicated optional fields rather than a free-form dict, which
keeps the per-packet cost low — the simulator creates millions of these.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.units import Bytes, Seconds

__all__ = ["Packet", "DATA", "ACK", "FEEDBACK"]

DATA = "data"
ACK = "ack"
FEEDBACK = "feedback"

_uid_counter = itertools.count()


class Packet:
    """A simulated packet.

    Attributes
    ----------
    flow_id:
        Identifier of the end-to-end flow the packet belongs to.
    kind:
        One of ``DATA``, ``ACK``, ``FEEDBACK``.
    seq:
        Sequence number, in packets (the library simulates packet-granular
        protocols, as ns-2's abstract agents do).
    size:
        Size in bytes, used for link serialization time and byte counting.
    src, dst:
        Node addresses used for forwarding.
    sent_at:
        Time the sender injected the packet (for RTT sampling).
    ack_seq:
        For ACK packets: cumulative acknowledgment (TCP) or echoed sequence
        number (RAP).
    echo:
        Timestamp echoed back by the receiver, for sender RTT estimation.
    info:
        Protocol-specific payload (e.g. a TFRC feedback report object).
    """

    __slots__ = (
        "uid",
        "flow_id",
        "kind",
        "seq",
        "size",
        "src",
        "dst",
        "sent_at",
        "ack_seq",
        "echo",
        "info",
        "enqueued_at",
        "ect",
        "ce",
        "ece",
    )

    def __init__(
        self,
        flow_id: int,
        kind: str,
        seq: int,
        size: Bytes,
        src: int,
        dst: int,
        sent_at: Seconds = 0.0,
        ack_seq: int = -1,
        echo: Seconds = -1.0,
        info: Optional[Any] = None,
        ect: bool = False,
    ):
        self.uid = next(_uid_counter)
        self.flow_id = flow_id
        self.kind = kind
        self.seq = seq
        self.size = size
        self.src = src
        self.dst = dst
        self.sent_at = sent_at
        self.ack_seq = ack_seq
        self.echo = echo
        self.info = info
        self.enqueued_at = -1.0
        # Explicit Congestion Notification (RFC 2481) codepoints:
        # ect  - sender is ECN-capable (ECT set on data packets);
        # ce   - Congestion Experienced, set by an ECN-marking queue;
        # ece  - ECN-Echo, set on ACKs by the receiver to relay CE marks.
        self.ect = ect
        self.ce = False
        self.ece = False

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet flow={self.flow_id} {self.kind} seq={self.seq} "
            f"{self.src}->{self.dst} {self.size}B>"
        )
