"""Simple one-hop paths for controlled-loss experiments.

The Section 4.3 smoothness scenarios impose a crafted loss pattern on a
single flow; the network itself must not add congestion losses.  This
builder wires a sender and receiver over a symmetric two-node path with an
optional dropper on the forward (data) direction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.droppers import Dropper
from repro.net.link import Link
from repro.net.node import Node
from repro.net.queue import DropTailQueue
from repro.sim.engine import Simulator
from repro.units import BitsPerSecond, Seconds

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.cc.base import Receiver, Sender

__all__ = ["single_path"]


def single_path(
    sim: Simulator,
    sender: "Sender",
    receiver: "Receiver",
    rtt_s: Seconds = 0.05,
    bandwidth_bps: BitsPerSecond = 1e7,
    dropper: Optional[Dropper] = None,
    queue_pkts: int = 100_000,
    flow_id: int = 0,
) -> None:
    """Wire sender -> (dropper) -> receiver plus the reverse feedback path.

    Each direction gets ``bandwidth_bps`` and half the RTT of propagation.
    The default queue is deep enough that the dropper (not the queue) is
    the only loss mechanism.
    """
    source = Node(sim, address=1, name="src")
    destination = Node(sim, address=2, name="dst")
    forward = Link(
        sim, bandwidth_bps, rtt_s / 2.0, DropTailQueue(queue_pkts), name="fwd"
    )
    backward = Link(
        sim, bandwidth_bps, rtt_s / 2.0, DropTailQueue(queue_pkts), name="bwd"
    )
    if dropper is not None:
        dropper.connect(destination.receive)
        forward.connect(dropper.receive)
    else:
        forward.connect(destination.receive)
    backward.connect(source.receive)
    source.add_route(2, forward)
    destination.add_route(1, backward)
    sender.attach(source, 2, flow_id)
    receiver.attach(destination, 1, flow_id)
