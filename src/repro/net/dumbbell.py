"""Single-bottleneck dumbbell topology builder.

All of the paper's simulations run on a dumbbell: n sources on the left, n
sinks on the right, one congested link between two routers, RED queue
management at the bottleneck, RTT about 50 ms, and (optionally) data traffic
in both directions on the congested link (Section 3).

The builder wires nodes, links and routing, attaches a
:class:`~repro.net.monitor.LinkMonitor` to the forward bottleneck and a
:class:`~repro.net.monitor.FlowAccountant` for per-flow throughput.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.link import Link
from repro.net.monitor import FlowAccountant, LinkMonitor
from repro.net.node import Node
from repro.net.queue import DropTailQueue, QueueDiscipline
from repro.net.red import red_for_bdp
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry import active_recorder
from repro.units import BitsPerSecond, Bytes, Packets, Seconds

__all__ = ["Dumbbell", "HostPair"]


class HostPair:
    """A source host and its destination host, wired through the dumbbell."""

    __slots__ = ("source", "destination", "forward")

    def __init__(self, source: Node, destination: Node, forward: bool):
        self.source = source
        self.destination = destination
        self.forward = forward  # True if data crosses the bottleneck left->right


class Dumbbell:
    """Dumbbell topology with a RED (or custom) bottleneck queue.

    Parameters
    ----------
    sim:
        Simulation kernel.
    bandwidth_bps:
        Bottleneck capacity, bits per second.
    rtt_s:
        Two-way propagation delay for any source/sink pair.
    packet_size:
        Nominal data packet size in bytes (for BDP-derived queue sizing).
    queue_factory:
        Builds the forward bottleneck queue; defaults to the paper's RED
        configuration (2.5 x BDP buffer, thresholds at 0.25 / 1.25 x BDP).
    access_factor:
        Access links run at ``access_factor`` times the bottleneck rate so
        that queueing happens only at the bottleneck.
    rng:
        Registry for the RED drop streams.
    ecn_marking:
        Make the default RED bottleneck mark ECN-capable packets instead
        of dropping them (ignored when a custom queue_factory is given).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: BitsPerSecond,
        rtt_s: Seconds,
        packet_size: Bytes = 1000,
        queue_factory: Optional[Callable[[], QueueDiscipline]] = None,
        access_factor: float = 20.0,
        rng: Optional[RngRegistry] = None,
        ecn_marking: bool = False,
    ):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.rtt_s = rtt_s
        self.packet_size = packet_size
        self.rng = rng if rng is not None else RngRegistry(0)

        self._next_address = 0
        self._next_flow_id = 0

        self.router_left = self._new_node("routerL")
        self.router_right = self._new_node("routerR")

        if queue_factory is None:
            def queue_factory() -> QueueDiscipline:
                return red_for_bdp(
                    bandwidth_bps,
                    rtt_s,
                    packet_size=packet_size,
                    rng=self.rng.stream("red"),
                    ecn_marking=ecn_marking,
                )

        # Propagation budget: access delay + bottleneck delay + access delay
        # per direction, totalling rtt_s across both directions.
        self._access_delay = rtt_s / 8.0
        bottleneck_delay = rtt_s / 4.0
        self._access_bw = access_factor * bandwidth_bps

        self.bottleneck = Link(
            sim, bandwidth_bps, bottleneck_delay, queue_factory(), name="bottleneck"
        )
        self.bottleneck.connect(self.router_right.receive)
        self.reverse_bottleneck = Link(
            sim, bandwidth_bps, bottleneck_delay, queue_factory(), name="bottleneck_rev"
        )
        self.reverse_bottleneck.connect(self.router_left.receive)

        # When an experiment is capturing telemetry, every monitor channel
        # lands in the active recorder (link.bottleneck.*, flow.<id>.*).
        self.telemetry = active_recorder()
        self.monitor = LinkMonitor(sim, "bottleneck", recorder=self.telemetry)
        self.monitor.attach(self.bottleneck)
        self.reverse_monitor = LinkMonitor(
            sim, "bottleneck_rev", recorder=self.telemetry
        )
        self.reverse_monitor.attach(self.reverse_bottleneck)
        self.accountant = FlowAccountant(sim, recorder=self.telemetry)

    # Internals ----------------------------------------------------------------

    def _new_node(self, name: str) -> Node:
        node = Node(self.sim, self._next_address, name)
        self._next_address += 1
        return node

    def _access_link(self, name: str) -> Link:
        # Deep DropTail buffer: access links must never drop.
        return Link(
            self.sim,
            self._access_bw,
            self._access_delay,
            DropTailQueue(100_000),
            name=name,
        )

    def _attach_host(self, node: Node, router: Node) -> None:
        """Wire ``node`` to ``router`` with a link in each direction."""
        uplink = self._access_link(f"{node.name}->{router.name}")
        uplink.connect(router.receive)
        node.set_default_route(uplink)
        downlink = self._access_link(f"{router.name}->{node.name}")
        downlink.connect(node.receive)
        router.add_route(node.address, downlink)

    # Public API ---------------------------------------------------------------

    def new_flow_id(self) -> int:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def add_host_pair(self, forward: bool = True, name: str = "") -> HostPair:
        """Create a source/sink host pair.

        ``forward=True`` sends data left-to-right over the monitored
        bottleneck; ``forward=False`` creates a right-to-left pair, used for
        the paper's bidirectional background traffic.
        """
        tag = name or f"h{self._next_address}"
        if forward:
            src_router, dst_router = self.router_left, self.router_right
            out_link, back_link = self.bottleneck, self.reverse_bottleneck
        else:
            src_router, dst_router = self.router_right, self.router_left
            out_link, back_link = self.reverse_bottleneck, self.bottleneck

        source = self._new_node(f"{tag}src")
        destination = self._new_node(f"{tag}dst")
        self._attach_host(source, src_router)
        self._attach_host(destination, dst_router)
        src_router.add_route(destination.address, out_link)
        dst_router.add_route(source.address, back_link)
        return HostPair(source, destination, forward)

    @property
    def bdp_packets(self) -> Packets:
        """Bandwidth-delay product of the bottleneck, in data packets."""
        return self.bandwidth_bps * self.rtt_s / (8.0 * self.packet_size)
