"""Parking-lot topology: several bottlenecks in a row.

The paper's introduction notes that TCP does not equalize bandwidth between
flows crossing *multiple congested hops* and flows crossing one.  The
parking lot is the canonical topology for that question: ``n`` bottleneck
links in series, one "long" path traversing all of them, and per-hop cross
traffic traversing a single hop each.

This builder creates the routers, bottleneck links (each with its own RED
queue and monitor) and host attachment points; flows are wired with the
usual :func:`repro.cc.base.establish` via :meth:`long_path_pair` and
:meth:`cross_pair`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.dumbbell import HostPair
from repro.net.link import Link
from repro.net.monitor import FlowAccountant, LinkMonitor
from repro.net.node import Node
from repro.net.queue import DropTailQueue, QueueDiscipline
from repro.net.red import red_for_bdp
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry import active_recorder
from repro.units import BitsPerSecond, Bytes, Seconds

__all__ = ["ParkingLot"]


class ParkingLot:
    """n-hop chain of bottlenecks with per-hop cross-traffic attach points.

    Routers are R0 ... Rn; hop i is the (congested) link Ri -> Ri+1, with an
    uncongested reverse link for feedback.  The long path enters at R0 and
    exits at Rn; cross pair i enters at Ri and exits at Ri+1.
    """

    def __init__(
        self,
        sim: Simulator,
        hops: int,
        bandwidth_bps: BitsPerSecond,
        rtt_s: Seconds,
        packet_size: Bytes = 1000,
        queue_factory: Optional[Callable[[], QueueDiscipline]] = None,
        access_factor: float = 20.0,
        rng: Optional[RngRegistry] = None,
    ):
        if hops < 1:
            raise ValueError("need at least one hop")
        self.sim = sim
        self.hops = hops
        self.bandwidth_bps = bandwidth_bps
        self.rtt_s = rtt_s
        self.packet_size = packet_size
        self.rng = rng if rng is not None else RngRegistry(0)
        self._next_address = 0
        self._next_flow_id = 0

        if queue_factory is None:
            def queue_factory() -> QueueDiscipline:
                return red_for_bdp(
                    bandwidth_bps,
                    rtt_s,
                    packet_size=packet_size,
                    rng=self.rng.stream("red"),
                )

        # Per-hop propagation so that a single hop plus its access links
        # has about rtt_s of round-trip delay (cross flows see ~rtt_s; the
        # long path sees proportionally more, as in the classic setup).
        self._access_delay = rtt_s / 8.0
        hop_delay = rtt_s / 4.0
        self._access_bw = access_factor * bandwidth_bps

        self.telemetry = active_recorder()
        self.routers = [self._new_node(f"R{i}") for i in range(hops + 1)]
        self.links: list[Link] = []
        self.reverse_links: list[Link] = []
        self.monitors: list[LinkMonitor] = []
        for i in range(hops):
            forward = Link(
                sim, bandwidth_bps, hop_delay, queue_factory(), name=f"hop{i}"
            )
            forward.connect(self.routers[i + 1].receive)
            backward = Link(
                sim,
                bandwidth_bps,
                hop_delay,
                DropTailQueue(100_000),
                name=f"hop{i}_rev",
            )
            backward.connect(self.routers[i].receive)
            self.links.append(forward)
            self.reverse_links.append(backward)
            monitor = LinkMonitor(sim, f"hop{i}", recorder=self.telemetry)
            monitor.attach(forward)
            self.monitors.append(monitor)
        self.accountant = FlowAccountant(sim, recorder=self.telemetry)

    # Internals -----------------------------------------------------------------

    def _new_node(self, name: str) -> Node:
        node = Node(self.sim, self._next_address, name)
        self._next_address += 1
        return node

    def _attach_host(self, node: Node, router: Node) -> None:
        uplink = Link(
            self.sim,
            self._access_bw,
            self._access_delay,
            DropTailQueue(100_000),
            name=f"{node.name}->{router.name}",
        )
        uplink.connect(router.receive)
        node.set_default_route(uplink)
        downlink = Link(
            self.sim,
            self._access_bw,
            self._access_delay,
            DropTailQueue(100_000),
            name=f"{router.name}->{node.name}",
        )
        downlink.connect(node.receive)
        router.add_route(node.address, downlink)

    def _route_span(self, src_node: Node, dst_node: Node, first: int, last: int) -> None:
        """Install forward routes over hops [first, last) and the reverse."""
        for i in range(first, last):
            self.routers[i].add_route(dst_node.address, self.links[i])
        for i in range(last, first, -1):
            self.routers[i].add_route(src_node.address, self.reverse_links[i - 1])

    # Public API -----------------------------------------------------------------

    def new_flow_id(self) -> int:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        return flow_id

    def long_path_pair(self) -> HostPair:
        """Source at R0, destination at Rn: crosses every bottleneck."""
        return self.span_pair(0, self.hops)

    def cross_pair(self, hop: int) -> HostPair:
        """Source at R(hop), destination at R(hop+1): one bottleneck."""
        if not 0 <= hop < self.hops:
            raise ValueError(f"hop must be in [0, {self.hops})")
        return self.span_pair(hop, hop + 1)

    def span_pair(self, first_hop: int, last_hop: int) -> HostPair:
        """A pair whose data traverses hops [first_hop, last_hop)."""
        if not 0 <= first_hop < last_hop <= self.hops:
            raise ValueError("invalid hop span")
        source = self._new_node(f"s{first_hop}-{last_hop}")
        destination = self._new_node(f"d{first_hop}-{last_hop}")
        self._attach_host(source, self.routers[first_hop])
        self._attach_host(destination, self.routers[last_hop])
        self._route_span(source, destination, first_hop, last_hop)
        return HostPair(source, destination, forward=True)
