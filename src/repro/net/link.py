"""A unidirectional bandwidth + propagation-delay link with a queue.

The link is the only place in the simulator where packets take time:
serialization at ``bandwidth_bps`` plus a fixed propagation ``delay_s``.
Packets that arrive while the transmitter is busy wait in the attached
:class:`~repro.net.queue.QueueDiscipline`, which is where all congestion
losses happen.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.queue import DropTailQueue, QueueDiscipline
from repro.sim.engine import Simulator
from repro.contracts import NonNegRatio, NonNegSeconds, PositiveRate
from repro.units import Bytes, Seconds

__all__ = ["Link"]


class Link:
    """Point-to-point link feeding packets to a receiver callback.

    Parameters
    ----------
    sim:
        The simulation kernel.
    bandwidth_bps:
        Transmission rate in bits per second.
    delay_s:
        One-way propagation delay in seconds.
    queue:
        Queueing discipline; DropTail with a generous buffer by default.
    name:
        Label used in monitors and debugging output.

    Notes
    -----
    The packet being serialized is *dequeued* from the queue for the
    duration of its transmission and exposed as :attr:`in_service`
    (``None`` while the link is idle).  Total occupancy behind a busy
    link is therefore ``len(link.queue) + 1``: ``capacity_pkts`` waiting
    packets plus the one in service.  See
    :class:`~repro.net.queue.QueueDiscipline` for the accounting
    contract.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: PositiveRate,
        delay_s: NonNegSeconds,
        queue: Optional[QueueDiscipline] = None,
        name: str = "link",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue = queue if queue is not None else DropTailQueue(1000)
        self.queue.bind_clock(lambda: sim.now)
        self.name = name
        self._receiver: Optional[Callable[[Packet], None]] = None
        self._busy = False
        self.in_service: Optional[Packet] = None
        self.bytes_sent = 0
        self.packets_sent = 0
        self._taps: list[Callable[[Packet], None]] = []
        # Per-packet constants, hoisted off the transmission fast path.
        self._tx_per_byte = 8.0 / bandwidth_bps

    def connect(self, receiver: Callable[[Packet], None]) -> None:
        """Set the downstream receiver (a node's or agent's receive)."""
        self._receiver = receiver

    def add_tap(self, tap: Callable[[Packet], None]) -> None:
        """Register a departure tap, called once per transmitted packet.

        Taps fire after ``bytes_sent``/``packets_sent`` are updated and
        before the packet is scheduled for propagation.  This is the
        sanctioned hook for monitors; it replaces the old practice of
        monkey-patching ``_transmission_done``.
        """
        self._taps.append(tap)

    def send(self, packet: Packet) -> None:
        """Offer a packet to the link; it queues, serializes, propagates."""
        if self._receiver is None:
            raise RuntimeError(f"link {self.name!r} is not connected")
        queue = self.queue
        if (
            not self._busy
            and queue.bypass_idle
            and not queue._buffer
            and queue.telemetry is None
            and queue.observer is None
        ):
            # Idle-link fast path: a packet arriving at an idle link with
            # an empty passive queue would be enqueued and immediately
            # dequeued by _start_transmission.  Skip the round trip; this
            # is the common case on over-provisioned access links.
            # Only unobserved queues that declare themselves side-effect
            # free take it (RED must see every arrival for its average
            # estimator; monitored queues must count every arrival).
            packet.enqueued_at = self.sim.now
            self._busy = True
            self.in_service = packet
            self.sim.call_in(
                packet.size * self._tx_per_byte, self._transmission_done, packet
            )
            return
        if queue.enqueue(packet) and not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            self.in_service = None
            return
        self._busy = True
        self.in_service = packet
        # Fire-and-forget: per-packet link events are never cancelled.
        self.sim.call_in(
            packet.size * self._tx_per_byte, self._transmission_done, packet
        )

    def _transmission_done(self, packet: Packet) -> None:
        self.bytes_sent += packet.size
        self.packets_sent += 1
        if self._taps:
            for tap in self._taps:
                tap(packet)
        self.sim.call_in(self.delay_s, self._receiver, packet)
        self._start_transmission()

    def utilization(
        self, start: Seconds, end: Seconds, bytes_in_window: Bytes
    ) -> NonNegRatio:
        """Fraction of capacity used by ``bytes_in_window`` over [start, end)."""
        capacity_bytes = self.bandwidth_bps * (end - start) / 8.0
        return bytes_in_window / capacity_bytes if capacity_bytes > 0 else 0.0
