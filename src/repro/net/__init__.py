"""Network substrate: packets, queues, RED, links, nodes, dumbbell, taps."""

from repro.net.droppers import (
    BernoulliDropper,
    CountBasedDropper,
    CutoffDropper,
    Dropper,
    TimedDropper,
    PeriodicDropper,
    PhaseDropper,
    mild_bursty_pattern,
    severe_bursty_phases,
)
from repro.net.dumbbell import Dumbbell, HostPair
from repro.net.link import Link
from repro.net.monitor import FlowAccountant, LinkMonitor
from repro.net.node import Node
from repro.net.packet import ACK, DATA, FEEDBACK, Packet
from repro.net.paths import single_path
from repro.net.queue import DropTailQueue, QueueDiscipline, QueueProbes
from repro.net.red import REDQueue, red_for_bdp

__all__ = [
    "ACK",
    "DATA",
    "FEEDBACK",
    "BernoulliDropper",
    "CountBasedDropper",
    "CutoffDropper",
    "DropTailQueue",
    "Dropper",
    "Dumbbell",
    "FlowAccountant",
    "HostPair",
    "Link",
    "LinkMonitor",
    "Node",
    "Packet",
    "PeriodicDropper",
    "PhaseDropper",
    "QueueDiscipline",
    "QueueProbes",
    "REDQueue",
    "TimedDropper",
    "mild_bursty_pattern",
    "red_for_bdp",
    "single_path",
    "severe_bursty_phases",
]
