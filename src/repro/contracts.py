"""Declarative range contracts: the numeric invariants the paper relies on.

The reproduction's claims rest on quantities that must stay inside known
ranges — loss-event rates and drop probabilities in ``[0, 1]``, send
rates non-negative, RTTs strictly positive, congestion windows never
below one segment (Bansal, Balakrishnan, Floyd & Shenker, SIGCOMM 2001).
This module gives those ranges first-class names:

* :class:`Range` — a closed/open interval with a ``contains`` check;
* ``Annotated`` aliases (:data:`Probability`, :data:`NonNegRate`,
  :data:`PositiveSeconds`, ...) that compose a :class:`repro.units.Unit`
  with a :class:`Range`, so one annotation feeds both the U-rules
  (units of measure) and the I-rules (interval analysis) of simlint;
* :func:`checked` — optional *debug* enforcement of the contracts at
  runtime, gated by ``REPRO_CONTRACTS=1``.

Like the unit aliases, the contract aliases are plain ``float`` at
runtime (``Annotated`` metadata is erased), so annotating a signature
can never change behavior.  Their static value is what matters:
simlint's interval abstract interpreter (see
``repro/lint/analysis/intervals.py`` and ``docs/contracts.md``) seeds
parameter intervals from these ranges, proves division safety (I001),
flags values that provably escape a contract (I002), and detects
clamp/annotation drift (I004).

Debug enforcement
-----------------
``@checked`` wraps a function so every ``Range``-annotated argument and
the return value are validated, raising :class:`ContractViolation` on
escape.  The gate is evaluated **at decoration time**: when
``REPRO_CONTRACTS`` is unset the original function object is returned
unchanged, so the disabled mode costs literally nothing — not even an
extra frame.  CI runs fig04 and fig14 under ``REPRO_CONTRACTS=1`` and
asserts the tables stay byte-identical to the default mode.
"""

from __future__ import annotations

import functools
import inspect
import math
import os
import typing
from dataclasses import dataclass
from typing import Annotated, Final

from repro.units import (
    BIT_PER_SECOND,
    BYTE,
    PACKET,
    PACKET_PER_SECOND,
    RATIO,
    SECOND,
    Unit,
)

__all__ = [
    "ALIAS_RANGES",
    "ALIAS_UNITS",
    "ContractViolation",
    "CwndPackets",
    "NonNegPps",
    "NonNegRate",
    "NonNegRatio",
    "NonNegSeconds",
    "PositiveBytes",
    "PositiveRate",
    "PositiveRatio",
    "PositiveSeconds",
    "Probability",
    "Range",
    "checked",
    "contracts_enabled",
]


@dataclass(frozen=True)
class Range:
    """A numeric interval contract, with optionally open endpoints.

    ``Range(0.0, 1.0)`` is the closed unit interval ``[0, 1]``;
    ``Range(0.0, math.inf, lo_open=True)`` is ``(0, inf]`` — "strictly
    positive".  Infinite endpoints are permissive: ``hi=math.inf``
    admits ``math.inf`` itself (TCP-equation rates legitimately return
    infinity as loss goes to zero).  NaN never satisfies any contract.
    """

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("Range endpoints cannot be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty Range: lo={self.lo} > hi={self.hi}")

    def contains(self, value: float) -> bool:
        """True when ``value`` satisfies the contract."""
        if math.isnan(value):
            return False
        if value < self.lo or (value == self.lo and self.lo_open):
            return False
        if value > self.hi or (value == self.hi and self.hi_open):
            return False
        return True

    def __str__(self) -> str:
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo:g}, {self.hi:g}{right}"


# -- The contract aliases used on public signatures --------------------------
#
# Each alias carries a Unit (consumed by the U-rules) and a Range
# (consumed by the I-rules and by @checked).  All are float-based, so
# mypy sees plain floats and integer arguments annotate cleanly.

#: A probability or loss-event rate: ``[0, 1]``, dimensionless.
Probability = Annotated[float, RATIO, Range(0.0, 1.0)]
#: A send/receive/bottleneck rate in bit/s: ``[0, inf]``.
NonNegRate = Annotated[float, BIT_PER_SECOND, Range(0.0, math.inf)]
#: A link/bottleneck bandwidth in bit/s: strictly positive, ``(0, inf]``.
PositiveRate = Annotated[float, BIT_PER_SECOND, Range(0.0, math.inf, lo_open=True)]
#: A packet rate in pkt/s: ``[0, inf]``.
NonNegPps = Annotated[float, PACKET_PER_SECOND, Range(0.0, math.inf)]
#: A duration or timestamp that must be strictly positive: ``(0, inf]``.
PositiveSeconds = Annotated[float, SECOND, Range(0.0, math.inf, lo_open=True)]
#: A duration or timestamp that may be zero: ``[0, inf]``.
NonNegSeconds = Annotated[float, SECOND, Range(0.0, math.inf)]
#: A strictly positive byte count (packet sizes, thresholds): ``(0, inf]``.
PositiveBytes = Annotated[float, BYTE, Range(0.0, math.inf, lo_open=True)]
#: A congestion window in packets: never below one segment, ``[1, inf]``.
CwndPackets = Annotated[float, PACKET, Range(1.0, math.inf)]
#: A strictly positive dimensionless factor: ``(0, inf]``.
PositiveRatio = Annotated[float, RATIO, Range(0.0, math.inf, lo_open=True)]
#: A non-negative dimensionless factor (rates that may underflow to 0).
NonNegRatio = Annotated[float, RATIO, Range(0.0, math.inf)]

#: Alias leaf name -> Unit, for simlint's name-based annotation
#: resolution (mirrors ``repro.lint.analysis.unitcheck._ALIAS_UNITS``;
#: ``tests/test_contracts.py`` pins these against the aliases above).
ALIAS_UNITS: Final[dict[str, Unit]] = {
    "Probability": RATIO,
    "NonNegRate": BIT_PER_SECOND,
    "NonNegPps": PACKET_PER_SECOND,
    "NonNegRatio": RATIO,
    "PositiveRate": BIT_PER_SECOND,
    "PositiveSeconds": SECOND,
    "NonNegSeconds": SECOND,
    "PositiveBytes": BYTE,
    "CwndPackets": PACKET,
    "PositiveRatio": RATIO,
}

#: Alias leaf name -> Range, the other half of the metadata.
ALIAS_RANGES: Final[dict[str, Range]] = {
    "Probability": Range(0.0, 1.0),
    "NonNegRate": Range(0.0, math.inf),
    "NonNegPps": Range(0.0, math.inf),
    "NonNegRatio": Range(0.0, math.inf),
    "PositiveRate": Range(0.0, math.inf, lo_open=True),
    "PositiveSeconds": Range(0.0, math.inf, lo_open=True),
    "NonNegSeconds": Range(0.0, math.inf),
    "PositiveBytes": Range(0.0, math.inf, lo_open=True),
    "CwndPackets": Range(1.0, math.inf),
    "PositiveRatio": Range(0.0, math.inf, lo_open=True),
}


class ContractViolation(ValueError):
    """A runtime value escaped its declared :class:`Range` contract."""


def contracts_enabled() -> bool:
    """True when ``REPRO_CONTRACTS=1`` requests debug enforcement."""
    return os.environ.get("REPRO_CONTRACTS", "") == "1"


def _annotation_range(annotation: object) -> "Range | None":
    """The :class:`Range` carried by an ``Annotated`` alias, if any."""
    for meta in getattr(annotation, "__metadata__", ()):
        if isinstance(meta, Range):
            return meta
    return None


def _contract_table(fn: "typing.Callable") -> "dict[str, Range]":
    """Parameter/return name -> Range for every contracted annotation."""
    try:
        hints = typing.get_type_hints(fn, include_extras=True)
    except Exception:  # unresolvable forward refs: nothing to enforce
        return {}
    table: dict[str, Range] = {}
    for name, annotation in hints.items():
        rng = _annotation_range(annotation)
        if rng is not None:
            table[name] = rng
    return table


def checked(fn: "typing.Callable") -> "typing.Callable":
    """Enforce this function's :class:`Range` contracts in debug mode.

    With ``REPRO_CONTRACTS`` unset (the default), returns ``fn``
    unchanged — zero overhead, decided once at import time.  With
    ``REPRO_CONTRACTS=1``, every call validates the contracted
    arguments and the return value, raising :class:`ContractViolation`
    naming the function, parameter, offending value and range.
    """
    if not contracts_enabled():
        return fn
    contracts = _contract_table(fn)
    if not contracts:
        return fn
    signature = inspect.signature(fn)
    return_contract = contracts.get("return")

    @functools.wraps(fn)
    def wrapper(*args: object, **kwargs: object) -> object:
        bound = signature.bind(*args, **kwargs)
        bound.apply_defaults()
        for name, value in bound.arguments.items():
            rng = contracts.get(name)
            if rng is None or not isinstance(value, (int, float)):
                continue
            if not rng.contains(float(value)):
                raise ContractViolation(
                    f"{fn.__qualname__}(): argument {name}={value!r} "
                    f"violates its contract {rng}"
                )
        result = fn(*args, **kwargs)
        if return_contract is not None and isinstance(result, (int, float)):
            if not return_contract.contains(float(result)):
                raise ContractViolation(
                    f"{fn.__qualname__}(): return value {result!r} "
                    f"violates its contract {return_contract}"
                )
        return result

    return wrapper
