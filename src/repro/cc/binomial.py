"""Window-update rules: AIMD and the binomial generalization.

Binomial congestion control (Bansal & Balakrishnan, Infocom 2001) updates
the window W as

    increase per RTT without loss:  W <- W + a / W^k
    decrease on a loss event:       W <- W - b * W^l

AIMD is the (k=0, l=1) member.  A binomial algorithm is TCP-compatible iff
k + l = 1 (with suitable a, b) and slowly-responsive for l < 1.  The paper
studies SQRT (k = l = 1/2) and IIAD (k = 1, l = 0).

TCP-compatible constants: for AIMD we use the paper's a = 4(2b - b^2)/3.
For k > 0 the deterministic sawtooth gives, to leading order in 1/W, a mean
rate of sqrt(a/(bp)) packets/RTT regardless of k; matching sqrt(1.5/p)
yields a = 1.5 b, which we use for SQRT and IIAD (documented approximation —
the paper itself only requires "suitable values of a and b").
"""

from __future__ import annotations

from repro.cc.aimd import tcp_compatible_a
from repro.cc.base import WindowRule
from repro.contracts import CwndPackets, PositiveRatio, Probability
from repro.units import Packets

__all__ = [
    "BinomialRule",
    "AimdRule",
    "tcp_rule",
    "sqrt_rule",
    "iiad_rule",
    "binomial_compatible_a",
]

_MIN_WINDOW = 1.0


def binomial_compatible_a(k: float, l: float, b: PositiveRatio) -> float:
    """Leading-order TCP-compatible increase constant for k + l = 1."""
    if abs(k + l - 1.0) > 1e-9:
        raise ValueError("TCP-compatible binomial algorithms need k + l = 1")
    if b <= 0:
        raise ValueError("b must be positive")
    return 1.5 * b


class BinomialRule(WindowRule):
    """General binomial window rule with parameters (k, l, a, b)."""

    def __init__(self, k: float, l: float, a: float, b: PositiveRatio, name: str = ""):
        if a <= 0 or b <= 0:
            raise ValueError("a and b must be positive")
        if k < 0 or l < 0 or l > 1:
            raise ValueError("need k >= 0 and 0 <= l <= 1")
        self.k = k
        self.l = l
        self.a = a
        self.b = b
        self.name = name or f"binomial(k={k},l={l})"

    @property
    def is_tcp_compatible(self) -> bool:
        return abs(self.k + self.l - 1.0) < 1e-9

    @property
    def is_slowly_responsive(self) -> bool:
        """Reduces by less than half of the window on a loss event."""
        if self.l < 1:
            return True
        return self.b < 0.5

    def increase_per_ack(self, w: CwndPackets) -> Packets:
        # a / W^k per RTT spread over the ~W ACKs of that RTT.
        return self.a / (w ** (self.k + 1.0))

    def decrease(self, w: CwndPackets) -> CwndPackets:
        return max(w - self.b * (w ** self.l), _MIN_WINDOW)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name} a={self.a:.4g} b={self.b:.4g}>"


class AimdRule(BinomialRule):
    """AIMD(a, b): the k=0, l=1 binomial."""

    def __init__(self, a: float, b: Probability, name: str = ""):
        if not 0 < b < 1:
            raise ValueError("AIMD decrease factor b must be in (0, 1)")
        super().__init__(0.0, 1.0, a, b, name or f"aimd(a={a:.3g},b={b:.3g})")


def tcp_rule(b: Probability = 0.5) -> AimdRule:
    """TCP-compatible AIMD rule for decrease factor ``b`` (paper's a(b))."""
    return AimdRule(tcp_compatible_a(b), b, name=f"tcp({b:.4g})")


def sqrt_rule(b: Probability = 0.5) -> BinomialRule:
    """TCP-compatible SQRT rule: k = l = 1/2, decrease factor ``b``.

    SQRT(1/gamma) in the paper is ``sqrt_rule(gamma_to_b(gamma))``.
    """
    return BinomialRule(0.5, 0.5, binomial_compatible_a(0.5, 0.5, b), b, name=f"sqrt({b:.4g})")


def iiad_rule(b: PositiveRatio = 1.0, a: float | None = None) -> BinomialRule:
    """IIAD rule: k = 1, l = 0, additive decrease ``b`` packets.

    The default increase constant follows Bansal & Balakrishnan's IIAD
    configuration (a = 1), which sits slightly below the leading-order
    TCP-compatible value 1.5 b — matching the paper's observation that
    IIAD "achieves smoothness at the cost of throughput".  Pass
    ``a=binomial_compatible_a(1, 0, b)`` for the exactly-compatible
    variant.
    """
    if a is None:
        a = 1.0 * b
    return BinomialRule(1.0, 0.0, a, b, name=f"iiad({b:.4g})")
