"""Window-based TCP machinery with pluggable AIMD/binomial rules.

This is the paper's TCP(b) (and SQRT(b), IIAD when given a binomial rule):
the full TCP mechanism set —

* **self-clocking**: data transmission is triggered only by ACK arrivals
  (packet conservation), the property Section 4.1 identifies as decisive
  under sudden bandwidth reductions;
* **slow-start** with ssthresh;
* **fast retransmit / fast recovery** (NewReno-style partial ACKs);
* **retransmission timeout with exponential backoff**;

with the congestion-avoidance window update delegated to a
:class:`~repro.cc.base.WindowRule`: TCP(b) uses AIMD(4(2b-b^2)/3, b),
SQRT(b) and IIAD use binomial rules.

The model is packet-granular (sequence numbers count packets), like ns-2's
abstract TCP agents, and the receiver ACKs every packet (the paper models
TCP without delayed ACKs).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import ACK_SIZE, Receiver, Sender, WindowRule
from repro.cc.binomial import tcp_rule
from repro.net.packet import ACK, DATA, Packet
from repro.sim.engine import Simulator, Timer
from repro.telemetry.probes import CounterProbe, SeriesProbe
from repro.contracts import PositiveBytes, PositiveSeconds
from repro.units import Seconds

__all__ = ["TcpSender", "TcpSink", "new_tcp_flow"]


class TcpSender(Sender):
    """A TCP sender with a pluggable congestion-avoidance window rule.

    Parameters
    ----------
    sim:
        Simulation kernel.
    rule:
        Window update policy; defaults to standard TCP (AIMD b = 1/2).
    packet_size:
        Data packet size in bytes.
    max_packets:
        Transfer length in packets (None = long-lived flow).
    initial_ssthresh:
        Slow-start threshold at start-up (packets); effectively unbounded
        by default, as in ns-2.
    min_rto, max_rto, initial_rto:
        Retransmit timer bounds in seconds.
    max_cwnd:
        Optional hard window cap (packets).
    ecn:
        Negotiate ECN: data packets carry ECT and an ECN-Echo on an ACK
        triggers the window decrease without a retransmission (RFC 2481),
        at most once per window of data.
    limited_transmit:
        RFC 3042: send one new packet per duplicate ACK before the fast
        retransmit threshold, keeping the ACK clock alive for small
        windows (Appendix A cites this among the mechanisms placing real
        TCPs between the two analytic bounds).
    """

    DUPACK_THRESHOLD = 3
    MAX_BACKOFF = 64

    def __init__(
        self,
        sim: Simulator,
        rule: Optional[WindowRule] = None,
        packet_size: PositiveBytes = 1000,
        max_packets: Optional[int] = None,
        initial_ssthresh: float = 1e9,
        min_rto: PositiveSeconds = 0.2,
        max_rto: PositiveSeconds = 60.0,
        initial_rto: PositiveSeconds = 1.0,
        max_cwnd: Optional[float] = None,
        ecn: bool = False,
        limited_transmit: bool = False,
    ):
        super().__init__(sim, packet_size, max_packets)
        self.rule = rule if rule is not None else tcp_rule(0.5)
        self.cwnd = 1.0
        self.ssthresh = initial_ssthresh
        self.max_cwnd = max_cwnd
        # Sequence state (in packets).
        self.snd_una = 0
        self.snd_nxt = 0
        self._dupacks = 0
        self._in_recovery = False
        self._recover = -1
        # RTT estimation (Jacobson/Karels).
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.rto = initial_rto
        self._backoff = 1
        self._rto_timer = Timer(sim, self._on_timeout)
        # ECN and Limited Transmit options.
        self.ecn = ecn
        self.limited_transmit = limited_transmit
        self._ecn_reacted_until = -1  # react to ECE at most once per window
        # Statistics (telemetry channels; adopted as flow.<id>.* when
        # a recorder is capturing).
        self.fast_retransmits = 0
        self.loss_events = 0
        self.ecn_reactions = 0
        self._cwnd_probe = SeriesProbe("cwnd")
        self._timeout_events = CounterProbe("timeouts")
        self.probes["cwnd"] = self._cwnd_probe
        self.probes["timeouts"] = self._timeout_events

    # Lifecycle -----------------------------------------------------------------

    def _begin(self) -> None:
        self._try_send()

    def _halt(self) -> None:
        self._rto_timer.cancel()

    # Sending -------------------------------------------------------------------

    def window(self) -> float:
        """Usable window: inflated by dupacks while recovering (Reno)."""
        if self._in_recovery:
            return self.ssthresh + self._dupacks
        if self.limited_transmit and 0 < self._dupacks < self.DUPACK_THRESHOLD:
            # RFC 3042: one new packet per early duplicate ACK.
            return self.cwnd + self._dupacks
        return self.cwnd

    def inflight(self) -> int:
        return self.snd_nxt - self.snd_una

    def _try_send(self) -> None:
        if not self.running:
            return
        limit = int(self.window())
        while self.inflight() < limit:
            if self.max_packets is not None and self.snd_nxt >= self.max_packets:
                break
            self._send_data(self.snd_nxt)
            self.snd_nxt += 1
        if self.inflight() > 0 and not self._rto_timer.pending:
            self._arm_timer()

    def _send_data(self, seq: int) -> None:
        self._transmit(DATA, seq, self.packet_size, ect=self.ecn)
        self.packets_sent += 1

    def _arm_timer(self) -> None:
        self._rto_timer.schedule(min(self.rto * self._backoff, self.max_rto))

    # ACK processing --------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        if not self.running or packet.kind != ACK:
            return
        if self.ecn and packet.ece:
            self._handle_ecn_echo()
        if packet.ack_seq > self.snd_una:
            self._handle_new_ack(packet)
        elif self.inflight() > 0:
            self._handle_dupack()
        self._try_send()

    def _handle_new_ack(self, packet: Packet) -> None:
        newly_acked = packet.ack_seq - self.snd_una
        self.snd_una = packet.ack_seq
        # After a go-back-N rollback the cumulative ACK can jump past the
        # retransmission point (receiver-buffered data); never resend below
        # the highest acknowledged sequence.
        self.snd_nxt = max(self.snd_nxt, self.snd_una)
        self._backoff = 1
        if packet.echo > 0 and not self._in_recovery:
            self._sample_rtt(self.sim.now - packet.echo)
        if self._in_recovery:
            if self.snd_una > self._recover:
                self._in_recovery = False
                self._dupacks = 0
                self.cwnd = max(self.ssthresh, 1.0)
            else:
                # NewReno partial ACK: recover the next hole, stay in recovery.
                self._send_data(self.snd_una)
                self._arm_timer()
                return
        else:
            self._dupacks = 0
            self._open_window(newly_acked)
        if self.max_packets is not None and self.snd_una >= self.max_packets:
            self._rto_timer.cancel()
            self._complete()
            return
        if self.inflight() > 0:
            self._arm_timer()
        else:
            self._rto_timer.cancel()

    def _open_window(self, newly_acked: int) -> None:
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start
            else:
                self.cwnd += self.rule.increase_per_ack(self.cwnd)
        if self.max_cwnd is not None:
            self.cwnd = min(self.cwnd, self.max_cwnd)
        self._cwnd_probe.record(self.sim.now, self.cwnd)

    def _handle_ecn_echo(self) -> None:
        """RFC 2481 response: decrease once per window of data, without a
        retransmission (nothing was lost)."""
        if self._in_recovery or self.snd_una <= self._ecn_reacted_until:
            return
        self.ecn_reactions += 1
        self.loss_events += 1
        self.cwnd = max(self.rule.decrease(self.cwnd), 1.0)
        self.ssthresh = self.cwnd
        self._ecn_reacted_until = self.snd_nxt - 1
        self._cwnd_probe.record(self.sim.now, self.cwnd)

    def _handle_dupack(self) -> None:
        self._dupacks += 1
        if (
            not self._in_recovery
            and self._dupacks == self.DUPACK_THRESHOLD
            and self.snd_una > self._recover
        ):
            # The NewReno "recover" guard: duplicate ACKs caused by our own
            # go-back-N retransmissions after a timeout must not trigger a
            # second window reduction for the same loss window.
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        self.loss_events += 1
        self.fast_retransmits += 1
        self.ssthresh = max(self.rule.decrease(self.cwnd), 1.0)
        self._in_recovery = True
        self._recover = self.snd_nxt - 1
        self._send_data(self.snd_una)  # fast retransmit
        self._arm_timer()
        self._cwnd_probe.record(self.sim.now, self.ssthresh)

    # Timeout ---------------------------------------------------------------------

    def _on_timeout(self) -> None:
        if not self.running or self.inflight() == 0:
            return
        self._timeout_events.increment(self.sim.now)
        self.loss_events += 1
        self.ssthresh = max(self.rule.decrease(self.cwnd), 1.0)
        self.cwnd = 1.0
        self._in_recovery = False
        self._dupacks = 0
        self._backoff = min(self._backoff * 2, self.MAX_BACKOFF)
        # Go-back-N: without SACK, a timeout restarts transmission from the
        # last cumulative ACK.  Receiver-buffered segments make the
        # cumulative ACK jump over filled holes, so mostly holes are
        # actually re-sent; recover marks the pre-rollback maximum so the
        # duplicate ACKs this causes cannot trigger fast retransmit again.
        self._recover = self.snd_nxt - 1
        self.snd_nxt = self.snd_una + 1
        self._send_data(self.snd_una)
        self._arm_timer()
        self._cwnd_probe.record(self.sim.now, self.cwnd)

    # RTT estimation ----------------------------------------------------------------

    def _sample_rtt(self, sample: Seconds) -> None:
        if sample <= 0 or self._backoff > 1:
            return  # Karn: ignore samples that may belong to retransmissions
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            err = sample - self.srtt
            self.srtt += 0.125 * err
            self.rttvar += 0.25 * (abs(err) - self.rttvar)
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, self.min_rto), self.max_rto)

    # Introspection -------------------------------------------------------------------

    @property
    def timeouts(self) -> int:
        return self._timeout_events.count

    @property
    def cwnd_trace(self) -> list[tuple[float, float]]:
        """(time, window) samples taken at every window change."""
        return list(self._cwnd_probe)


class TcpSink(Receiver):
    """TCP receiver: cumulative ACKs, optional delayed ACKs and ECN echo.

    The paper models TCP *without* delayed acknowledgments, so
    ``delayed_acks`` defaults off; with it on, every second in-order packet
    is ACKed (with a 200 ms standalone-ACK timer), halving the ACK clock
    rate as real stacks do.

    ECN: a CE mark on an arriving data packet sets ECN-Echo on the next
    ACK.  We echo once per mark rather than running the full RFC 3168
    ECE/CWR handshake — with per-packet ACKs and a sender that reacts at
    most once per window, the simplification is behavior-preserving.
    """

    DELAYED_ACK_TIMEOUT = 0.2

    def __init__(
        self,
        sim: Simulator,
        packet_size: PositiveBytes = 1000,
        delayed_acks: bool = False,
    ):
        super().__init__(sim, packet_size)
        self.rcv_nxt = 0
        self._out_of_order: set[int] = set()
        self.delayed_acks = delayed_acks
        self._unacked_arrivals = 0
        self._pending_echo = -1.0
        self._pending_ece = False
        self._delack_timer = Timer(sim, self._flush_ack)
        self.acks_sent = 0

    def receive(self, packet: Packet) -> None:
        if packet.kind != DATA:
            return
        in_order = False
        if packet.seq == self.rcv_nxt:
            in_order = True
            self.rcv_nxt += 1
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.discard(self.rcv_nxt)
                self.rcv_nxt += 1
            self._deliver(packet)
        elif packet.seq > self.rcv_nxt:
            if packet.seq not in self._out_of_order:
                self._out_of_order.add(packet.seq)
                self._deliver(packet)
        # else: duplicate of already-delivered data; just re-ACK.
        if packet.ce:
            self._pending_ece = True
        self._pending_echo = packet.sent_at
        if self.delayed_acks and in_order and not self._out_of_order:
            # Delay in-order ACKs: every second packet, or a 200 ms timer.
            self._unacked_arrivals += 1
            if self._unacked_arrivals >= 2:
                self._flush_ack()
            elif not self._delack_timer.pending:
                self._delack_timer.schedule(self.DELAYED_ACK_TIMEOUT)
            return
        # Out-of-order data (dupacks) and the non-delayed mode ACK at once.
        self._flush_ack()

    def _flush_ack(self) -> None:
        self._delack_timer.cancel()
        self._unacked_arrivals = 0
        self._transmit(
            ACK,
            self.rcv_nxt,
            ACK_SIZE,
            ack_seq=self.rcv_nxt,
            echo=self._pending_echo,
            ece=self._pending_ece,
        )
        self._pending_ece = False
        self.acks_sent += 1


def new_tcp_flow(
    sim: Simulator,
    rule: Optional[WindowRule] = None,
    packet_size: PositiveBytes = 1000,
    max_packets: Optional[int] = None,
    delayed_acks: bool = False,
    **sender_kwargs,
) -> tuple[TcpSender, TcpSink]:
    """Convenience constructor for a sender/sink pair (not yet attached)."""
    sender = TcpSender(
        sim, rule=rule, packet_size=packet_size, max_packets=max_packets, **sender_kwargs
    )
    sink = TcpSink(sim, packet_size, delayed_acks=delayed_acks)
    return sender, sink
