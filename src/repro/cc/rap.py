"""RAP: the Rate Adaptation Protocol (Rejaie et al., Infocom 1999).

RAP is AIMD like TCP, but **rate-based**: a timer, not the ACK clock,
triggers transmissions.  The sender keeps a virtual window ``w`` (packets
per RTT) and transmits at ``w / srtt`` packets per second; each RTT without
loss adds ``a`` to ``w``, and each loss event multiplies ``w`` by
``(1 - b)``.  Standard RAP is RAP(1/2); the paper's RAP(1/gamma) uses
b = 1/gamma with the TCP-compatible a(b).

The crucial difference from TCP(b) for the paper's Section 4.1: RAP keeps
transmitting at the computed rate even when acknowledgments stop arriving —
it does not obey packet conservation — which is exactly what produces
persistent overload after a sudden bandwidth reduction.

Loss detection is ACK-based, as in RAP: the receiver ACKs every packet, and
a packet is declared lost when ACKs arrive for three packets sent after it,
or when its ACK is overdue by an RTO-like timeout.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.aimd import tcp_compatible_a
from repro.cc.base import ACK_SIZE, Receiver, Sender
from repro.net.packet import ACK, DATA, Packet
from repro.sim.engine import Simulator, Timer
from repro.telemetry.probes import SeriesProbe
from repro.contracts import NonNegPps, PositiveBytes, PositiveSeconds, Probability
from repro.units import Seconds

__all__ = ["RapSender", "RapSink", "new_rap_flow"]


class RapSender(Sender):
    """Rate-based AIMD sender.

    Parameters
    ----------
    b:
        Multiplicative decrease factor (RAP(1/gamma) -> b = 1/gamma).
    a:
        Additive increase per RTT; defaults to the paper's TCP-compatible
        a = 4(2b - b^2)/3.
    initial_rtt:
        RTT estimate before the first sample.
    """

    LOSS_REORDER_DEPTH = 3

    def __init__(
        self,
        sim: Simulator,
        b: Probability = 0.5,
        a: Optional[float] = None,
        packet_size: PositiveBytes = 1000,
        max_packets: Optional[int] = None,
        initial_rtt: PositiveSeconds = 0.5,
        conservative: bool = False,
    ):
        super().__init__(sim, packet_size, max_packets)
        if not 0 < b < 1:
            raise ValueError("b must be in (0, 1)")
        self.b = b
        self.a = a if a is not None else tcp_compatible_a(b)
        # Ablation of the paper's packet-conservation principle applied to
        # RAP: on a loss event, additionally clamp the virtual window to the
        # number of ACKs that actually arrived in the last RTT (the analogue
        # of TFRC's conservative_ option).
        self.conservative = conservative
        self._recent_acks: list[float] = []  # algorithm state, not telemetry
        self.w = 1.0  # virtual window, packets per RTT
        self.srtt = initial_rtt
        self._seq = 0
        self._outstanding: dict[int, float] = {}  # seq -> send time
        self._highest_acked = -1
        self._loss_in_round = False
        self._round_end = 0.0
        self._send_timer = Timer(sim, self._send_next)
        self._round_timer = Timer(sim, self._end_round)
        self.loss_events = 0
        self._rate_probe = SeriesProbe("rate")
        self.probes["rate"] = self._rate_probe

    # Rate bookkeeping -----------------------------------------------------------

    @property
    def rate_pps(self) -> NonNegPps:
        return self.w / self.srtt

    def _record_rate(self) -> None:
        self._rate_probe.record(self.sim.now, self.rate_pps)

    @property
    def rate_trace(self) -> list[tuple[float, float]]:
        return list(self._rate_probe)

    # Lifecycle ---------------------------------------------------------------------

    def _begin(self) -> None:
        self._record_rate()
        self._round_timer.schedule(self.srtt)
        self._send_next()

    def _halt(self) -> None:
        self._send_timer.cancel()
        self._round_timer.cancel()

    # Transmission (timer-driven: NOT self-clocked) -----------------------------------

    def _send_next(self) -> None:
        if not self.running:
            return
        if self.max_packets is not None and self._seq >= self.max_packets:
            return
        self._transmit(DATA, self._seq, self.packet_size)
        self._outstanding[self._seq] = self.sim.now
        self._seq += 1
        self.packets_sent += 1
        self._expire_stale()
        self._send_timer.schedule(1.0 / self.rate_pps)

    def _expire_stale(self) -> None:
        """Timeout-based loss detection: no ACK within several RTTs."""
        deadline = self.sim.now - 6.0 * self.srtt
        stale = [seq for seq, sent in self._outstanding.items() if sent < deadline]
        if stale:
            for seq in stale:
                del self._outstanding[seq]
            self._on_loss_event()

    # Per-RTT additive increase ----------------------------------------------------------

    def _end_round(self) -> None:
        if not self.running:
            return
        if not self._loss_in_round:
            self.w += self.a
            self._record_rate()
        self._loss_in_round = False
        self._round_timer.schedule(self.srtt)

    # ACK processing -----------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        if not self.running or packet.kind != ACK:
            return
        seq = packet.ack_seq
        sent_at = self._outstanding.pop(seq, None)
        if sent_at is not None:
            self._sample_rtt(self.sim.now - sent_at)
        if self.conservative:
            self._recent_acks.append(self.sim.now)
        self._highest_acked = max(self._highest_acked, seq)
        # RAP gap detection: an ACK for packet k means anything more than
        # LOSS_REORDER_DEPTH behind k that is still unACKed was lost.
        horizon = self._highest_acked - self.LOSS_REORDER_DEPTH
        lost = [s for s in self._outstanding if s < horizon]
        if lost:
            for s in lost:
                del self._outstanding[s]
            self._on_loss_event()
        if self.max_packets is not None and not self._outstanding and (
            self._seq >= self.max_packets
        ):
            self._complete()

    def _ack_rate_window(self) -> float:
        """ACKs received in the last RTT (the achieved bottleneck rate)."""
        cutoff = self.sim.now - self.srtt
        self._recent_acks = [t for t in self._recent_acks if t >= cutoff]
        return float(len(self._recent_acks))

    def _on_loss_event(self) -> None:
        """At most one multiplicative decrease per RTT (one loss event)."""
        if self._loss_in_round:
            return
        self._loss_in_round = True
        self.loss_events += 1
        self.w = max(self.w * (1.0 - self.b), 1.0)
        if self.conservative:
            # Packet conservation: never exceed what the path delivered.
            self.w = max(min(self.w, self._ack_rate_window()), 1.0)
        self._record_rate()

    def _sample_rtt(self, sample: Seconds) -> None:
        if sample <= 0:
            return
        self.srtt += 0.125 * (sample - self.srtt)


class RapSink(Receiver):
    """RAP receiver: one ACK per data packet, echoing its sequence number."""

    def receive(self, packet: Packet) -> None:
        if packet.kind != DATA:
            return
        self._deliver(packet)
        self._transmit(ACK, packet.seq, ACK_SIZE, ack_seq=packet.seq, echo=packet.sent_at)


def new_rap_flow(
    sim: Simulator,
    b: Probability = 0.5,
    packet_size: PositiveBytes = 1000,
    **sender_kwargs,
) -> tuple[RapSender, RapSink]:
    """Convenience constructor for a RAP sender/sink pair (not attached)."""
    sender = RapSender(sim, b=b, packet_size=packet_size, **sender_kwargs)
    sink = RapSink(sim, packet_size)
    return sender, sink
