"""TFRC: equation-based TCP-Friendly Rate Control (Floyd et al., SIGCOMM 2000).

The receiver measures the *loss event rate* as the inverse of the weighted
average of the most recent ``k`` loss intervals (packets between loss
events) and reports it, with the receive rate, once per RTT.  The sender
feeds the loss event rate into the Padhye TCP response function to compute
its allowed sending rate, and transmits on a timer at that rate.

TFRC(k) in the paper is the number of loss intervals averaged; the default
deployment configuration corresponds roughly to TFRC(6), and the paper
sweeps k from 1 to 256.

Two options studied by the paper are implemented:

* ``conservative`` — the paper's Section 4.1.1 *self-clocking* extension:
  for the RTT following a reported loss the send rate is capped at the
  reported receive rate, and otherwise (outside slow-start) at ``C`` times
  the receive rate (C = 1.1 in the paper's experiments).  This restores the
  packet-conservation principle and repairs TFRC(256)'s stabilization cost.
* ``history_discounting`` — RFC 3448 section 5.5: when the current
  (lossless) interval is much longer than the average, older intervals are
  discounted so the rate rises faster in a time of plenty.  The paper turns
  this *off* for the Figure 13 utilization study.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cc.base import ACK_SIZE, Receiver, Sender
from repro.cc.equations import padhye_rate_pps
from repro.contracts import (
    NonNegRate,
    NonNegSeconds,
    PositiveBytes,
    PositiveSeconds,
    Probability,
)
from repro.net.packet import DATA, FEEDBACK, Packet
from repro.sim.engine import Simulator, Timer
from repro.telemetry.probes import SeriesProbe
from repro.units import Seconds

__all__ = ["TfrcReport", "TfrcReceiver", "TfrcSender", "new_tfrc_flow", "interval_weights"]

# Maximum back-off interval: minimum rate of one packet per T_MBI seconds.
T_MBI = 64.0


def interval_weights(n: int) -> list[float]:
    """RFC 3448 loss-interval weights generalized to n intervals.

    The first half (most recent intervals) get weight 1; the rest decay
    linearly.  For n = 8 this is (1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2).
    """
    if n < 1:
        raise ValueError("need at least one interval")
    half = n // 2
    weights = []
    for i in range(n):
        if i < half:
            weights.append(1.0)
        else:
            weights.append(1.0 - (i - half + 1) / (n - half + 1.0))
    return weights


class TfrcReport:
    """Receiver feedback: loss event rate, receive rate, RTT echo."""

    __slots__ = ("p", "recv_rate_bps", "loss_reported", "echo", "hold")

    def __init__(
        self,
        p: Probability,
        recv_rate_bps: NonNegRate,
        loss_reported: bool,
        echo: Seconds,
        hold: NonNegSeconds,
    ):
        self.p = p
        self.recv_rate_bps = recv_rate_bps
        self.loss_reported = loss_reported
        self.echo = echo
        self.hold = hold


class LossHistory:
    """Loss-interval bookkeeping on the receiver side.

    An interval is the count of packets between the first losses of
    consecutive loss events; losses within one RTT of a loss event's start
    belong to the same event.
    """

    def __init__(self, n_intervals: int, history_discounting: bool = True):
        self.weights = interval_weights(n_intervals)
        self.n = n_intervals
        self.history_discounting = history_discounting
        self.closed: list[int] = []  # most recent first
        self.open_interval = 0
        self.loss_events = 0
        self._event_open_until = -math.inf

    def on_packet(self) -> None:
        self.open_interval += 1

    def on_loss(self, now: Seconds, rtt: Seconds) -> bool:
        """Record a lost packet; returns True if it starts a new loss event."""
        if now < self._event_open_until:
            return False  # same loss event
        self._event_open_until = now + rtt
        self.loss_events += 1
        if self.loss_events > 1:
            self.closed.insert(0, self.open_interval)
            del self.closed[self.n :]
        self.open_interval = 0
        return True

    def _weighted_average(
        self, intervals: list[float], multipliers: Optional[list[float]] = None
    ) -> float:
        used = min(len(intervals), self.n)
        if multipliers is None:
            multipliers = [1.0] * used
        total = 0.0
        norm = 0.0
        for i in range(used):
            weight = self.weights[i] * multipliers[i]
            total += weight * intervals[i]
            norm += weight
        return total / norm if norm > 0 else 0.0

    def average_interval(self) -> float:
        """Weighted average loss interval, in packets (0 when no history).

        Computed both with and without the current open interval, taking the
        larger (RFC 3448): a long lossless run should raise the average but
        a short one must not drag it down.  With history discounting, a very
        long open interval additionally shrinks the older intervals'
        *weights* (RFC 3448 section 5.5), so the time of plenty dominates
        the estimate sooner.
        """
        if not self.closed:
            return 0.0
        avg_closed = self._weighted_average([float(s) for s in self.closed])
        with_open = [float(self.open_interval)] + [float(s) for s in self.closed]
        multipliers = None
        if self.history_discounting and avg_closed > 0 and (
            self.open_interval > 2.0 * avg_closed
        ):
            discount = max(0.25, 2.0 * avg_closed / self.open_interval)
            multipliers = [1.0] + [discount] * (len(with_open) - 1)
        avg_with_open = self._weighted_average(with_open, multipliers)
        return max(avg_closed, avg_with_open)

    def loss_event_rate(self) -> Probability:
        avg = self.average_interval()
        if avg <= 0:
            return 0.0
        return min(1.0, 1.0 / avg)


class TfrcReceiver(Receiver):
    """TFRC receiver: loss detection, interval averaging, per-RTT feedback."""

    def __init__(
        self,
        sim: Simulator,
        n_intervals: int = 6,
        packet_size: PositiveBytes = 1000,
        history_discounting: bool = True,
        initial_rtt: PositiveSeconds = 0.5,
    ):
        super().__init__(sim, packet_size)
        self.history = LossHistory(n_intervals, history_discounting)
        self.rtt_estimate = initial_rtt  # piggybacked on data packets
        self.expected_seq = 0
        self._bytes_since_feedback = 0
        self._loss_since_feedback = False
        self._last_feedback_at: Optional[float] = None
        self._last_data_sent_at = -1.0
        self._last_data_arrival = -1.0
        self._feedback_timer = Timer(sim, self._send_feedback)

    def receive(self, packet: Packet) -> None:
        if packet.kind != DATA:
            return
        if isinstance(packet.info, float):
            self.rtt_estimate = packet.info
        if packet.seq > self.expected_seq:
            # The gap is lost; each lost packet may start a loss event.
            for _ in range(packet.seq - self.expected_seq):
                if self.history.on_loss(self.sim.now, self.rtt_estimate):
                    self._loss_since_feedback = True
            self.expected_seq = packet.seq + 1
        elif packet.seq == self.expected_seq:
            self.expected_seq += 1
        else:
            return  # late duplicate/reordered: already accounted as lost
        self.history.on_packet()
        self._bytes_since_feedback += packet.size
        self._last_data_sent_at = packet.sent_at
        self._last_data_arrival = self.sim.now
        self._deliver(packet)
        if self._last_feedback_at is None:
            self._send_feedback()
        elif self._loss_since_feedback and not self._recently_sent():
            # Expedite feedback when a loss event has just started.
            self._send_feedback()

    def _recently_sent(self) -> bool:
        assert self._last_feedback_at is not None
        return self.sim.now - self._last_feedback_at < self.rtt_estimate / 2.0

    def _send_feedback(self) -> None:
        if self._last_data_arrival < 0:
            return
        if self._bytes_since_feedback == 0:
            # RFC 3448: no feedback without data.  Reporting a zero receive
            # rate here would wrongly collapse a slow sender's rate via the
            # 2 * X_recv cap; wait for the next packet instead.
            self._feedback_timer.schedule(self.rtt_estimate)
            return
        now = self.sim.now
        elapsed = (
            now - self._last_feedback_at
            if self._last_feedback_at is not None
            else self.rtt_estimate
        )
        elapsed = max(elapsed, 1e-9)
        recv_rate = self._bytes_since_feedback * 8.0 / elapsed
        report = TfrcReport(
            p=self.history.loss_event_rate(),
            recv_rate_bps=recv_rate,
            loss_reported=self._loss_since_feedback,
            echo=self._last_data_sent_at,
            hold=now - self._last_data_arrival,
        )
        self._transmit(FEEDBACK, 0, ACK_SIZE, info=report)
        self._last_feedback_at = now
        self._bytes_since_feedback = 0
        self._loss_since_feedback = False
        self._feedback_timer.schedule(self.rtt_estimate)


class TfrcSender(Sender):
    """TFRC sender: equation-driven rate control.

    Parameters
    ----------
    conservative:
        Enable the paper's self-clocking extension (Section 4.1.1).
    conservative_c:
        The C constant capping the no-loss send rate at C x receive rate
        (paper: 1.1; the ns-2 default was 1.5).
    """

    def __init__(
        self,
        sim: Simulator,
        packet_size: PositiveBytes = 1000,
        max_packets: Optional[int] = None,
        initial_rtt: PositiveSeconds = 0.5,
        conservative: bool = False,
        conservative_c: float = 1.1,
        oscillation_prevention: bool = False,
    ):
        super().__init__(sim, packet_size, max_packets)
        if initial_rtt <= 0:
            raise ValueError("initial_rtt must be positive")
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if conservative_c < 1.0:
            raise ValueError("conservative C must be >= 1")
        self.conservative = conservative
        self.conservative_c = conservative_c
        # RFC 3448 section 4.5 (optional, off in the paper): scale the
        # instantaneous rate by R_sqmean / R_sample so a building queue
        # (rising RTT) throttles the sender before losses do, damping
        # rate/queue oscillations.
        self.oscillation_prevention = oscillation_prevention
        self._rtt_sqmean: Optional[float] = None
        self.srtt: Optional[float] = None
        self._initial_rtt = initial_rtt
        self.rate_bps = packet_size * 8.0 / initial_rtt  # one packet per RTT
        self.x_recv_bps = 0.0
        self.slow_start = True
        self.p = 0.0
        self._seq = 0
        self._send_timer = Timer(sim, self._send_next)
        self._no_feedback_timer = Timer(sim, self._no_feedback_expired)
        self._rate_probe = SeriesProbe("rate")
        self.probes["rate"] = self._rate_probe
        self.feedback_count = 0

    # Lifecycle -----------------------------------------------------------------

    def _begin(self) -> None:
        self._record_rate()
        self._no_feedback_timer.schedule(2.0)  # generous pre-feedback timeout
        self._send_next()

    def _halt(self) -> None:
        self._send_timer.cancel()
        self._no_feedback_timer.cancel()

    # Transmission ----------------------------------------------------------------

    @property
    def rtt(self) -> PositiveSeconds:
        return self.srtt if self.srtt is not None else self._initial_rtt

    def _min_rate_bps(self) -> NonNegRate:
        return self.packet_size * 8.0 / T_MBI

    def _record_rate(self) -> None:
        self._rate_probe.record(self.sim.now, self.rate_bps)

    @property
    def rate_trace(self) -> list[tuple[float, float]]:
        return list(self._rate_probe)

    def _send_next(self) -> None:
        if not self.running:
            return
        if self.max_packets is not None and self._seq >= self.max_packets:
            return
        # Data packets carry the sender's RTT estimate, which the receiver
        # needs to group losses into loss events (RFC 3448).
        self._transmit(DATA, self._seq, self.packet_size, info=self.rtt)
        self._seq += 1
        self.packets_sent += 1
        self._send_timer.schedule(self.packet_size * 8.0 / self.rate_bps)

    # Feedback processing -------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        if not self.running or packet.kind != FEEDBACK:
            return
        report = packet.info
        if not isinstance(report, TfrcReport):
            return
        self.feedback_count += 1
        self._update_rtt(packet, report)
        self.p = report.p
        self.x_recv_bps = report.recv_rate_bps
        self._update_rate(report)
        self._record_rate()
        # No-feedback timer: RFC 3448 uses max(4 RTT, 2s/X).
        timeout = max(4.0 * self.rtt, 2.0 * self.packet_size * 8.0 / self.rate_bps)
        self._no_feedback_timer.schedule(timeout)

    def _update_rtt(self, packet: Packet, report: TfrcReport) -> None:
        if report.echo <= 0:
            return
        sample = self.sim.now - report.echo - report.hold
        if sample <= 0:
            return
        if self.srtt is None:
            self.srtt = sample
        else:
            self.srtt = 0.9 * self.srtt + 0.1 * sample
        if self.oscillation_prevention:
            root = math.sqrt(sample)
            if self._rtt_sqmean is None:
                self._rtt_sqmean = root
            else:
                self._rtt_sqmean = 0.9 * self._rtt_sqmean + 0.1 * root
            self._last_rtt_sample = sample

    def _update_rate(self, report: TfrcReport) -> None:
        recv = max(report.recv_rate_bps, self._min_rate_bps())
        if report.p > 0 and self.slow_start:
            self.slow_start = False
        if self.slow_start:
            # No loss yet: double per feedback, capped at twice the receive
            # rate (TFRC's emulation of TCP slow-start).
            self.rate_bps = max(
                min(2.0 * self.rate_bps, 2.0 * recv), self._min_rate_bps()
            )
            return
        calc = self._equation_rate_bps(max(report.p, 1e-9))
        if self.conservative:
            if report.loss_reported:
                allowed = min(calc, recv)
            else:
                allowed = min(calc, self.conservative_c * recv)
        else:
            allowed = min(calc, 2.0 * recv)
        if (
            self.oscillation_prevention
            and self._rtt_sqmean is not None
            and getattr(self, "_last_rtt_sample", 0) > 0
        ):
            # RFC 3448 4.5: X_inst = X * R_sqmean / sqrt(R_sample).
            allowed *= self._rtt_sqmean / math.sqrt(self._last_rtt_sample)
        self.rate_bps = max(allowed, self._min_rate_bps())

    def _equation_rate_bps(self, p: Probability) -> NonNegRate:
        pps = padhye_rate_pps(p, self.rtt, rto_s=4.0 * self.rtt)
        return pps * self.packet_size * 8.0

    def _no_feedback_expired(self) -> None:
        if not self.running:
            return
        # Halve the allowed rate (RFC 3448 section 4.4).
        self.rate_bps = max(self.rate_bps / 2.0, self._min_rate_bps())
        self._record_rate()
        timeout = max(4.0 * self.rtt, 2.0 * self.packet_size * 8.0 / self.rate_bps)
        self._no_feedback_timer.schedule(timeout)


def new_tfrc_flow(
    sim: Simulator,
    n_intervals: int = 6,
    packet_size: PositiveBytes = 1000,
    conservative: bool = False,
    history_discounting: bool = True,
    oscillation_prevention: bool = False,
    **sender_kwargs,
) -> tuple[TfrcSender, TfrcReceiver]:
    """Convenience constructor for a TFRC(k) pair (not attached)."""
    sender = TfrcSender(
        sim,
        packet_size=packet_size,
        conservative=conservative,
        oscillation_prevention=oscillation_prevention,
        **sender_kwargs,
    )
    receiver = TfrcReceiver(
        sim,
        n_intervals=n_intervals,
        packet_size=packet_size,
        history_discounting=history_discounting,
    )
    return sender, receiver
