"""AIMD parameterization and TCP-compatibility relations.

An AIMD algorithm increases its window by ``a`` packets per RTT without
loss, and multiplies it by ``(1 - b)`` on a loss event.  The paper adopts
the Yang & Lam relation

    a = 4 (2b - b^2) / 3

for a TCP-compatible AIMD(a, b): with it, AIMD(a, b) matches TCP's
(a=1, b=1/2) response function.  The deterministic sawtooth model yields the
slightly different relation a = 3b / (2 - b); both give a = 1 at b = 1/2 and
both are provided, with the paper's as the default.

The paper's slowness parameter gamma maps to b = 1/gamma, i.e. TCP(1/gamma)
is AIMD with decrease factor 1/gamma plus the full TCP machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.contracts import Probability

__all__ = [
    "tcp_compatible_a",
    "deterministic_a",
    "AimdParams",
    "aimd_params",
    "gamma_to_b",
]


def tcp_compatible_a(b: Probability) -> float:
    """Paper's (Yang & Lam) TCP-compatible increase for decrease factor b."""
    if not 0 < b < 1:
        raise ValueError("b must be in (0, 1)")
    return 4.0 * (2.0 * b - b * b) / 3.0


def deterministic_a(b: Probability) -> float:
    """Deterministic-sawtooth TCP-compatible increase: a = 3b / (2 - b)."""
    if not 0 < b < 1:
        raise ValueError("b must be in (0, 1)")
    return 3.0 * b / (2.0 - b)


def gamma_to_b(gamma: float) -> Probability:
    """Map the paper's slowness parameter gamma to a decrease factor."""
    if gamma < 1:
        raise ValueError("gamma must be >= 1")
    return 1.0 / gamma


@dataclass(frozen=True)
class AimdParams:
    """An (a, b) pair with convenience properties."""

    a: float
    b: Probability

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ValueError("a must be positive")
        if not 0 < self.b < 1:
            raise ValueError("b must be in (0, 1)")

    @property
    def decrease_ratio(self) -> Probability:
        """Window multiplier applied on a loss event: 1 - b."""
        return 1.0 - self.b

    @property
    def is_slowly_responsive(self) -> bool:
        """Slower than TCP: reduces by less than half on a loss."""
        return self.b < 0.5

    @property
    def smoothness(self) -> Probability:
        """Paper's steady-state smoothness metric for AIMD: 1 - b."""
        return 1.0 - self.b


def aimd_params(b: Probability, relation: str = "yang-lam") -> AimdParams:
    """TCP-compatible AIMD parameters for decrease factor ``b``.

    ``relation`` selects the a(b) rule: ``"yang-lam"`` (the paper's
    a = 4(2b - b^2)/3) or ``"deterministic"`` (a = 3b/(2 - b)).
    """
    if relation == "yang-lam":
        return AimdParams(tcp_compatible_a(b), b)
    if relation == "deterministic":
        return AimdParams(deterministic_a(b), b)
    raise ValueError(f"unknown relation {relation!r}")
