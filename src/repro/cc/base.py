"""Agent plumbing shared by every congestion-control protocol.

A flow is a :class:`Sender` on one host talking to a :class:`Receiver` on
another.  Senders own the congestion control state; receivers generate the
protocol's feedback (cumulative ACKs for TCP, per-packet ACKs for RAP,
once-per-RTT reports for TFRC).  :func:`establish` wires a sender/receiver
pair across a :class:`~repro.net.dumbbell.Dumbbell` and registers delivery
accounting.

The abstract :class:`WindowRule` captures a window-update policy — the only
thing that differs between TCP(b), SQRT(b) and IIAD — so the full TCP
machinery in :mod:`repro.cc.tcp` is written once.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.net.dumbbell import Dumbbell, HostPair
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.telemetry import active_recorder
from repro.telemetry.probes import Probe
from repro.contracts import CwndPackets, NonNegSeconds, PositiveBytes
from repro.units import Packets, Seconds

__all__ = ["WindowRule", "Endpoint", "Sender", "Receiver", "establish"]

ACK_SIZE = 40


class WindowRule(abc.ABC):
    """A congestion-window update policy.

    The TCP machinery calls :meth:`increase_per_ack` once per new ACK (so a
    per-RTT increase of I(w) becomes I(w)/w per ACK) and :meth:`decrease`
    once per loss event.
    """

    name = "abstract"

    @abc.abstractmethod
    def increase_per_ack(self, w: CwndPackets) -> Packets:
        """Additive window increment applied for one new ACK."""

    @abc.abstractmethod
    def decrease(self, w: CwndPackets) -> CwndPackets:
        """New window after a loss event (>= 1)."""


class Endpoint:
    """One end of a flow: owns the node binding and packet construction."""

    def __init__(self, sim: Simulator, packet_size: PositiveBytes = 1000):
        self.sim = sim
        self.packet_size = packet_size
        self.node: Optional[Node] = None
        self.peer_address: int = -1
        self.flow_id: int = -1

    def attach(self, node: Node, peer_address: int, flow_id: int) -> None:
        """Bind this endpoint to a node and its peer's address."""
        self.node = node
        self.peer_address = peer_address
        self.flow_id = flow_id
        node.bind_flow(flow_id, self.receive)

    def _transmit(
        self,
        kind: str,
        seq: int,
        size: int,
        ack_seq: int = -1,
        echo: Seconds = -1.0,
        info=None,
        ect: bool = False,
        ece: bool = False,
    ) -> Packet:
        assert self.node is not None, "endpoint is not attached"
        packet = Packet(
            flow_id=self.flow_id,
            kind=kind,
            seq=seq,
            size=size,
            src=self.node.address,
            dst=self.peer_address,
            sent_at=self.sim.now,
            ack_seq=ack_seq,
            echo=echo,
            info=info,
            ect=ect,
        )
        packet.ece = ece
        self.node.send(packet)
        return packet

    def receive(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Sender(Endpoint):
    """Base class for sending agents (the congestion-controlled side).

    Subclasses implement :meth:`_begin` (kick off transmission) and
    :meth:`receive` (process ACK/feedback packets).  ``max_packets`` bounds
    the transfer (for flash-crowd style short flows); None means long-lived.
    """

    def __init__(
        self,
        sim: Simulator,
        packet_size: PositiveBytes = 1000,
        max_packets: Optional[int] = None,
    ):
        super().__init__(sim, packet_size)
        self.max_packets = max_packets
        self.running = False
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self.packets_sent = 0
        self.on_complete: Optional[Callable[["Sender"], None]] = None
        # Telemetry channels this sender emits (cwnd, rate, timeouts...).
        # Subclasses register probes here; establish() adopts them into
        # the active recorder as flow.<id>.<key>.
        self.probes: dict[str, Probe] = {}

    def start(self) -> None:
        """Begin transmitting now."""
        if self.running:
            return
        self.running = True
        self.started_at = self.sim.now
        self._begin()

    def start_at(self, time: NonNegSeconds) -> None:
        """Schedule :meth:`start` at an absolute simulation time."""
        self.sim.at(time, self.start)

    def stop(self) -> None:
        """Stop transmitting (timers are disarmed by subclasses)."""
        if not self.running:
            return
        self.running = False
        self.stopped_at = self.sim.now
        self._halt()

    def stop_at(self, time: NonNegSeconds) -> None:
        self.sim.at(time, self.stop)

    def _begin(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _halt(self) -> None:
        """Subclasses cancel their timers here."""

    def _complete(self) -> None:
        """Called by subclasses when a bounded transfer finishes."""
        self.stop()
        if self.on_complete is not None:
            self.on_complete(self)


class Receiver(Endpoint):
    """Base class for receiving agents.

    ``on_data`` callbacks fire for every delivered data packet; the
    dumbbell's :class:`~repro.net.monitor.FlowAccountant` subscribes here.
    """

    def __init__(self, sim: Simulator, packet_size: PositiveBytes = 1000):
        super().__init__(sim, packet_size)
        self.on_data: list[Callable[[Packet], None]] = []
        self.packets_received = 0
        self.bytes_received = 0

    def _deliver(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size
        for callback in self.on_data:
            callback(packet)


def establish(
    net: Dumbbell,
    sender: Sender,
    receiver: Receiver,
    forward: bool = True,
    pair: Optional[HostPair] = None,
) -> int:
    """Wire a sender/receiver pair across a dumbbell; returns the flow id.

    Creates a host pair (unless one is given), binds both endpoints, and
    registers the dumbbell's flow accountant for delivered-data accounting.
    """
    if pair is None:
        pair = net.add_host_pair(forward=forward)
    flow_id = net.new_flow_id()
    sender.attach(pair.source, pair.destination.address, flow_id)
    receiver.attach(pair.destination, pair.source.address, flow_id)
    receiver.on_data.append(net.accountant.on_deliver)
    recorder = active_recorder()
    if recorder is not None:
        for key, probe in sender.probes.items():
            recorder.adopt(f"flow.{flow_id}.{key}", probe)
    return flow_id
