"""TEAR: TCP Emulation At Receivers (Rhee, Ozdemir & Yi, 2000).

TEAR moves TCP's window computation to the *receiver*: on every arriving
packet the receiver updates an emulated congestion window exactly as a TCP
sender would (slow-start, congestion avoidance, multiplicative decrease on
loss events), but instead of using the window to clock transmissions it
divides a smoothed window average by the RTT and feeds that *rate* back to
the sender.  The sender simply transmits at the reported rate.

The smoothing is an average of the emulated window over recent congestion
epochs (rounds), which is what makes TEAR TCP-compatible yet
slowly-responsive under static conditions.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.cc.base import ACK_SIZE, Receiver, Sender
from repro.net.packet import DATA, FEEDBACK, Packet
from repro.sim.engine import Simulator, Timer
from repro.telemetry.probes import SeriesProbe
from repro.contracts import NonNegRate, PositiveBytes, PositiveSeconds, Probability

__all__ = ["TearReceiver", "TearSender", "new_tear_flow"]


class TearReceiver(Receiver):
    """Receiver-side TCP window emulation plus epoch-averaged rate feedback.

    Parameters
    ----------
    epochs:
        Number of recent rounds over which the emulated window is averaged
        (the smoothing depth; higher = more slowly responsive).
    beta:
        Multiplicative decrease factor applied to the emulated window per
        loss event (TCP-equivalent: 0.5).
    """

    def __init__(
        self,
        sim: Simulator,
        epochs: int = 8,
        beta: Probability = 0.5,
        packet_size: PositiveBytes = 1000,
        initial_rtt: PositiveSeconds = 0.5,
    ):
        super().__init__(sim, packet_size)
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0 < beta < 1:
            raise ValueError("beta must be in (0, 1)")
        self.epochs = epochs
        self.beta = beta
        self.cwnd = 1.0
        self.ssthresh = 1e9
        self.rtt_estimate = initial_rtt
        self.expected_seq = 0
        # Per-round cwnd snapshots (algorithm state for the epoch mean).
        self._epoch_windows: deque[float] = deque(maxlen=epochs)
        self._loss_event_until = -1.0
        self._last_data_sent_at = -1.0
        self._round_timer = Timer(sim, self._end_round)
        self._round_started = False

    # Window emulation ----------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        if packet.kind != DATA:
            return
        if isinstance(packet.info, float):
            self.rtt_estimate = packet.info
        if not self._round_started:
            self._round_started = True
            self._round_timer.schedule(self.rtt_estimate)
        if packet.seq > self.expected_seq:
            self._on_loss()
            self.expected_seq = packet.seq + 1
        elif packet.seq == self.expected_seq:
            self.expected_seq += 1
        else:
            return
        self._grow_window()
        self._last_data_sent_at = packet.sent_at
        self._deliver(packet)

    def _grow_window(self) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd

    def _on_loss(self) -> None:
        now = self.sim.now
        if now < self._loss_event_until:
            return  # same loss event
        self._loss_event_until = now + self.rtt_estimate
        self.cwnd = max(self.cwnd * (1.0 - self.beta), 1.0)
        self.ssthresh = self.cwnd

    # Rate feedback ---------------------------------------------------------------

    def _end_round(self) -> None:
        self._epoch_windows.append(self.cwnd)
        rate_bps = self.smoothed_rate_bps()
        self._transmit(
            FEEDBACK, 0, ACK_SIZE, echo=self._last_data_sent_at, info=rate_bps
        )
        self._round_timer.schedule(self.rtt_estimate)

    def smoothed_rate_bps(self) -> NonNegRate:
        if not self._epoch_windows:
            return self.packet_size * 8.0 / self.rtt_estimate
        mean_window = sum(self._epoch_windows) / len(self._epoch_windows)
        return mean_window * self.packet_size * 8.0 / self.rtt_estimate


class TearSender(Sender):
    """Transmits at the rate dictated by the TEAR receiver."""

    def __init__(
        self,
        sim: Simulator,
        packet_size: PositiveBytes = 1000,
        max_packets: Optional[int] = None,
        initial_rtt: PositiveSeconds = 0.5,
    ):
        super().__init__(sim, packet_size, max_packets)
        self.srtt: Optional[float] = None
        self._initial_rtt = initial_rtt
        self.rate_bps = packet_size * 8.0 / initial_rtt
        self._seq = 0
        self._send_timer = Timer(sim, self._send_next)
        self._rate_probe = SeriesProbe("rate")
        self.probes["rate"] = self._rate_probe

    @property
    def rtt(self) -> Seconds:
        return self.srtt if self.srtt is not None else self._initial_rtt

    @property
    def rate_trace(self) -> list[tuple[float, float]]:
        return list(self._rate_probe)

    def _begin(self) -> None:
        self._rate_probe.record(self.sim.now, self.rate_bps)
        self._send_next()

    def _halt(self) -> None:
        self._send_timer.cancel()

    def _send_next(self) -> None:
        if not self.running:
            return
        if self.max_packets is not None and self._seq >= self.max_packets:
            return
        self._transmit(DATA, self._seq, self.packet_size, info=self.rtt)
        self._seq += 1
        self.packets_sent += 1
        self._send_timer.schedule(self.packet_size * 8.0 / self.rate_bps)

    def receive(self, packet: Packet) -> None:
        if not self.running or packet.kind != FEEDBACK:
            return
        if packet.echo > 0:
            sample = self.sim.now - packet.echo
            if sample > 0:
                self.srtt = sample if self.srtt is None else (
                    0.875 * self.srtt + 0.125 * sample
                )
        if isinstance(packet.info, float) and packet.info > 0:
            self.rate_bps = packet.info
            self._rate_probe.record(self.sim.now, self.rate_bps)


def new_tear_flow(
    sim: Simulator,
    epochs: int = 8,
    beta: Probability = 0.5,
    packet_size: PositiveBytes = 1000,
    **sender_kwargs,
) -> tuple[TearSender, TearReceiver]:
    """Convenience constructor for a TEAR pair (not attached)."""
    sender = TearSender(sim, packet_size=packet_size, **sender_kwargs)
    receiver = TearReceiver(sim, epochs=epochs, beta=beta, packet_size=packet_size)
    return sender, receiver
