"""Congestion control algorithms: TCP(b), binomial, RAP, TFRC, TEAR.

The naming follows the paper: for a slowness parameter gamma,

* ``TCP(1/gamma)``  — window-based AIMD with decrease factor b = 1/gamma and
  the full TCP machinery (:func:`repro.cc.tcp.new_tcp_flow` with
  ``tcp_rule(1/gamma)``);
* ``SQRT(1/gamma)`` — the TCP-compatible binomial with k = l = 1/2
  (``sqrt_rule(1/gamma)``);
* ``RAP(1/gamma)``  — rate-based AIMD without self-clocking
  (:func:`repro.cc.rap.new_rap_flow` with ``b = 1/gamma``);
* ``TFRC(gamma)``   — equation-based control averaging gamma loss intervals
  (:func:`repro.cc.tfrc.new_tfrc_flow` with ``n_intervals = gamma``).
"""

from repro.cc.aimd import AimdParams, aimd_params, deterministic_a, gamma_to_b, tcp_compatible_a
from repro.cc.base import Receiver, Sender, WindowRule, establish
from repro.cc.binomial import (
    AimdRule,
    BinomialRule,
    binomial_compatible_a,
    iiad_rule,
    sqrt_rule,
    tcp_rule,
)
from repro.cc.equations import (
    aimd_response_rate,
    aimd_with_timeouts_rate,
    invert_simple_response,
    padhye_rate_per_rtt,
    padhye_rate_pps,
    simple_response_rate,
)
from repro.cc.rap import RapSender, RapSink, new_rap_flow
from repro.cc.tcp import TcpSender, TcpSink, new_tcp_flow
from repro.cc.tear import TearReceiver, TearSender, new_tear_flow
from repro.cc.tfrc import (
    TfrcReceiver,
    TfrcReport,
    TfrcSender,
    interval_weights,
    new_tfrc_flow,
)

__all__ = [
    "AimdParams",
    "AimdRule",
    "BinomialRule",
    "RapSender",
    "RapSink",
    "Receiver",
    "Sender",
    "TcpSender",
    "TcpSink",
    "TearReceiver",
    "TearSender",
    "TfrcReceiver",
    "TfrcReport",
    "TfrcSender",
    "WindowRule",
    "aimd_params",
    "aimd_response_rate",
    "aimd_with_timeouts_rate",
    "binomial_compatible_a",
    "deterministic_a",
    "establish",
    "gamma_to_b",
    "iiad_rule",
    "interval_weights",
    "invert_simple_response",
    "new_rap_flow",
    "new_tcp_flow",
    "new_tear_flow",
    "new_tfrc_flow",
    "padhye_rate_per_rtt",
    "padhye_rate_pps",
    "simple_response_rate",
    "sqrt_rule",
    "tcp_compatible_a",
    "tcp_rule",
]
