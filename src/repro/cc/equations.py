"""TCP response functions ("TCP-friendly" equations).

Three models appear in the paper:

* the simple square-root model: rate ~ sqrt(1.5 / p) packets per RTT, the
  first-order characterization behind the TCP-compatible paradigm;
* the full Reno model of Padhye et al. (SIGCOMM 1998), with retransmission
  timeouts, which TFRC uses as its control equation and Figure 20 plots as
  "Reno TCP";
* the Appendix A "AIMD with timeouts" model,
  rate = (1/(1-p)) / (2^(1/(1-p)) - 1) packets per RTT,
  which extends the AIMD sawtooth to sending rates below one packet per
  RTT via exponential timer backoff.

All rates here are in packets per RTT unless the function name says
otherwise; converting to packets or bits per second is the caller's job.
"""

from __future__ import annotations

import math

from repro.contracts import (
    NonNegPps,
    NonNegRatio,
    PositiveBytes,
    PositiveRatio,
    PositiveSeconds,
    Probability,
    checked,
)
from repro.units import Ratio

__all__ = [
    "simple_response_rate",
    "aimd_response_rate",
    "padhye_rate_pps",
    "padhye_rate_per_rtt",
    "aimd_with_timeouts_rate",
    "invert_simple_response",
]


@checked
def simple_response_rate(p: Probability) -> PositiveRatio:
    """Pure-AIMD (TCP a=1, b=1/2) rate in packets/RTT: sqrt(1.5 / p).

    The deterministic sawtooth model: one drop every 1/p packets.  Valid for
    p up to about 1/3 (one packet per RTT); the paper's Figure 20 plots it
    as "pure AIMD".
    """
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    return math.sqrt(1.5 / p)


@checked
def aimd_response_rate(p: Probability, a: float, b: float) -> PositiveRatio:
    """Deterministic-model rate of AIMD(a, b) in packets/RTT.

    The sawtooth oscillates between (1-b)W and W with slope a per RTT; the
    mean is (1 - b/2) * sqrt(2a / (b(2-b) p)).  Reduces to sqrt(1.5/p) for
    (a, b) = (1, 1/2).
    """
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    if not 0 < b < 1 or a <= 0:
        raise ValueError("need a > 0 and 0 < b < 1")
    w_max = math.sqrt(2.0 * a / (b * (2.0 - b) * p))
    return (1.0 - b / 2.0) * w_max


@checked
def padhye_rate_pps(
    p: Probability,
    rtt_s: PositiveSeconds,
    rto_s: PositiveSeconds | None = None,
    packet_size: PositiveBytes = 1000,
    max_burst_ratio: float = 3.0,
) -> NonNegPps:
    """Padhye et al. Reno throughput in packets per second.

    X = 1 / (R*sqrt(2p/3) + t_RTO * min(1, 3*sqrt(3p/8)) * p * (1 + 32 p^2))

    This is the TFRC control equation (RFC 3448 uses b=1, i.e. no delayed
    ACKs, matching the paper).  ``rto_s`` defaults to 4 * rtt, the TFRC
    simplification.  ``packet_size`` is accepted for symmetry with byte-rate
    callers; the packet-rate form does not use it.
    """
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    if p == 0:
        return math.inf
    if rto_s is None:
        rto_s = 4.0 * rtt_s
    sqrt_term = math.sqrt(2.0 * p / 3.0)
    timeout_term = rto_s * min(1.0, max_burst_ratio * math.sqrt(3.0 * p / 8.0)) * p * (
        1.0 + 32.0 * p * p
    )
    return 1.0 / (rtt_s * sqrt_term + timeout_term)


@checked
def padhye_rate_per_rtt(
    p: Probability, rtt_s: PositiveSeconds = 1.0, rto_s: PositiveSeconds | None = None
) -> float:
    """Padhye model in packets per RTT (Figure 20's y-axis)."""
    return padhye_rate_pps(p, rtt_s, rto_s) * rtt_s


@checked
def aimd_with_timeouts_rate(p: Probability) -> NonNegRatio:
    """Appendix A model: AIMD extended below one packet/RTT via backoff.

    rate = (1/(1-p)) / (2^(1/(1-p)) - 1) packets per RTT.

    Derivation (Appendix A): with drop rate p = n/(n+1) the sender delivers
    n+1 packets over 2^(n+1) - 1 RTTs, halving its sub-packet-per-RTT rate
    on each loss exactly as exponential timer backoff does.  The paper notes
    the analysis is meaningful for p >= 0.5; the formula itself is defined
    on (0, 1).

    Near p = 1 the ``2^(1/(1-p))`` term overflows a double; the rate has
    underflowed to zero long before that, so this returns exactly 0.0
    instead of raising.
    """
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    n_plus_1 = 1.0 / (1.0 - p)
    try:
        backoff = 2.0 ** n_plus_1 - 1.0
    except OverflowError:
        # p this close to 1 means ~1/(1-p) doublings of the timer: the
        # rate underflows to zero long before the formula does.
        return 0.0
    if math.isinf(backoff):
        return 0.0
    return n_plus_1 / backoff


@checked
def invert_simple_response(rate_per_rtt: PositiveRatio) -> Ratio:
    """Loss rate that yields ``rate_per_rtt`` under the sqrt(1.5/p) model."""
    if rate_per_rtt <= 0:
        raise ValueError("rate must be positive")
    return 1.5 / (rate_per_rtt * rate_per_rtt)
