"""Stabilization time and stabilization cost (Section 4.1).

After a sustained period of high congestion begins, the *stabilization
time* is the number of RTTs until the network loss rate diminishes to
within ``threshold`` (1.5) times its steady-state value for that congestion
level, with the loss rate averaged over the previous ten RTTs.  The
*stabilization cost* is the stabilization time multiplied by the average
loss rate (in percent) during the stabilization interval: a cost of 1 is
one full RTT's worth of packets dropped at the bottleneck.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.telemetry.measures import LinkMetrics
from repro.contracts import NonNegSeconds, PositiveSeconds, Probability
from repro.units import Ratio, Seconds

__all__ = ["StabilizationResult", "measure_stabilization"]


@dataclass(frozen=True)
class StabilizationResult:
    """Outcome of a stabilization measurement."""

    time_s: Seconds
    time_rtts: float
    mean_loss_during: Ratio  # fraction, averaged over the interval
    cost: float  # time_rtts * mean loss in percent... see the paper
    stabilized: bool  # False if the loss rate never came down in the run


def measure_stabilization(
    monitor: LinkMetrics,
    congestion_start: NonNegSeconds,
    steady_loss_rate: Probability,
    rtt_s: PositiveSeconds,
    end: Seconds,
    threshold: float = 1.5,
    window_rtts: int = 10,
) -> StabilizationResult:
    """Measure stabilization time and cost after ``congestion_start``.

    Scans the loss rate in a sliding window of ``window_rtts`` RTTs,
    stepping one RTT at a time, and reports the first instant the windowed
    loss rate is within ``threshold`` x ``steady_loss_rate``.
    """
    if steady_loss_rate < 0:
        raise ValueError("steady loss rate must be non-negative")
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    window = window_rtts * rtt_s
    target = threshold * steady_loss_rate
    t = congestion_start + window
    stabilized_at = None
    while t <= end:
        rate = monitor.loss_rate(t - window, t)
        if not math.isnan(rate) and rate <= target:
            stabilized_at = t
            break
        t += rtt_s
    if stabilized_at is None:
        # Never stabilized within the simulation: charge the whole run.
        duration = end - congestion_start
        mean_loss = monitor.loss_rate(congestion_start, end)
        mean_loss = 0.0 if math.isnan(mean_loss) else mean_loss
        rtts = duration / rtt_s
        return StabilizationResult(
            time_s=duration,
            time_rtts=rtts,
            mean_loss_during=mean_loss,
            cost=rtts * mean_loss * 100.0,
            stabilized=False,
        )
    duration = stabilized_at - congestion_start
    mean_loss = monitor.loss_rate(congestion_start, stabilized_at)
    mean_loss = 0.0 if math.isnan(mean_loss) else mean_loss
    rtts = duration / rtt_s
    return StabilizationResult(
        time_s=duration,
        time_rtts=rtts,
        mean_loss_during=mean_loss,
        cost=rtts * mean_loss * 100.0,
        stabilized=True,
    )
