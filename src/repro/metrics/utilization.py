"""Link utilization metrics, including the paper's f(k) (Section 4.2.3).

f(k) is the fraction of the available bandwidth achieved over the first k
round-trip times after the available bandwidth has doubled; it measures how
sluggishly a (slowly-responsive) algorithm exploits a time of plenty.
"""

from __future__ import annotations

from typing import Sequence

from repro.telemetry.measures import FlowMetrics, LinkMetrics
from repro.sim.tracing import TimeSeries
from repro.contracts import PositiveSeconds
from repro.units import Ratio, Seconds

__all__ = ["f_of_k", "flows_f_of_k", "utilization_series"]


def f_of_k(
    monitor: LinkMetrics,
    event_time: Seconds,
    k: int,
    rtt_s: PositiveSeconds,
) -> Ratio:
    """Link utilization over the first k RTTs after ``event_time``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    return monitor.utilization(event_time, event_time + k * rtt_s)


def flows_f_of_k(
    accountant: FlowMetrics,
    flow_ids: Sequence[int],
    available_bps: float,
    event_time: Seconds,
    k: int,
    rtt_s: Seconds,
) -> Ratio:
    """f(k) measured from specific flows' deliveries against ``available_bps``.

    Used when other traffic shares the link and raw link utilization would
    not isolate the studied flows.
    """
    if available_bps <= 0:
        raise ValueError("available bandwidth must be positive")
    end = event_time + k * rtt_s
    delivered = sum(
        accountant.delivered_bytes(flow_id, event_time, end) for flow_id in flow_ids
    )
    capacity_bytes = available_bps * (end - event_time) / 8.0
    return delivered / capacity_bytes


def utilization_series(
    monitor: LinkMetrics, window_s: PositiveSeconds, start: Seconds, end: Seconds
) -> TimeSeries:
    """Windowed link utilization samples over [start, end)."""
    series = TimeSeries("utilization")
    t = start + window_s
    while t <= end:
        series.append(t, monitor.utilization(t - window_s, t))
        t += window_s
    return series
