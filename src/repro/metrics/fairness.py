"""Fairness metrics: Jain's index, normalized shares, δ-fair convergence.

Section 4.2.2 defines the δ-fair convergence time as the time for two flows
starting from a bandwidth allocation of (B - b0, b0) to reach
((1+δ)/2 B, (1-δ)/2 B).  Equivalently, the instant from which the poorer
flow holds at least (1-δ)/2 of the combined throughput.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.telemetry.measures import FlowMetrics
from repro.contracts import PositiveRate, PositiveSeconds, Probability
from repro.units import Seconds

__all__ = [
    "jain_index",
    "normalized_shares",
    "delta_fair_convergence_time",
]


def jain_index(rates: Sequence[float]) -> Probability:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]."""
    if not rates:
        raise ValueError("need at least one rate")
    if any(r < 0 for r in rates):
        raise ValueError("rates must be non-negative")
    total = sum(rates)
    squares = sum(r * r for r in rates)
    if squares == 0:
        return 1.0  # all-zero allocation is (vacuously) even
    return total * total / (len(rates) * squares)


def normalized_shares(
    accountant: FlowMetrics,
    flow_ids: Sequence[int],
    start: Seconds,
    end: Seconds,
    fair_share_bps: PositiveRate,
) -> list[float]:
    """Per-flow throughput normalized by a fair share (1.0 = exactly fair)."""
    if fair_share_bps <= 0:
        raise ValueError("fair share must be positive")
    return [
        accountant.throughput_bps(flow_id, start, end) / fair_share_bps
        for flow_id in flow_ids
    ]


def delta_fair_convergence_time(
    accountant: FlowMetrics,
    flow_a: int,
    flow_b: int,
    start: Seconds,
    end: Seconds,
    delta: Probability = 0.1,
    window_s: PositiveSeconds = 0.5,
    sustain_windows: int = 1,
) -> Optional[Seconds]:
    """Time from ``start`` until the flows share the link δ-fairly.

    Throughputs are smoothed over ``window_s``; returns the delay until the
    first window in which the poorer flow gets at least (1 - delta)/2 of
    the combined throughput (and the allocation stays meaningful, i.e. the
    pair is actually transmitting).  ``sustain_windows`` > 1 requires the
    condition to hold over that many consecutive windows, which rejects a
    momentary crossing during the entrant's slow-start overshoot.  None if
    it never converges in [start, end).
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if sustain_windows < 1:
        raise ValueError("sustain_windows must be >= 1")
    t = start + window_s
    run_start: Optional[float] = None
    consecutive = 0
    while t <= end:
        a = accountant.throughput_bps(flow_a, t - window_s, t)
        b = accountant.throughput_bps(flow_b, t - window_s, t)
        total = a + b
        if total > 0 and min(a, b) / total >= (1.0 - delta) / 2.0:
            if consecutive == 0:
                run_start = t
            consecutive += 1
            if consecutive >= sustain_windows:
                assert run_start is not None
                return run_start - start
        else:
            consecutive = 0
            run_start = None
        t += window_s
    return None
