"""Replication statistics: means, confidence intervals, seed sweeps.

Simulation results are noisy; a single-seed number can mislead.  This
module provides the usual replication machinery — run a scenario across
seeds, report mean, standard deviation and a Student-t confidence
interval — without bringing in scipy (the t quantiles needed for typical
replication counts are tabulated).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

__all__ = ["Summary", "summarize", "replicate", "t_quantile_975"]

T = TypeVar("T")

# Two-sided 95% Student-t quantiles by degrees of freedom (1..30).
_T_975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_quantile_975(dof: int) -> float:
    """97.5% Student-t quantile (two-sided 95% CI half-width factor)."""
    if dof < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if dof <= len(_T_975):
        return _T_975[dof - 1]
    return 1.96  # normal approximation beyond the table


@dataclass(frozen=True)
class Summary:
    """Replication summary of one scalar metric."""

    n: int
    mean: float
    stddev: float
    ci95: float  # half-width of the 95% confidence interval

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95

    def overlaps(self, other: "Summary") -> bool:
        """Whether the two 95% intervals overlap (a coarse equality test)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean, stddev and 95% CI of a sample (n >= 1)."""
    if not values:
        raise ValueError("need at least one value")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(n=1, mean=mean, stddev=0.0, ci95=math.inf)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(variance)
    ci95 = t_quantile_975(n - 1) * stddev / math.sqrt(n)
    return Summary(n=n, mean=mean, stddev=stddev, ci95=ci95)


def replicate(
    run: Callable[[int], float],
    seeds: Sequence[int],
) -> Summary:
    """Run ``run(seed)`` for each seed and summarize the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return summarize([run(seed) for seed in seeds])
