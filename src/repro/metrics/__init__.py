"""Measurement machinery for the paper's metrics."""

from repro.metrics.fairness import (
    delta_fair_convergence_time,
    jain_index,
    normalized_shares,
)
from repro.metrics.smoothness import (
    SmoothnessResult,
    coefficient_of_variation,
    rate_bins,
    smoothness,
)
from repro.metrics.stabilization import StabilizationResult, measure_stabilization
from repro.metrics.stats import Summary, replicate, summarize, t_quantile_975
from repro.metrics.utilization import f_of_k, flows_f_of_k, utilization_series

__all__ = [
    "SmoothnessResult",
    "StabilizationResult",
    "Summary",
    "replicate",
    "summarize",
    "t_quantile_975",
    "coefficient_of_variation",
    "delta_fair_convergence_time",
    "f_of_k",
    "flows_f_of_k",
    "jain_index",
    "measure_stabilization",
    "normalized_shares",
    "rate_bins",
    "smoothness",
    "utilization_series",
]
