"""Smoothness of transmission rates (Section 4.3).

The paper's smoothness metric is the largest ratio between the sending
rates in two consecutive round-trip times.  TFRC has a perfect smoothness
of 1 under periodic loss; TCP(b) has smoothness 1 - b (we report the metric
so that 1 is perfectly smooth and smaller is burstier, i.e. the *minimum*
consecutive ratio; the inverse convention — max ratio >= 1 — is also
provided since both appear in the literature).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.telemetry.measures import FlowMetrics
from repro.contracts import NonNegRatio, PositiveSeconds
from repro.units import Seconds

__all__ = ["SmoothnessResult", "rate_bins", "smoothness", "coefficient_of_variation"]


@dataclass(frozen=True)
class SmoothnessResult:
    """Smoothness statistics of one flow's delivered-rate series."""

    min_ratio: float  # worst consecutive-bin decrease (1 = perfectly smooth)
    max_ratio: float  # worst consecutive-bin change as a ratio >= 1
    cov: float  # coefficient of variation of the bin rates


def rate_bins(
    accountant: FlowMetrics,
    flow_id: int,
    bin_s: PositiveSeconds,
    start: Seconds,
    end: Seconds,
) -> list[float]:
    """Delivered rate (bps) over consecutive bins of ``bin_s`` seconds."""
    if bin_s <= 0:
        raise ValueError("bin size must be positive")
    bins = []
    t = start
    while t + bin_s <= end:
        bins.append(accountant.throughput_bps(flow_id, t, t + bin_s))
        t += bin_s
    return bins


def smoothness(rates: Sequence[float]) -> SmoothnessResult:
    """Smoothness statistics of a rate sequence (one value per RTT/bin).

    Bins where both neighbours are zero are skipped (an idle flow is not
    "bursty"); a transition between zero and non-zero counts as maximally
    rough (ratio 0 / inf).
    """
    if len(rates) < 2:
        raise ValueError("need at least two rate samples")
    min_ratio = 1.0
    max_ratio = 1.0
    for previous, current in zip(rates, rates[1:]):
        if previous == 0 and current == 0:
            continue
        if previous == 0 or current == 0:
            min_ratio = 0.0
            max_ratio = math.inf
            continue
        ratio = current / previous
        min_ratio = min(min_ratio, ratio, 1.0 / ratio)
        max_ratio = max(max_ratio, ratio, 1.0 / ratio)
    return SmoothnessResult(
        min_ratio=min_ratio, max_ratio=max_ratio, cov=coefficient_of_variation(rates)
    )


def coefficient_of_variation(rates: Sequence[float]) -> NonNegRatio:
    """Std-dev over mean of the rate sequence (0 = perfectly smooth)."""
    if not rates:
        raise ValueError("need at least one rate sample")
    mean = sum(rates) / len(rates)
    if mean == 0:
        return 0.0
    variance = sum((r - mean) ** 2 for r in rates) / len(rates)
    return math.sqrt(variance) / mean
