"""Closed-form models from the paper (Sections 4.2.2, 4.2.3, Appendix A)."""

from repro.analysis.aggressiveness import (
    aimd_aggressiveness_pps,
    aimd_responsiveness_rtts,
    f_of_k_aimd_approx,
    tfrc_responsiveness_rtts,
)
from repro.analysis.convergence import (
    acks_to_fairness,
    contraction_factor,
    iterate_expected_windows,
)
from repro.analysis.timeouts import Figure20Row, figure20_series

__all__ = [
    "Figure20Row",
    "acks_to_fairness",
    "aimd_aggressiveness_pps",
    "aimd_responsiveness_rtts",
    "contraction_factor",
    "f_of_k_aimd_approx",
    "figure20_series",
    "iterate_expected_windows",
    "tfrc_responsiveness_rtts",
]
