"""Analytical model of transient fairness for AIMD flows (Section 4.2.2).

Two AIMD(a, b) flows share a link with a steady packet mark rate p.  The
i-th ACK belongs to flow j with probability proportional to flow j's
window; working through the expected window updates, the expected window
*difference* contracts by a factor (1 - bp) per ACK:

    rho_{i+1} = rho_i * (1 - b p)

so the expected number of ACKs to go from a highly skewed allocation to a
δ-fair one is log_{1-bp}(δ) — Figure 11 plots this against b.  The model
holds for moderate-to-low loss rates (no timeouts, single losses per
window).
"""

from __future__ import annotations

import math

from repro.contracts import Probability

__all__ = [
    "acks_to_fairness",
    "contraction_factor",
    "iterate_expected_windows",
]


def contraction_factor(b: Probability, p: Probability) -> Probability:
    """Per-ACK contraction of the expected window difference: 1 - bp."""
    if not 0 < b < 1:
        raise ValueError("b must be in (0, 1)")
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    return 1.0 - b * p


def acks_to_fairness(b: Probability, p: Probability, delta: Probability = 0.1) -> float:
    """Expected ACK count for δ-fair convergence: log_{1-bp}(δ).

    Grows like 1/(b p) * ln(1/δ) as b -> 0: convergence time blows up
    exponentially on Figure 11's log axis as the decrease factor shrinks.
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    factor = contraction_factor(b, p)
    return math.log(delta) / math.log(factor)


def iterate_expected_windows(
    x1: float,
    x2: float,
    a: float,
    b: float,
    p: float,
    steps: int,
) -> list[tuple[float, float]]:
    """Iterate the paper's expected-window recurrence for ``steps`` ACKs.

    Each ACK belongs to flow j with probability X_j / (X_1 + X_2) and then
    applies the expected AIMD update a(1-p)/X_j - b p X_j.  Used to
    cross-check the closed-form contraction factor.
    """
    if x1 <= 0 or x2 <= 0:
        raise ValueError("windows must be positive")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    out = [(x1, x2)]
    for _ in range(steps):
        total = x1 + x2
        x1 = x1 + (x1 / total) * (a * (1.0 - p) / x1 - b * p * x1)
        x2 = x2 + (x2 / total) * (a * (1.0 - p) / x2 - b * p * x2)
        out.append((x1, x2))
    return out
