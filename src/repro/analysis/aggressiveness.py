"""Aggressiveness, responsiveness and the f(k) approximation.

Definitions from the paper and its companion reports:

* *aggressiveness* — the maximum increase in sending rate in one RTT (in
  packets per second) absent congestion.  For AIMD(a, b) this is simply
  ``a`` packets per RTT, i.e. ``a / R`` packets per second per RTT.
* *responsiveness* — the number of RTTs of persistent congestion (one loss
  per RTT) until the sender halves its rate; 1 for TCP.
* Section 4.2.3: for TCP(a, b) after the available bandwidth doubles from
  lambda to 2 lambda packets/s, f(k) ~ 1/2 + k a / (4 R lambda).
"""

from __future__ import annotations

import math

__all__ = [
    "aimd_aggressiveness_pps",
    "aimd_responsiveness_rtts",
    "tfrc_responsiveness_rtts",
    "f_of_k_aimd_approx",
]


def aimd_aggressiveness_pps(a: float, rtt_s: float) -> float:
    """Max rate increase per RTT for AIMD(a, b): a packets per RTT."""
    if a <= 0 or rtt_s <= 0:
        raise ValueError("a and rtt must be positive")
    return a / rtt_s


def aimd_responsiveness_rtts(b: float) -> int:
    """RTTs of persistent congestion until AIMD(a, b) halves its rate.

    Each loss multiplies the window by (1 - b): the count is the smallest n
    with (1 - b)^n <= 1/2.  TCP (b = 1/2) gives 1.
    """
    if not 0 < b < 1:
        raise ValueError("b must be in (0, 1)")
    return math.ceil(math.log(0.5) / math.log(1.0 - b))


def tfrc_responsiveness_rtts(n_intervals: int) -> float:
    """Rough RTT count for TFRC(k) to halve under persistent congestion.

    With one loss per RTT, each RTT closes a loss interval of about one
    packet; the averaged interval (and hence the equation rate) falls as
    the k-deep history fills with short intervals.  The sqrt(p) dependence
    of the equation means the rate halves once roughly 3/4 of the history
    has turned bad; the paper reports 4-6 RTTs for the default TFRC(6).
    """
    if n_intervals < 1:
        raise ValueError("need at least one interval")
    return 0.75 * n_intervals


def f_of_k_aimd_approx(
    k: int, a: float, rtt_s: float, available_pps: float
) -> float:
    """Paper's approximation f(k) ~ 1/2 + k a / (4 R lambda), capped at 1.

    ``available_pps`` is the new available bandwidth *before* doubling
    (lambda, in packets per second); after the doubling the flow starts at
    half the new capacity and climbs at a packets per RTT.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if a <= 0 or rtt_s <= 0 or available_pps <= 0:
        raise ValueError("a, rtt and bandwidth must be positive")
    return min(1.0, 0.5 + k * a / (4.0 * rtt_s * available_pps))
