"""Appendix A: the role of retransmission timeouts (Figure 20).

Figure 20 compares three throughput models as functions of the packet drop
rate p:

* "pure AIMD"           — sqrt(1.5 / p) packets/RTT (valid up to p ~ 1/3);
* "AIMD with timeouts"  — (1/(1-p)) / (2^(1/(1-p)) - 1), the deterministic
  extension of AIMD to sub-packet-per-RTT rates via exponential backoff
  (an *upper* bound on TCP at high loss);
* "Reno TCP"            — the Padhye model with timeouts (a *lower* bound).

:func:`figure20_series` evaluates all three over a grid of drop rates, in
exactly the form the benchmark harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.cc.equations import (
    aimd_with_timeouts_rate,
    padhye_rate_per_rtt,
    simple_response_rate,
)

__all__ = ["Figure20Row", "figure20_series"]


@dataclass(frozen=True)
class Figure20Row:
    """One drop-rate point of Figure 20 (rates in packets per RTT)."""

    p: float
    pure_aimd: float
    aimd_with_timeouts: float
    reno: float


def figure20_series(p_values: Sequence[float]) -> list[Figure20Row]:
    """Evaluate the three Appendix A models over ``p_values``.

    The pure-AIMD model is reported as NaN above p = 1/3 where the paper
    notes it no longer applies (sending rate below one packet per RTT).
    """
    rows = []
    for p in p_values:
        if not 0 < p < 1:
            raise ValueError("drop rates must be in (0, 1)")
        pure = simple_response_rate(p) if p <= 1.0 / 3.0 else math.nan
        rows.append(
            Figure20Row(
                p=p,
                pure_aimd=pure,
                aimd_with_timeouts=aimd_with_timeouts_rate(p),
                reno=padhye_rate_per_rtt(p),
            )
        )
    return rows
