"""Helpers for populating a dumbbell with long-lived flows."""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.cc.base import Receiver, Sender, establish
from repro.net.dumbbell import Dumbbell
from repro.sim.engine import Simulator
from repro.sim.rng import deterministic_default_rng

__all__ = ["Flow", "add_flows", "AgentFactory"]

AgentFactory = Callable[[Simulator], tuple[Sender, Receiver]]


class Flow:
    """A wired-up sender/receiver pair and its flow id."""

    __slots__ = ("sender", "receiver", "flow_id")

    def __init__(self, sender: Sender, receiver: Receiver, flow_id: int):
        self.sender = sender
        self.receiver = receiver
        self.flow_id = flow_id


def add_flows(
    sim: Simulator,
    net: Dumbbell,
    factory: AgentFactory,
    count: int,
    start_at: float = 0.0,
    start_jitter_s: float = 0.0,
    forward: bool = True,
    rng: Optional[random.Random] = None,
) -> list[Flow]:
    """Create ``count`` flows from ``factory`` and schedule their starts.

    Start times are jittered uniformly over ``start_jitter_s`` to avoid
    phase effects (all flows in lockstep), as simulation practice dictates.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = rng if rng is not None else deterministic_default_rng()
    flows = []
    for _ in range(count):
        sender, receiver = factory(sim)
        flow_id = establish(net, sender, receiver, forward=forward)
        jitter = rng.uniform(0.0, start_jitter_s) if start_jitter_s > 0 else 0.0
        sender.start_at(start_at + jitter)
        flows.append(Flow(sender, receiver, flow_id))
    return flows
