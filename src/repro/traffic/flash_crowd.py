"""Flash crowds of short TCP transfers (Section 4.1.2).

The Figure 6 scenario starts, at a given time, a stream of short TCP
transfers (10 packets each) arriving at 200 flows/s for 5 seconds.  All
crowd flows share one host pair (they are distinguished by flow id), so the
crowd stresses only the bottleneck, not the builder.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cc.base import establish
from repro.cc.binomial import tcp_rule
from repro.cc.tcp import TcpSender, TcpSink
from repro.net.dumbbell import Dumbbell
from repro.sim.engine import Simulator
from repro.sim.rng import deterministic_default_rng
from repro.units import Bytes, PerSecond, Seconds

__all__ = ["FlashCrowd"]


class FlashCrowd:
    """A stream of short TCP flows arriving over an interval.

    Parameters
    ----------
    sim, net:
        Kernel and topology.
    rate_per_s:
        Mean flow arrival rate (Poisson arrivals).
    duration_s:
        Length of the arrival window.
    transfer_packets:
        Size of each transfer (paper: 10 packets).
    start_time:
        When arrivals begin.
    rng:
        Randomness for the arrival process.
    """

    def __init__(
        self,
        sim: Simulator,
        net: Dumbbell,
        rate_per_s: PerSecond,
        duration_s: Seconds,
        transfer_packets: int = 10,
        start_time: Seconds = 0.0,
        packet_size: Bytes = 1000,
        rng: Optional[random.Random] = None,
    ):
        if rate_per_s <= 0 or duration_s <= 0 or transfer_packets <= 0:
            raise ValueError("rate, duration and transfer size must be positive")
        self.sim = sim
        self.net = net
        self.rate_per_s = rate_per_s
        self.duration_s = duration_s
        self.transfer_packets = transfer_packets
        self.start_time = start_time
        self.packet_size = packet_size
        self._rng = rng if rng is not None else deterministic_default_rng()
        self._end_time = start_time + duration_s
        self._pair = net.add_host_pair(name="crowd")
        self.flow_ids: list[int] = []
        self.spawned = 0
        self.completed = 0
        sim.at(start_time, self._spawn_next)

    def _spawn_next(self) -> None:
        if self.sim.now >= self._end_time:
            return
        self._spawn_flow()
        gap = self._rng.expovariate(self.rate_per_s)
        self.sim.schedule(gap, self._spawn_next)

    def _spawn_flow(self) -> None:
        sender = TcpSender(
            self.sim,
            rule=tcp_rule(0.5),
            packet_size=self.packet_size,
            max_packets=self.transfer_packets,
        )
        sink = TcpSink(self.sim, self.packet_size)
        flow_id = establish(self.net, sender, sink, pair=self._pair)
        self.flow_ids.append(flow_id)
        sender.on_complete = self._on_flow_complete
        sender.start()
        self.spawned += 1

    def _on_flow_complete(self, sender: TcpSender) -> None:
        self.completed += 1
        # Free the routing-table entries of finished flows.
        self._pair.source.unbind_flow(sender.flow_id)
        self._pair.destination.unbind_flow(sender.flow_id)

    def aggregate_throughput_bps(self, start: float, end: float) -> float:
        """Total delivered rate of all crowd flows over [start, end)."""
        total_bytes = sum(
            self.net.accountant.delivered_bytes(flow_id, start, end)
            for flow_id in self.flow_ids
        )
        duration = end - start
        return total_bytes * 8.0 / duration if duration > 0 else 0.0
