"""Workload generators: CBR schedules, flash crowds, bulk-flow helpers."""

from repro.traffic.bulk import AgentFactory, Flow, add_flows
from repro.traffic.cbr import (
    CbrSink,
    CbrSource,
    on_off_schedule,
    reverse_sawtooth_rate,
    sawtooth_rate,
    square_wave,
)
from repro.traffic.flash_crowd import FlashCrowd

__all__ = [
    "AgentFactory",
    "CbrSink",
    "CbrSource",
    "FlashCrowd",
    "Flow",
    "add_flows",
    "on_off_schedule",
    "reverse_sawtooth_rate",
    "sawtooth_rate",
    "square_wave",
]
