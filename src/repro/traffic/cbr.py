"""Constant-bit-rate sources and the paper's ON/OFF schedules.

The dynamic scenarios of Sections 4.1, 4.2.1 and 4.2.4 orchestrate the
available bandwidth with an unresponsive CBR source: a square wave with
equal ON and OFF times, a "sawtooth" that ramps up then drops to OFF, a
"reverse sawtooth" that jumps ON and ramps down, and the one-shot
stop-restart pattern of the Figure 3 experiment.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.cc.base import Receiver, Sender
from repro.net.packet import DATA, Packet
from repro.sim.engine import Simulator, Timer
from repro.units import BitsPerSecond, Bytes, Seconds

__all__ = [
    "CbrSource",
    "CbrSink",
    "square_wave",
    "on_off_schedule",
    "sawtooth_rate",
    "reverse_sawtooth_rate",
]


class CbrSource(Sender):
    """Unresponsive constant (or time-varying) bit-rate source.

    ``rate_bps`` is either a number or a callable ``rate(t) -> bps``
    evaluated per packet, which implements the sawtooth patterns.  A rate of
    zero (from a callable) pauses transmission for one polling interval.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: BitsPerSecond | Callable[[float], float],
        packet_size: Bytes = 1000,
    ):
        super().__init__(sim, packet_size)
        self._rate = rate_bps if callable(rate_bps) else (lambda t, r=rate_bps: r)
        if not callable(rate_bps) and rate_bps <= 0:
            raise ValueError("CBR rate must be positive")
        self._timer = Timer(sim, self._tick)
        self._seq = 0
        self._credit_bits = 0.0
        self._last_update = 0.0
        # Ticks are bounded so a time-varying rate (sawtooth ramps through
        # zero) is tracked instead of slept through.
        self._max_tick = 0.02

    def current_rate(self) -> float:
        return self._rate(self.sim.now)

    def _begin(self) -> None:
        self._credit_bits = self.packet_size * 8.0  # first packet immediately
        self._last_update = self.sim.now
        self._tick()

    def _halt(self) -> None:
        self._timer.cancel()

    def _tick(self) -> None:
        """Credit-based pacing: accumulate rate x time, send when full."""
        if not self.running:
            return
        now = self.sim.now
        rate = self.current_rate()
        self._credit_bits += rate * (now - self._last_update)
        self._last_update = now
        packet_bits = self.packet_size * 8.0
        # Never burst: at most one packet per tick, credit capped at one.
        if self._credit_bits >= packet_bits:
            self._credit_bits = min(self._credit_bits - packet_bits, packet_bits)
            self._transmit(DATA, self._seq, self.packet_size)
            self._seq += 1
            self.packets_sent += 1
        if rate > 0:
            deficit = max(packet_bits - self._credit_bits, 0.0)
            next_tick = min(deficit / rate, self._max_tick)
        else:
            next_tick = self._max_tick
        self._timer.schedule(max(next_tick, 1e-6))

    def receive(self, packet: Packet) -> None:
        """CBR is open-loop; any feedback is ignored."""


class CbrSink(Receiver):
    """Absorbs CBR data (counts it for the flow accountant)."""

    def receive(self, packet: Packet) -> None:
        if packet.kind == DATA:
            self._deliver(packet)


def on_off_schedule(
    sim: Simulator,
    source: Sender,
    transitions: Sequence[tuple[float, bool]],
) -> None:
    """Drive ``source`` through explicit (time, on?) transitions.

    Figure 3's CBR pattern — ON at 0, OFF at 150, ON at 180 — is
    ``[(0.0, True), (150.0, False), (180.0, True)]``.
    """
    previous = -1.0
    for time, turn_on in transitions:
        if time < previous:
            raise ValueError("transitions must be time-ordered")
        previous = time
        sim.at(time, source.start if turn_on else source.stop)


def square_wave(
    sim: Simulator,
    source: Sender,
    on_s: Seconds,
    off_s: Seconds,
    start: Seconds = 0.0,
    until: Seconds = float("inf"),
    start_on: bool = True,
) -> None:
    """Alternate ``source`` on/off, starting at ``start``, until ``until``.

    Equal ``on_s`` and ``off_s`` give the paper's square wave (Figure 2);
    the period of the wave is ``on_s + off_s``.
    """
    if on_s <= 0 or off_s <= 0:
        raise ValueError("on and off durations must be positive")
    transitions: list[tuple[float, bool]] = []
    t = start
    on = start_on
    while t < until:
        transitions.append((t, on))
        t += on_s if on else off_s
        on = not on
    on_off_schedule(sim, source, transitions)


def sawtooth_rate(
    peak_bps: BitsPerSecond, ramp_s: Seconds, off_s: Seconds, start: Seconds = 0.0
) -> Callable[[float], float]:
    """Rate ramping 0 -> peak over ``ramp_s`` then OFF for ``off_s``, repeating."""
    if peak_bps <= 0 or ramp_s <= 0 or off_s < 0:
        raise ValueError("need positive peak and ramp, non-negative off time")
    period = ramp_s + off_s

    def rate(t: float) -> float:
        if t < start:
            return 0.0
        offset = (t - start) % period
        if offset < ramp_s:
            return peak_bps * (offset / ramp_s)
        return 0.0

    return rate


def reverse_sawtooth_rate(
    peak_bps: BitsPerSecond, ramp_s: Seconds, off_s: Seconds, start: Seconds = 0.0
) -> Callable[[float], float]:
    """Rate jumping to peak then ramping down to 0 over ``ramp_s``, then OFF."""
    if peak_bps <= 0 or ramp_s <= 0 or off_s < 0:
        raise ValueError("need positive peak and ramp, non-negative off time")
    period = ramp_s + off_s

    def rate(t: float) -> float:
        if t < start:
            return 0.0
        offset = (t - start) % period
        if offset < ramp_s:
            return peak_bps * (1.0 - offset / ramp_s)
        return 0.0

    return rate
