"""Discrete-event simulation kernel.

The kernel is a classic calendar of timestamped events backed by a binary
heap.  All network components in :mod:`repro.net` and all congestion-control
agents in :mod:`repro.cc` schedule their work through a single
:class:`Simulator` instance, which guarantees a global, deterministic event
order: events fire in timestamp order, with insertion order breaking ties.

Nothing here knows about packets or links; the kernel only moves simulated
time forward and invokes callbacks.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "Timer", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and can be cancelled before they fire.  Cancellation
    is lazy: the heap entry stays in place and is discarded when popped (or
    swept out wholesale when cancelled entries dominate the calendar — see
    :meth:`Simulator._note_cancelled`).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._in_heap = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None and self._in_heap:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} fn={getattr(self.fn, '__qualname__', self.fn)} {state}>"


class Simulator:
    """An event-driven simulation clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    #: Compaction only kicks in above this many cancelled entries, so tiny
    #: calendars never pay the heapify cost.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._cancelled = 0  # cancelled events still sitting in the heap

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (not-yet-fired, not-cancelled) events.

        O(1): the kernel tracks how many heap entries are cancelled-but-
        not-yet-popped instead of scanning the calendar.
        """
        return len(self._heap) - self._cancelled

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`.

        Counts the tombstone and, when more than half the calendar (and at
        least :data:`COMPACT_MIN_CANCELLED` entries) is dead weight, sweeps
        the heap: filtering preserves correctness because ``(time, seq)``
        is a total order, so ``heapify`` rebuilds the exact same event
        ordering without the tombstones.
        """
        self._cancelled += 1
        if (
            self._cancelled > self.COMPACT_MIN_CANCELLED
            and self._cancelled > len(self._heap) // 2
        ):
            for event in self._heap:
                if event.cancelled:
                    event._in_heap = False
            self._heap = [event for event in self._heap if not event.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time ``time``."""
        if math.isnan(time):
            raise SimulationError("cannot schedule at time NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}: clock is already at {self._now}"
            )
        event = Event(time, self._seq, fn, args, sim=self)
        event._in_heap = True
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order until the calendar drains or ``until`` is hit.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        observe a monotonic clock.  Events scheduled at exactly ``until`` do
        fire.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                event._in_heap = False
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = event.time
                event.fn(*event.args)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True


class Timer:
    """A restartable one-shot timer, e.g. a TCP retransmission timer.

    A timer wraps a callback and manages the single outstanding event for it:
    (re)scheduling cancels any previous schedule.
    """

    def __init__(self, sim: Simulator, fn: Callable[[], Any]):
        self._sim = sim
        self._fn = fn
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """Whether the timer is armed."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time the timer will fire, or None if not armed."""
        if self.pending:
            assert self._event is not None
            return self._event.time
        return None

    def schedule(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._fn()
