"""Discrete-event simulation kernel.

The kernel is a classic calendar of timestamped events backed by a binary
heap.  All network components in :mod:`repro.net` and all congestion-control
agents in :mod:`repro.cc` schedule their work through a single
:class:`Simulator` instance, which guarantees a global, deterministic event
order: events fire in timestamp order, with insertion order breaking ties.

Nothing here knows about packets or links; the kernel only moves simulated
time forward and invokes callbacks.

Fast path
---------
The calendar stores ``(time, seq, ...)`` tuples rather than bare
:class:`Event` objects.  Heap sifts then compare C-level floats and ints
instead of dispatching to a Python ``Event.__lt__`` per comparison — on a
calendar of a few hundred events that removes five to ten Python calls
from every push and pop, which is most of what the kernel does per
packet.  Three further fast paths, all measured by ``python -m repro
bench`` against the frozen pre-overhaul kernel in
:mod:`repro.perf.reference`:

* Events scheduled at exactly the current time (``at(now, ...)`` or
  ``schedule(0, ...)``) skip the heap entirely and land in a FIFO
  ``ready`` deque: same-time events fire in insertion order anyway, so
  an O(1) append replaces an O(log n) sift, and the run loop interleaves
  the two structures by ``(time, seq)`` so the global order is exactly
  what a single heap would produce.
* :meth:`Simulator.call_at` / :meth:`Simulator.call_in` are
  fire-and-forget variants of :meth:`at` / :meth:`schedule` for callers
  that never cancel (per-packet link events, which dominate every
  simulation): they push a bare ``(time, seq, fn, args)`` entry and skip
  the :class:`Event` allocation and the cancellation bookkeeping
  entirely.  Sequence numbers come from the same counter, so mixing the
  two APIs preserves the global FIFO tie-break.
* ``now`` is a plain attribute, not a property: the clock is read on
  every queue arrival, packet construction and probe sample, and an
  attribute load is several times cheaper than a descriptor call.  It
  is written by the kernel only; assigning it from outside the kernel
  is not supported (tests that need a fake clock may do so explicitly).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Any, Callable, Optional

from repro.contracts import NonNegSeconds

__all__ = ["Event", "Simulator", "Timer", "SimulationError"]

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.at` and can be cancelled before they fire.  Cancellation
    is lazy: the calendar entry stays in place and is discarded when popped
    (or swept out wholesale when cancelled entries dominate the calendar —
    see :meth:`Simulator._note_cancelled`).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._in_heap = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None and self._in_heap:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        # Kept for callers that sort events; the calendar itself compares
        # (time, seq) tuples and never reaches this method.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} fn={getattr(self.fn, '__qualname__', self.fn)} {state}>"


class Simulator:
    """An event-driven simulation clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> (sim.now, fired)
    (1.5, ['hello'])
    """

    #: Compaction only kicks in above this many cancelled entries, so tiny
    #: calendars never pay the heapify cost.  128 (not 64) because the
    #: sweep is O(calendar): below ~a hundred tombstones, lazy pop-time
    #: discard is measurably cheaper than even one rebuild.
    COMPACT_MIN_CANCELLED = 128

    def __init__(self) -> None:
        # Calendar entries are (time, seq, event) for cancellable events
        # and (time, seq, fn, args) for fire-and-forget call_at/call_in
        # entries.  seq is unique, so sifts compare floats and ints only
        # and never reach the third element.
        self._heap: list[tuple] = []
        # Entries scheduled at exactly the current time, in seq order.
        # Invariant: every entry's time equals ``now`` and the deque is
        # drained before the clock advances.
        self._ready: deque[tuple] = deque()
        #: Current simulated time in seconds (kernel-written; read-only
        #: for everyone else).
        self.now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._cancelled = 0  # cancelled events still sitting in the calendar
        self.events_fired = 0  # lifetime count of callbacks invoked

    @property
    def pending(self) -> int:
        """Number of live (not-yet-fired, not-cancelled) events.

        O(1): the kernel tracks how many calendar entries are cancelled-
        but-not-yet-popped instead of scanning the calendar.
        """
        return len(self._heap) + len(self._ready) - self._cancelled

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`Event.cancel`.

        Counts the tombstone and, when more than half the calendar (and at
        least :data:`COMPACT_MIN_CANCELLED` entries) is dead weight, sweeps
        the calendar: filtering preserves correctness because ``(time, seq)``
        is a total order, so ``heapify`` rebuilds the exact same event
        ordering without the tombstones (and the ready deque keeps its FIFO
        order under filtering by construction).  Fire-and-forget 4-tuple
        entries cannot be cancelled and always survive the sweep.

        One exception: when the entry at the heap *top* is itself a
        tombstone, the sweep is skipped.  The run loop pops and discards
        top tombstones for free (no callback, counter decrement only), so
        a cancellation storm aimed at the earliest events drains lazily
        at pop time instead of paying an O(calendar) rebuild — the sweep
        then fires on the first cancellation after the top turns live.
        """
        self._cancelled += 1
        heap = self._heap
        if (
            self._cancelled > self.COMPACT_MIN_CANCELLED
            and self._cancelled > (len(heap) + len(self._ready)) // 2
        ):
            if heap and len(heap[0]) == 3 and heap[0][2].cancelled:
                return
            # The sweeps are in place (slice-assign / clear+extend): the
            # run loop holds direct references to these containers, and a
            # cancellation storm inside a callback must compact the very
            # calendar the loop is draining.  Swept tombstones keep their
            # ``_in_heap`` flag: the only reader is ``Event.cancel``,
            # which early-returns on ``cancelled`` before ever looking at
            # the flag, so clearing it here would be a second full pass
            # of pure dead work.
            heap[:] = [
                entry
                for entry in heap
                if len(entry) == 4 or not entry[2].cancelled
            ]
            heapq.heapify(heap)
            if self._ready:
                live = [
                    entry
                    for entry in self._ready
                    if len(entry) == 4 or not entry[2].cancelled
                ]
                self._ready.clear()
                self._ready.extend(live)
            self._cancelled = 0

    def schedule(self, delay: NonNegSeconds, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        now = self.now
        time = now + delay
        if not time >= now:  # only NaN survives the delay check (cold)
            raise SimulationError("cannot schedule at time NaN")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, sim=self)
        event._in_heap = True
        if time == now:
            self._ready.append((time, seq, event))
        else:
            _heappush(self._heap, (time, seq, event))
        return event

    def at(self, time: NonNegSeconds, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute time ``time``."""
        now = self.now
        if not time >= now:
            # NaN fails every comparison, so both misuse cases land here.
            if math.isnan(time):
                raise SimulationError("cannot schedule at time NaN")
            raise SimulationError(
                f"cannot schedule at {time}: clock is already at {now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, sim=self)
        event._in_heap = True
        if time == now:
            # Same-time fast path: seq order is FIFO order, so the deque
            # append replaces a heap sift.
            self._ready.append((time, seq, event))
        else:
            _heappush(self._heap, (time, seq, event))
        return event

    def call_in(self, delay: NonNegSeconds, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Event` is built.

        For hot callers that never cancel (per-packet link events).  The
        callback cannot be cancelled or observed; in exchange the kernel
        skips the Event allocation and cancellation bookkeeping.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        now = self.now
        time = now + delay
        if not time >= now:  # only NaN survives the delay check (cold)
            raise SimulationError("cannot schedule at time NaN")
        seq = self._seq
        self._seq = seq + 1
        if time == now:
            self._ready.append((time, seq, fn, args))
        else:
            _heappush(self._heap, (time, seq, fn, args))

    def call_at(self, time: NonNegSeconds, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`at` (see :meth:`call_in`)."""
        now = self.now
        if not time >= now:
            if math.isnan(time):
                raise SimulationError("cannot schedule at time NaN")
            raise SimulationError(
                f"cannot schedule at {time}: clock is already at {now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if time == now:
            self._ready.append((time, seq, fn, args))
        else:
            _heappush(self._heap, (time, seq, fn, args))

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order until the calendar drains or ``until`` is hit.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        observe a monotonic clock.  Events scheduled at exactly ``until`` do
        fire.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        heap = self._heap
        ready = self._ready
        heappop = _heappop
        fired = 0
        try:
            while not self._stopped:
                if ready:
                    # Ready entries sit at the current time; a heap entry
                    # can only precede them via a smaller seq at that
                    # same time.
                    head = ready[0]
                    if heap and heap[0][0] == head[0] and heap[0][1] < head[1]:
                        entry = heappop(heap)
                    else:
                        entry = ready.popleft()
                    if until is not None and entry[0] > until:
                        # Only reachable when until < now (a clock that
                        # was clamped forward past ``until`` by an
                        # earlier run); put the entry back untouched.
                        ready.appendleft(entry)
                        break
                elif heap:
                    if until is not None and heap[0][0] > until:
                        break
                    entry = heappop(heap)
                else:
                    break
                if len(entry) == 4:
                    # Fire-and-forget entry: nothing to cancel, no Event.
                    self.now = entry[0]
                    fired += 1
                    entry[2](*entry[3])
                    continue
                event = entry[2]
                event._in_heap = False
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self.now = entry[0]
                fired += 1
                event.fn(*event.args)
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self.events_fired += fired
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True


class Timer:
    """A restartable one-shot timer, e.g. a TCP retransmission timer.

    A timer wraps a callback and manages the single outstanding event for it:
    (re)scheduling cancels any previous schedule.
    """

    def __init__(self, sim: Simulator, fn: Callable[[], Any]):
        self._sim = sim
        self._fn = fn
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """Whether the timer is armed."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time the timer will fire, or None if not armed."""
        if self.pending:
            assert self._event is not None
            return self._event.time
        return None

    def schedule(self, delay: NonNegSeconds) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._fn()
