"""Periodic processes on top of the event kernel.

:class:`PeriodicTask` runs a callback at a fixed interval (with optional
phase jitter), the building block for samplers and pollers that need a
regular cadence without each writing its own timer chain.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim.engine import Simulator, Timer
from repro.sim.rng import deterministic_default_rng

__all__ = ["PeriodicTask"]


class PeriodicTask:
    """Invoke ``fn()`` every ``interval`` seconds until stopped.

    Parameters
    ----------
    sim:
        The simulation kernel.
    interval:
        Seconds between invocations.
    fn:
        Zero-argument callback.
    jitter:
        Uniform per-tick jitter in [0, jitter) seconds added to each
        interval, for breaking phase locks between many periodic sources.
    rng:
        Random stream for the jitter.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn: Callable[[], None],
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.jitter = jitter
        self._rng = rng if rng is not None else deterministic_default_rng()
        self._timer = Timer(sim, self._tick)
        self.ticks = 0
        self.running = False

    def start(self, delay: float = 0.0) -> None:
        """Begin ticking; the first invocation happens after ``delay``."""
        if self.running:
            return
        self.running = True
        self._timer.schedule(delay if delay > 0 else self._next_interval())

    def stop(self) -> None:
        self.running = False
        self._timer.cancel()

    def _next_interval(self) -> float:
        if self.jitter > 0:
            return self.interval + self._rng.uniform(0.0, self.jitter)
        return self.interval

    def _tick(self) -> None:
        if not self.running:
            return
        self.ticks += 1
        self.fn()
        if self.running:  # fn may have called stop()
            self._timer.schedule(self._next_interval())
