"""Deterministic named random streams.

Every stochastic component (RED drop decisions, flash-crowd arrivals, start
jitter...) draws from its own named stream so that adding a component, or a
component drawing more numbers, does not perturb the randomness seen by the
others.  Streams are derived from a single master seed, making whole
simulations reproducible from one integer.

Registries pickle cleanly — including mid-sequence stream state — so a
simulation configuration can cross a process boundary (the parallel job
executor forks workers) without perturbing any random draw.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry", "deterministic_default_rng"]


def deterministic_default_rng() -> random.Random:
    """A LOUD fixed-seed (0) fallback stream for standalone component use.

    Components that accept an optional ``rng`` (RED queues, droppers,
    start-jitter helpers) use this when the caller passes none, so a
    bare ``REDQueue(...)`` in a unit test or example stays reproducible.

    It is deliberately *not* suitable for real experiments: every
    component falling back to it shares the **same, correlated**
    sequence, and no experiment seed controls it.  Simulations must
    pass a named stream — ``registry.stream("red.bottleneck")`` — from
    the run's :class:`RngRegistry` instead.  The loud name exists so a
    grep (and rule D001 of ``repro.lint``) can keep the silent
    ``random.Random(0)`` pattern from creeping back in.
    """
    # The one sanctioned bare-Random construction site outside the
    # registry itself; seed 0 preserves the historical fallback streams.
    return random.Random(0)  # simlint: disable=D001(the sanctioned fallback constructor itself)


class RngRegistry:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0):
        self._master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (master_seed, name) pair always yields the same sequence.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self._master_seed}:{name}".encode()
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            rng = random.Random(seed)  # simlint: disable=D001(the registry is where streams are born)
            self._streams[name] = rng
        return rng

    def spawn(self, salt: int) -> "RngRegistry":
        """Derive a replica registry whose streams never collide.

        The child's master seed is hash-derived from ``(parent seed,
        salt)`` — the same construction :meth:`stream` uses for names —
        so distinct salts always yield distinct universes and no child
        can land back on its parent.  (The previous affine form
        ``seed * 1_000_003 + salt`` collided with the parent for the
        default registry: ``RngRegistry(0).spawn(0)`` was ``RngRegistry(0)``.)
        """
        digest = hashlib.sha256(
            f"spawn:{self._master_seed}:{salt}".encode()
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __getstate__(self) -> dict:
        """Pickle as (master seed, per-stream generator state).

        Explicit state keeps the pickled form independent of attribute
        layout and preserves mid-sequence positions, so an unpickled
        registry continues every stream exactly where it left off.
        """
        return {
            "master_seed": self._master_seed,
            "streams": {
                name: rng.getstate() for name, rng in self._streams.items()
            },
        }

    def __setstate__(self, state: dict) -> None:
        self._master_seed = int(state["master_seed"])
        self._streams = {}
        for name, rng_state in state["streams"].items():
            rng = random.Random()  # simlint: disable=D001(unpickling restores an existing stream's state)
            rng.setstate(rng_state)
            self._streams[name] = rng

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RngRegistry):
            return NotImplemented
        return (
            self._master_seed == other._master_seed
            and {n: r.getstate() for n, r in self._streams.items()}
            == {n: r.getstate() for n, r in other._streams.items()}
        )
