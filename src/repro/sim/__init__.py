"""Discrete-event simulation kernel: clock, events, timers, RNG, tracing."""

from repro.sim.engine import Event, SimulationError, Simulator, Timer
from repro.sim.process import PeriodicTask
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Counter, TimeSeries, interval_average

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "Timer",
    "PeriodicTask",
    "RngRegistry",
    "Counter",
    "TimeSeries",
    "interval_average",
]
