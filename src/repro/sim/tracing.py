"""Back-compat shim: time-series tracing now lives in ``repro.telemetry``.

:class:`TimeSeries`, :class:`Counter` and :func:`interval_average` moved
to :mod:`repro.telemetry.series` when measurement was unified into the
telemetry subsystem.  Import from :mod:`repro.telemetry` (or
:mod:`repro.sim`, which re-exports) in new code.
"""

from repro.telemetry.series import Counter, TimeSeries, interval_average

__all__ = ["TimeSeries", "interval_average", "Counter"]
