"""Terminal visualization: sparklines and ASCII charts.

The benchmark harness and examples render result tables; these helpers
turn numeric series into quick terminal graphics so a figure's *shape* —
the thing this reproduction is judged on — is visible without leaving the
shell.  No plotting dependencies required.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["sparkline", "line_chart", "bar_chart"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character rendering of a series.

    >>> sparkline([0, 1, 2, 3])
    ' ▂▅█'
    """
    if not values:
        return ""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return " " * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in values:
        if math.isnan(v):
            out.append(" ")
        elif span == 0:
            out.append(_BLOCKS[4])
        else:
            idx = int((v - lo) / span * (len(_BLOCKS) - 1))
            out.append(_BLOCKS[idx])
    return "".join(out)


def _scale(value: float, lo: float, hi: float, steps: int, log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return steps // 2
    frac = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(round(frac * (steps - 1)))))


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Plot one or more (x, y) series on a character grid.

    Each series gets a marker (its name's first letter, uppercased in
    order of appearance on collisions).  Axes are annotated with the data
    ranges; log scaling requires strictly positive values on that axis.
    """
    points = [
        (x, y) for pts in series.values() for x, y in pts if not math.isnan(y)
    ]
    if not points:
        raise ValueError("nothing to plot")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    if log_x and min(xs) <= 0:
        raise ValueError("log_x requires positive x values")
    if log_y and min(ys) <= 0:
        raise ValueError("log_y requires positive y values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for index, name in enumerate(series):
        markers[name] = (name[0].upper() if index % 2 == 0 else name[0].lower()) or "*"
    for name, pts in series.items():
        mark = markers[name]
        for x, y in pts:
            if math.isnan(y):
                continue
            col = _scale(x, x_lo, x_hi, width, log_x)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log_y)
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:.3g}"
    y_bottom = f"{y_lo:.3g}"
    label_width = max(len(y_top), len(y_bottom))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_top.rjust(label_width)
        elif row_index == height - 1:
            label = y_bottom.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    x_left = f"{x_lo:.3g}"
    x_right = f"{x_hi:.3g}"
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(" " * (label_width + 2) + x_left + " " * gap + x_right)
    legend = "   ".join(f"{mark}={name}" for name, mark in markers.items())
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values (non-negative)."""
    if not values:
        raise ValueError("nothing to plot")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart takes non-negative values")
    peak = max(values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "█" * max(1 if value > 0 else 0, int(round(value / peak * width)))
        lines.append(f"{name.ljust(label_width)} |{bar} {value:.3g}{unit}")
    return "\n".join(lines)
