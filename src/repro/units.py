"""Units of measure: the vocabulary the repository's quantities live in.

The paper's results hinge on quantities that differ only by a unit
factor — bandwidth in bits/s vs bytes/s, stabilization *time* (seconds)
vs stabilization *cost* (a dimensionless loss ratio), loss fractions vs
drop counts.  A silent bits/bytes or time/rate mix-up corrupts every
figure table while still looking plausible, which is the classic failure
mode of ns-2 comparative studies.  This module gives those quantities
names:

* :class:`Unit` — a dimension vector over the base symbols ``s`` (time),
  ``bit``, ``byte`` (data), ``pkt`` (packets);
* ``Annotated`` aliases (:data:`Seconds`, :data:`Bits`, :data:`Bytes`,
  :data:`BitsPerSecond`, :data:`Packets`, :data:`Ratio`, ...) used to
  annotate public signatures across ``net/``, ``cc/``, ``metrics/`` and
  ``telemetry/``;
* a conversion whitelist (:data:`CONVERSIONS`) plus the matching helper
  functions, the only sanctioned ways to move between ``bit`` and
  ``byte``.

The aliases are plain ``float`` at runtime (``Annotated`` metadata is
erased), so annotating a signature can never change behavior.  Their
value is static: mypy sees ``float``, while simlint's U-rules (see
``docs/units.md`` and ``docs/linting.md``) read the :class:`Unit`
metadata — together with the repository's pervasive ``_s`` / ``_bps`` /
``_bytes`` / ``_pkts`` name-suffix convention — to infer the unit of
expressions and flag mixed-unit arithmetic before it reaches a table.

Convention notes
----------------
* ``pkt`` is a *counting* unit: a packet count is dimensionally a pure
  number, so ``Packets`` and :data:`Ratio` are deliberately compatible
  (``bdp = bandwidth_bps * rtt_s / (8 * packet_size)`` yields a
  dimensionless value that *is* a packet count).  Mixing packets with
  seconds or bytes is still an error.
* The only blessed bit/byte conversion factor is the literal ``8``
  (or ``8.0``), which the U-rules treat as carrying the unit
  ``bit/byte``: ``bytes * 8 -> bits``, ``bits / 8 -> bytes``,
  ``8.0 / bandwidth_bps -> seconds/byte``.  Any other mixing of ``bit``
  and ``byte`` in one product is flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated, Final

__all__ = [
    "BITS_PER_BYTE",
    "CONVERSIONS",
    "SUFFIX_UNITS",
    "Bits",
    "BitsPerSecond",
    "Bytes",
    "BytesPerSecond",
    "PacketsPerSecond",
    "Packets",
    "PerSecond",
    "Ratio",
    "Seconds",
    "SecondsPerByte",
    "Unit",
    "bits_to_bytes",
    "bps_to_bytes_per_s",
    "bytes_to_bits",
    "bytes_per_s_to_bps",
]


@dataclass(frozen=True)
class Unit:
    """A unit as a dimension vector: ``dims`` maps base symbol -> exponent.

    Stored as a sorted tuple of ``(symbol, exponent)`` pairs with zero
    exponents elided, so equal units compare (and hash) equal.  The
    algebra (:meth:`mul`, :meth:`div`, :meth:`inverse`) is what lets the
    lint analysis push units through arithmetic: ``bit / s`` times ``s``
    is ``bit``, ``byte / byte`` is dimensionless.
    """

    dims: tuple[tuple[str, int], ...]

    @classmethod
    def of(cls, **dims: int) -> "Unit":
        return cls(tuple(sorted((k, v) for k, v in dims.items() if v != 0)))

    def exponent(self, symbol: str) -> int:
        for sym, exp in self.dims:
            if sym == symbol:
                return exp
        return 0

    def mul(self, other: "Unit") -> "Unit":
        merged = {sym: exp for sym, exp in self.dims}
        for sym, exp in other.dims:
            merged[sym] = merged.get(sym, 0) + exp
        return Unit.of(**merged)

    def div(self, other: "Unit") -> "Unit":
        return self.mul(other.inverse())

    __mul__ = mul
    __truediv__ = div

    def inverse(self) -> "Unit":
        return Unit(tuple((sym, -exp) for sym, exp in self.dims))

    @property
    def dimensionless(self) -> bool:
        return not self.dims

    @property
    def mixes_bits_and_bytes(self) -> bool:
        """True when both ``bit`` and ``byte`` appear: a missing factor 8."""
        return self.exponent("bit") != 0 and self.exponent("byte") != 0

    def counting_erased(self) -> "Unit":
        """This unit with the ``pkt`` axis dropped.

        Packet counts are dimensionally pure numbers; compatibility
        checks compare pkt-erased vectors so ``Packets`` and ``Ratio``
        interoperate while ``Packets`` vs ``Seconds`` still conflicts.
        """
        return Unit(tuple((s, e) for s, e in self.dims if s != "pkt"))

    def compatible(self, other: "Unit") -> bool:
        return self.counting_erased() == other.counting_erased()

    def __str__(self) -> str:
        if not self.dims:
            return "ratio"
        num = [
            sym if exp == 1 else f"{sym}^{exp}"
            for sym, exp in self.dims
            if exp > 0
        ]
        den = [
            sym if exp == -1 else f"{sym}^{-exp}"
            for sym, exp in self.dims
            if exp < 0
        ]
        if not num:
            return "1/" + "/".join(den)
        text = "*".join(num)
        if den:
            text += "/" + "/".join(den)
        return text


# -- The base units ---------------------------------------------------------

SECOND: Final = Unit.of(s=1)
BIT: Final = Unit.of(bit=1)
BYTE: Final = Unit.of(byte=1)
PACKET: Final = Unit.of(pkt=1)
RATIO: Final = Unit.of()
BIT_PER_SECOND: Final = Unit.of(bit=1, s=-1)
BYTE_PER_SECOND: Final = Unit.of(byte=1, s=-1)
PACKET_PER_SECOND: Final = Unit.of(pkt=1, s=-1)
PER_SECOND: Final = Unit.of(s=-1)
SECOND_PER_BYTE: Final = Unit.of(s=1, byte=-1)
#: The unit the literal ``8`` carries in a bit/byte conversion.
BITS_PER_BYTE: Final = Unit.of(bit=1, byte=-1)

# -- The Annotated aliases used on public signatures ------------------------
#
# All aliases are float-based: mypy accepts ints wherever a float is
# expected, so integer byte and packet counts annotate cleanly.

Seconds = Annotated[float, SECOND]
Bits = Annotated[float, BIT]
Bytes = Annotated[float, BYTE]
Packets = Annotated[float, PACKET]
Ratio = Annotated[float, RATIO]
BitsPerSecond = Annotated[float, BIT_PER_SECOND]
BytesPerSecond = Annotated[float, BYTE_PER_SECOND]
PacketsPerSecond = Annotated[float, PACKET_PER_SECOND]
PerSecond = Annotated[float, PER_SECOND]
SecondsPerByte = Annotated[float, SECOND_PER_BYTE]

#: The name-suffix convention: a trailing ``_s`` / ``_bps`` / ... on a
#: parameter, attribute, variable or function name declares its unit.
#: The lint analysis seeds inference from these exactly as it does from
#: the ``Annotated`` aliases above.
SUFFIX_UNITS: Final[dict[str, Unit]] = {
    "_s": SECOND,
    "_bits": BIT,
    "_bytes": BYTE,
    "_pkts": PACKET,
    "_bps": BIT_PER_SECOND,
    "_per_s": PER_SECOND,
    "_ratio": RATIO,
    "_fraction": RATIO,
}

#: The conversion whitelist: the only sanctioned unit-changing factors.
#: Each entry maps (from-unit, to-unit) -> the multiplicative factor.
#: Everything else must move through the helper functions below (or the
#: literal ``8``, which the analysis reads as ``bit/byte``).
CONVERSIONS: Final[dict[tuple[Unit, Unit], float]] = {
    (BYTE, BIT): 8.0,
    (BIT, BYTE): 1.0 / 8.0,
    (BYTE_PER_SECOND, BIT_PER_SECOND): 8.0,
    (BIT_PER_SECOND, BYTE_PER_SECOND): 1.0 / 8.0,
}


def bytes_to_bits(value: Bytes) -> Bits:
    """``bytes * 8``: the one direction of the blessed conversion."""
    return value * 8.0


def bits_to_bytes(value: Bits) -> Bytes:
    """``bits / 8``: the other direction."""
    return value / 8.0


def bps_to_bytes_per_s(rate: BitsPerSecond) -> BytesPerSecond:
    return rate / 8.0


def bytes_per_s_to_bps(rate: BytesPerSecond) -> BitsPerSecond:
    return rate * 8.0
