"""Unit tests for links, nodes and the link monitor."""

import pytest

from repro.net import DropTailQueue, Link, LinkMonitor, Node, Packet
from repro.net.packet import DATA
from repro.sim import Simulator


def make_packet(seq=0, size=1000, flow=0, src=0, dst=1, kind=DATA):
    return Packet(flow_id=flow, kind=kind, seq=seq, size=size, src=src, dst=dst)


class TestLink:
    def test_serialization_plus_propagation_delay(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8000.0, delay_s=1.0)
        arrived = []
        link.connect(lambda p: arrived.append(sim.now))
        # 1000 bytes at 8000 bps = 1 s serialization, + 1 s propagation.
        link.send(make_packet(size=1000))
        sim.run()
        assert arrived == [2.0]

    def test_back_to_back_packets_serialize_sequentially(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8000.0, delay_s=0.5)
        arrived = []
        link.connect(lambda p: arrived.append((sim.now, p.seq)))
        link.send(make_packet(seq=1))
        link.send(make_packet(seq=2))
        sim.run()
        assert arrived == [(1.5, 1), (2.5, 2)]

    def test_queue_overflow_drops(self):
        sim = Simulator()
        link = Link(sim, 8000.0, 0.0, DropTailQueue(2))
        arrived = []
        link.connect(lambda p: arrived.append(p.seq))
        for seq in range(5):
            link.send(make_packet(seq=seq))
        sim.run()
        # One in service + two queued at the time of the burst.
        assert len(arrived) == 3

    def test_unconnected_link_raises(self):
        sim = Simulator()
        link = Link(sim, 8000.0, 0.0)
        with pytest.raises(RuntimeError):
            link.send(make_packet())

    def test_counts_bytes_and_packets(self):
        sim = Simulator()
        link = Link(sim, 1e6, 0.0)
        link.connect(lambda p: None)
        link.send(make_packet(size=500))
        link.send(make_packet(size=700))
        sim.run()
        assert link.bytes_sent == 1200
        assert link.packets_sent == 2

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0.0, 0.1)
        with pytest.raises(ValueError):
            Link(sim, 1e6, -1.0)


class TestNode:
    def build_pair(self):
        sim = Simulator()
        a = Node(sim, address=1, name="a")
        b = Node(sim, address=2, name="b")
        ab = Link(sim, 1e6, 0.001)
        ab.connect(b.receive)
        a.add_route(2, ab)
        return sim, a, b

    def test_delivery_to_bound_flow(self):
        sim, a, b = self.build_pair()
        got = []
        b.bind_flow(7, got.append)
        a.send(make_packet(flow=7, src=1, dst=2))
        sim.run()
        assert len(got) == 1

    def test_unbound_flow_discarded_silently(self):
        sim, a, b = self.build_pair()
        a.send(make_packet(flow=9, src=1, dst=2))
        sim.run()  # no error

    def test_forwarding_through_router(self):
        sim = Simulator()
        src = Node(sim, 1)
        router = Node(sim, 2)
        dst = Node(sim, 3)
        l1 = Link(sim, 1e6, 0.001)
        l1.connect(router.receive)
        l2 = Link(sim, 1e6, 0.001)
        l2.connect(dst.receive)
        src.set_default_route(l1)
        router.add_route(3, l2)
        got = []
        dst.bind_flow(0, got.append)
        src.send(make_packet(flow=0, src=1, dst=3))
        sim.run()
        assert len(got) == 1

    def test_no_route_raises(self):
        sim = Simulator()
        node = Node(sim, 1)
        with pytest.raises(RuntimeError):
            node.send(make_packet(src=1, dst=99))

    def test_double_bind_rejected(self):
        sim = Simulator()
        node = Node(sim, 1)
        node.bind_flow(3, lambda p: None)
        with pytest.raises(ValueError):
            node.bind_flow(3, lambda p: None)

    def test_unbind_then_rebind(self):
        sim = Simulator()
        node = Node(sim, 1)
        node.bind_flow(3, lambda p: None)
        node.unbind_flow(3)
        node.bind_flow(3, lambda p: None)


class TestLinkMonitor:
    def test_counts_arrivals_drops_departures(self):
        sim = Simulator()
        link = Link(sim, 8000.0, 0.0, DropTailQueue(2))
        monitor = LinkMonitor(sim)
        monitor.attach(link)
        link.connect(lambda p: None)
        for seq in range(5):
            link.send(make_packet(seq=seq))
        sim.run()
        assert monitor.arrivals_in(0.0, 10.0) == 5
        assert monitor.drops_in(0.0, 10.0) == 2
        assert monitor.departed_bytes_in(0.0, 10.0) == 3000

    def test_loss_rate(self):
        sim = Simulator()
        link = Link(sim, 8000.0, 0.0, DropTailQueue(2))
        monitor = LinkMonitor(sim)
        monitor.attach(link)
        link.connect(lambda p: None)
        for seq in range(5):
            link.send(make_packet(seq=seq))
        sim.run()
        assert monitor.loss_rate(0.0, 10.0) == pytest.approx(0.4)

    def test_loss_rate_nan_when_idle(self):
        import math

        sim = Simulator()
        link = Link(sim, 8000.0, 0.0)
        monitor = LinkMonitor(sim)
        monitor.attach(link)
        assert math.isnan(monitor.loss_rate(0.0, 1.0))

    def test_utilization_full_link(self):
        sim = Simulator()
        link = Link(sim, 8000.0, 0.0)
        monitor = LinkMonitor(sim)
        monitor.attach(link)
        link.connect(lambda p: None)
        # 4 packets x 1000 B at 8 kbps = 4 s of transmission.
        for seq in range(4):
            link.send(make_packet(seq=seq))
        sim.run()
        assert monitor.utilization(0.0, 4.0) == pytest.approx(1.0)
        assert monitor.utilization(0.0, 8.0) == pytest.approx(0.5)
