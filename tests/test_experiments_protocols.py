"""Unit tests for the named protocol factories."""

import pytest

from repro.cc.rap import RapSender
from repro.cc.tcp import TcpSender
from repro.cc.tear import TearSender
from repro.cc.tfrc import TfrcSender
from repro.experiments.protocols import (
    iiad,
    rap,
    sqrt,
    standard_gammas,
    tcp,
    tcp_b,
    tear,
    tfrc,
)
from repro.sim import Simulator


class TestFactories:
    def test_tcp_gamma_naming_and_rule(self):
        protocol = tcp(8)
        assert protocol.name == "TCP(0.125)"
        sender, receiver = protocol.make(Simulator())
        assert isinstance(sender, TcpSender)
        assert sender.rule.b == pytest.approx(0.125)

    def test_tcp_b_standard(self):
        protocol = tcp_b(0.5)
        sender, _ = protocol.make(Simulator())
        assert sender.rule.a == pytest.approx(1.0)

    def test_sqrt_rule_exponents(self):
        sender, _ = sqrt(4).make(Simulator())
        assert sender.rule.k == 0.5 and sender.rule.l == 0.5
        assert sender.rule.b == pytest.approx(0.25)

    def test_iiad_rule_exponents(self):
        sender, _ = iiad().make(Simulator())
        assert sender.rule.k == 1.0 and sender.rule.l == 0.0

    def test_rap_parameters(self):
        protocol = rap(16)
        sender, _ = protocol.make(Simulator())
        assert isinstance(sender, RapSender)
        assert sender.b == pytest.approx(1 / 16)
        assert protocol.rate_based and not protocol.self_clocked

    def test_tfrc_parameters(self):
        protocol = tfrc(32, conservative=True)
        sender, receiver = protocol.make(Simulator())
        assert isinstance(sender, TfrcSender)
        assert sender.conservative
        assert receiver.history.n == 32
        assert protocol.name == "TFRC(32)+SC"
        assert protocol.self_clocked

    def test_tfrc_plain_not_self_clocked(self):
        assert not tfrc(6).self_clocked

    def test_tear_factory(self):
        sender, receiver = tear(epochs=4).make(Simulator())
        assert isinstance(sender, TearSender)
        assert receiver.epochs == 4

    def test_each_make_call_is_fresh(self):
        protocol = tcp(2)
        sim = Simulator()
        s1, _ = protocol.make(sim)
        s2, _ = protocol.make(sim)
        assert s1 is not s2

    def test_standard_gammas_span_paper_range(self):
        gammas = standard_gammas()
        assert gammas[0] == 1 and gammas[-1] == 256
        assert gammas == sorted(gammas)

    def test_str_is_name(self):
        assert str(tcp(2)) == "TCP(0.5)"
