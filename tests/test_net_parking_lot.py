"""Tests for PeriodicTask, queue sampling and the parking-lot topology."""

import pytest

from repro.cc import establish, new_tcp_flow
from repro.net import Dumbbell
from repro.net.parking_lot import ParkingLot
from repro.sim import PeriodicTask, Simulator


class TestPeriodicTask:
    def test_ticks_at_interval(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=5.5)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert task.ticks == 5

    def test_stop_halts_ticking(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda: None)
        task.start()
        sim.at(2.5, task.stop)
        sim.run(until=10.0)
        assert task.ticks == 2

    def test_stop_from_callback(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda: task.stop())
        task.start()
        sim.run(until=10.0)
        assert task.ticks == 1

    def test_jitter_breaks_lockstep(self):
        import random

        sim = Simulator()
        times = []
        task = PeriodicTask(
            sim, 1.0, lambda: times.append(sim.now), jitter=0.5,
            rng=random.Random(3),
        )
        task.start()
        sim.run(until=20.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(1.0 <= g < 1.5 for g in gaps)
        assert len(set(round(g, 6) for g in gaps)) > 1

    def test_start_idempotent(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda: None)
        task.start()
        task.start()
        sim.run(until=3.5)
        assert task.ticks == 3

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=-1.0)


class TestQueueSampling:
    def test_standing_queue_visible(self):
        sim = Simulator()
        net = Dumbbell(sim, bandwidth_bps=1e6, rtt_s=0.05)
        series = net.monitor.sample_queue(0.1)
        sender, sink = new_tcp_flow(sim)
        establish(net, sender, sink)
        sender.start()
        sim.run(until=20.0)
        assert len(series) > 100
        # A long-lived TCP keeps a standing queue at the RED bottleneck.
        tail = series.window(10.0, 20.0)
        assert tail.mean() > 0.5

    def test_requires_attachment(self):
        from repro.net import LinkMonitor

        sim = Simulator()
        with pytest.raises(RuntimeError):
            LinkMonitor(sim).sample_queue(0.1)


class TestParkingLot:
    def build(self, hops=3, bandwidth=1e6):
        sim = Simulator()
        lot = ParkingLot(sim, hops=hops, bandwidth_bps=bandwidth, rtt_s=0.05)
        return sim, lot

    def test_long_path_delivers_end_to_end(self):
        sim, lot = self.build()
        sender, sink = new_tcp_flow(sim, max_packets=50)
        flow = establish(lot, sender, sink, pair=lot.long_path_pair())
        done = []
        sender.on_complete = lambda s: done.append(sim.now)
        sender.start()
        sim.run(until=30.0)
        assert done
        assert lot.accountant.delivered_bytes(flow, 0.0, 30.0) == 50 * 1000

    def test_cross_pair_uses_only_its_hop(self):
        sim, lot = self.build()
        sender, sink = new_tcp_flow(sim, max_packets=20)
        establish(lot, sender, sink, pair=lot.cross_pair(1))
        sender.start()
        sim.run(until=10.0)
        assert lot.monitors[1].arrivals_in(0.0, 10.0) >= 20
        assert lot.monitors[0].arrivals_in(0.0, 10.0) == 0
        assert lot.monitors[2].arrivals_in(0.0, 10.0) == 0

    def test_long_flow_gets_less_than_cross_flows(self):
        """The classic parking-lot result the paper's intro references: a
        flow crossing every congested hop receives less than single-hop
        flows, even with everyone running the same TCP."""
        sim, lot = self.build(hops=3, bandwidth=1e6)
        long_sender, long_sink = new_tcp_flow(sim)
        long_flow = establish(lot, long_sender, long_sink, pair=lot.long_path_pair())
        long_sender.start_at(0.0)
        cross_flows = []
        for hop in range(3):
            sender, sink = new_tcp_flow(sim)
            flow = establish(lot, sender, sink, pair=lot.cross_pair(hop))
            sender.start_at(0.05 * (hop + 1))
            cross_flows.append(flow)
        sim.run(until=60.0)
        long_bps = lot.accountant.throughput_bps(long_flow, 20.0, 60.0)
        cross_bps = [
            lot.accountant.throughput_bps(f, 20.0, 60.0) for f in cross_flows
        ]
        assert long_bps > 0
        assert all(long_bps < c for c in cross_bps)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ParkingLot(sim, hops=0, bandwidth_bps=1e6, rtt_s=0.05)
        _, lot = self.build()
        with pytest.raises(ValueError):
            lot.cross_pair(5)
        with pytest.raises(ValueError):
            lot.span_pair(2, 2)
