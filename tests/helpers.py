"""Shared test fixtures: a two-node loopback path with optional dropper."""

from __future__ import annotations

from typing import Optional

from repro.cc.base import Receiver, Sender
from repro.net import DropTailQueue, Dropper, Link, Node
from repro.sim import Simulator


def loopback(
    sim: Simulator,
    sender: Sender,
    receiver: Receiver,
    rtt: float = 0.05,
    bandwidth_bps: float = 1e7,
    dropper: Optional[Dropper] = None,
    queue_pkts: int = 100_000,
    flow_id: int = 0,
) -> None:
    """Wire sender -> (dropper) -> receiver and the reverse ACK path.

    The forward path has ``bandwidth_bps`` and half the RTT of propagation;
    the return path is identical.  A dropper, when given, sits after the
    forward link, imposing its loss pattern regardless of queue state.
    """
    node_a = Node(sim, address=1, name="src")
    node_b = Node(sim, address=2, name="dst")
    forward = Link(sim, bandwidth_bps, rtt / 2.0, DropTailQueue(queue_pkts), name="fwd")
    backward = Link(sim, bandwidth_bps, rtt / 2.0, DropTailQueue(queue_pkts), name="bwd")
    if dropper is not None:
        dropper.connect(node_b.receive)
        forward.connect(dropper.receive)
    else:
        forward.connect(node_b.receive)
    backward.connect(node_a.receive)
    node_a.add_route(2, forward)
    node_b.add_route(1, backward)
    sender.attach(node_a, 2, flow_id)
    receiver.attach(node_b, 1, flow_id)
