"""Tests for the declarative contracts layer (``repro.contracts``).

Covers the :class:`Range` semantics the I-rules depend on, consistency
between the ``Annotated`` aliases and the name-based lookup tables that
simlint consumes, and the ``@checked`` debug-enforcement gate.
"""

import math
import os
import subprocess
import sys
import typing

import pytest

from repro import contracts
from repro.contracts import (
    ALIAS_RANGES,
    ALIAS_UNITS,
    ContractViolation,
    Range,
    checked,
    contracts_enabled,
)


class TestRange:
    def test_closed_interval_contains_endpoints(self):
        rng = Range(0.0, 1.0)
        assert rng.contains(0.0)
        assert rng.contains(1.0)
        assert rng.contains(0.5)
        assert not rng.contains(-1e-12)
        assert not rng.contains(1.0 + 1e-12)

    def test_open_endpoints_exclude_their_values(self):
        rng = Range(0.0, 1.0, lo_open=True, hi_open=True)
        assert not rng.contains(0.0)
        assert not rng.contains(1.0)
        assert rng.contains(1e-300)

    def test_infinite_endpoints_are_permissive(self):
        # A closed infinite endpoint admits infinity itself: TCP-equation
        # rates legitimately return inf as loss goes to zero.
        rng = Range(0.0, math.inf)
        assert rng.contains(math.inf)
        assert rng.contains(1e308)
        assert not rng.contains(-math.inf)

    def test_nan_never_satisfies_any_contract(self):
        assert not Range(-math.inf, math.inf).contains(math.nan)

    def test_nan_endpoints_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            Range(math.nan, 1.0)
        with pytest.raises(ValueError, match="NaN"):
            Range(0.0, math.nan)

    def test_inverted_endpoints_rejected(self):
        with pytest.raises(ValueError, match="empty Range"):
            Range(1.0, 0.0)

    def test_degenerate_point_range(self):
        rng = Range(2.0, 2.0)
        assert rng.contains(2.0)
        assert not rng.contains(2.0 + 1e-12)

    def test_str_uses_bracket_convention(self):
        assert str(Range(0.0, 1.0)) == "[0, 1]"
        assert str(Range(0.0, math.inf, lo_open=True)) == "(0, inf]"
        assert str(Range(0.0, 1.0, hi_open=True)) == "[0, 1)"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Range(0.0, 1.0).lo = 5.0  # type: ignore[misc]


class TestAliasTables:
    """The name-based tables must mirror the ``Annotated`` metadata —
    simlint resolves aliases by leaf name and must never disagree with
    what ``typing.get_type_hints`` would see."""

    def test_tables_cover_the_same_aliases(self):
        assert set(ALIAS_UNITS) == set(ALIAS_RANGES)

    @pytest.mark.parametrize("name", sorted(ALIAS_RANGES))
    def test_alias_metadata_matches_tables(self, name):
        alias = getattr(contracts, name)
        metadata = typing.get_args(alias)[1:]
        units = [m for m in metadata if type(m).__name__ == "Unit"]
        ranges = [m for m in metadata if isinstance(m, Range)]
        assert len(units) == 1, f"{name} must carry exactly one Unit"
        assert len(ranges) == 1, f"{name} must carry exactly one Range"
        assert units[0] == ALIAS_UNITS[name]
        assert ranges[0] == ALIAS_RANGES[name]

    @pytest.mark.parametrize("name", sorted(ALIAS_RANGES))
    def test_aliases_are_float_based(self, name):
        alias = getattr(contracts, name)
        assert typing.get_args(alias)[0] is float

    def test_all_aliases_exported(self):
        for name in ALIAS_RANGES:
            assert name in contracts.__all__


def _strictly_positive(x: contracts.PositiveSeconds) -> contracts.Probability:
    return x


class TestCheckedDisabled:
    def test_disabled_returns_the_same_object(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
        assert not contracts_enabled()
        assert checked(_strictly_positive) is _strictly_positive

    def test_gate_requires_exactly_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "yes")
        assert not contracts_enabled()
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert contracts_enabled()


class TestCheckedEnabled:
    @pytest.fixture(autouse=True)
    def _enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "1")

    def test_valid_call_passes_through(self):
        wrapped = checked(_strictly_positive)
        assert wrapped is not _strictly_positive
        assert wrapped(0.5) == 0.5

    def test_argument_violation_raises(self):
        wrapped = checked(_strictly_positive)
        with pytest.raises(ContractViolation, match=r"x=0.0.*\(0, inf\]"):
            wrapped(0.0)

    def test_return_violation_raises(self):
        wrapped = checked(_strictly_positive)
        with pytest.raises(ContractViolation, match=r"return value 2.0"):
            wrapped(2.0)

    def test_keyword_and_default_arguments_checked(self):
        @checked
        def f(a: float, p: contracts.Probability = 2.0) -> float:
            return a

        with pytest.raises(ContractViolation, match="p=2.0"):
            f(1.0)
        with pytest.raises(ContractViolation, match="p=-1.0"):
            f(1.0, p=-1.0)
        assert f(1.0, p=0.5) == 1.0

    def test_non_numeric_values_skipped(self):
        @checked
        def f(p: contracts.Probability) -> contracts.Probability:
            return p

        assert f(None) is None  # type: ignore[arg-type]

    def test_uncontracted_function_returned_unchanged(self):
        def plain(x: float) -> float:
            return x

        assert checked(plain) is plain


class TestEquationContractsUnderEnforcement:
    """The annotated cc.equations surface honors its own contracts when
    enforcement is switched on in a fresh interpreter."""

    def test_equations_run_clean_under_enforcement(self):
        code = (
            "from repro.cc import equations as eq\n"
            "for p in (1e-6, 0.01, 0.1, 0.5, 0.9999):\n"
            "    eq.simple_response_rate(p)\n"
            "    eq.aimd_with_timeouts_rate(p)\n"
            "    eq.padhye_rate_pps(p, rtt_s=0.1, rto_s=0.4, packet_size=1000)\n"
            "eq.simple_response_rate(1.0)\n"
            "eq.padhye_rate_pps(1.0, rtt_s=0.1, rto_s=0.4, packet_size=1000)\n"
            "print('OK')\n"
        )
        env = dict(os.environ, REPRO_CONTRACTS="1", PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "OK"

    def test_violation_surfaces_in_fresh_interpreter(self):
        code = (
            "from repro.cc import equations as eq\n"
            "try:\n"
            "    eq.simple_response_rate(1.5)\n"
            "except Exception as exc:\n"
            "    print(type(exc).__name__)\n"
        )
        env = dict(os.environ, REPRO_CONTRACTS="1", PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ContractViolation"
