"""Fault tolerance and run telemetry in the execution layer.

The executor's production contract: a crashed, failing or stuck worker
may cost wall-clock time, but never correctness and never completed
work.  These tests inject deterministic faults (worker crashes, raised
exceptions, stalls — see ``repro.experiments.faults``) and pin:

* a worker crash on a job's first attempt is retried on a rebuilt pool
  and the final tables are byte-identical to a clean serial run, with
  exactly one retry in the run log;
* an irrecoverably broken pool degrades to in-process serial execution,
  salvaging (not recomputing) everything that already finished;
* per-job timeouts kill the stuck worker, retry the job, and are
  reported;
* a job that exhausts its retry budget raises ``ExecutionError`` — but
  only after every completed result has reached the cache;
* the JSONL run log records one provenance event per job plus a summary
  per batch.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments import fig20_timeout_models as fig20
from repro.experiments.cache import MISS, ResultCache
from repro.experiments.executor import (
    ExecutionError,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.experiments.faults import FaultSpec, InjectedFault
from repro.experiments.jobs import execute_job
from repro.experiments.runlog import RunLog

# Figure 20 is the cheapest real sweep (12 closed-form analysis jobs):
# heavy enough to exercise every scheduler path, light enough for CI.
JOBS = lambda: fig20.jobs("fast")  # noqa: E731 - tiny factory


@pytest.fixture(scope="module")
def serial_table():
    return fig20.reduce(SerialExecutor().map(JOBS())).format()


def read_log(path: pathlib.Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestFaultSpec:
    def test_parse_round_trip(self):
        spec = FaultSpec.parse("crash:index=3")
        assert spec.action == "crash" and spec.index == 3 and spec.when == "first"
        spec = FaultSpec.parse("error:hash=3fa2:always")
        assert spec.hash_prefix == "3fa2" and spec.when == "always"
        spec = FaultSpec.parse("hang=5:*:attempt=2")
        assert spec.action == "hang" and spec.seconds == 5.0
        assert spec.when == "attempt" and spec.attempt_n == 2
        assert FaultSpec.parse("") is None
        assert FaultSpec.parse(None) is None

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="action"):
            FaultSpec.parse("explode:index=0")
        with pytest.raises(ValueError, match="token"):
            FaultSpec.parse("crash:sometimes")

    def test_matching(self):
        jb = JOBS()[0]
        spec = FaultSpec.parse("error:index=0")
        assert spec.matches(jb, position=0, attempt=1)
        assert not spec.matches(jb, position=0, attempt=2)  # first only
        assert not spec.matches(jb, position=1, attempt=1)
        spec = FaultSpec.parse(f"error:hash={jb.content_hash[:8]}:always")
        assert spec.matches(jb, position=7, attempt=3)

    def test_error_fault_fires_through_execute_job(self):
        jb = JOBS()[0]
        fault = FaultSpec.parse("error:*").bind(position=0, attempt=1)
        with pytest.raises(InjectedFault):
            execute_job(jb, fault=fault)
        # Second attempt: the "first"-scoped fault stays quiet.
        fault = FaultSpec.parse("error:*").bind(position=0, attempt=2)
        assert execute_job(jb, fault=fault) is not None

    def test_executor_validates_spec_eagerly(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, fault="explode:index=0")


class TestCrashRecovery:
    def test_crash_on_first_attempt_is_retried_byte_identically(
        self, tmp_path, serial_table
    ):
        """The acceptance path: one worker dies, nothing changes."""
        log = tmp_path / "run.jsonl"
        cache = ResultCache(tmp_path / "cache")
        executor = ParallelExecutor(
            workers=3, fault="crash:index=0", run_log=log, backoff_s=0.01
        )
        table = fig20.reduce(executor.map(JOBS(), cache))
        assert table.format() == serial_table

        report = executor.last_report
        assert report.retries == 1
        assert report.pool_rebuilds == 1
        assert report.failures == 0 and not report.degraded
        # Only the crashed job re-ran: every unique job stored exactly once.
        assert cache.stats.stores == len(JOBS())

        records = read_log(log)
        retried = [r for r in records if r["event"] == "job" and r["retried"]]
        assert len(retried) == 1
        assert retried[0]["attempts"] == 2
        assert retried[0]["status"] == "computed"

    def test_crash_by_content_hash(self, serial_table):
        target = JOBS()[4].content_hash[:12]
        executor = ParallelExecutor(
            workers=2, fault=f"crash:hash={target}", backoff_s=0.01
        )
        table = fig20.reduce(executor.map(JOBS()))
        assert table.format() == serial_table
        assert executor.last_report.retries == 1


class TestDegradation:
    def test_hard_broken_pool_degrades_to_serial(self, serial_table):
        """Every worker dies on every attempt: the run still succeeds."""
        executor = ParallelExecutor(
            workers=2, fault="crash:*:always", max_pool_rebuilds=1, backoff_s=0.01
        )
        table = fig20.reduce(executor.map(JOBS()))
        assert table.format() == serial_table
        report = executor.last_report
        assert report.degraded
        assert report.computed == len(JOBS())

    def test_degradation_salvages_completed_results(self, tmp_path, serial_table):
        """One persistently crashing job: the others' work is kept."""
        target = JOBS()[5].content_hash[:12]
        log = tmp_path / "run.jsonl"
        cache = ResultCache(tmp_path / "cache")
        executor = ParallelExecutor(
            workers=2,
            fault=f"crash:hash={target}:always",
            max_pool_rebuilds=1,
            backoff_s=0.01,
            run_log=log,
        )
        table = fig20.reduce(executor.map(JOBS(), cache))
        assert table.format() == serial_table
        report = executor.last_report
        assert report.degraded
        assert report.salvaged >= 1  # pool-completed results carried over
        # Salvage means salvage: no unique job was ever computed twice.
        assert cache.stats.stores == len(JOBS())
        degraded = [
            r for r in read_log(log) if r["event"] == "job" and r["degraded"]
        ]
        assert degraded  # the crashy job finished in-process
        assert all(r["worker_pid"] is not None for r in degraded)


class TestRetriesAndFailure:
    def test_error_fault_retried_then_succeeds(self, serial_table):
        executor = ParallelExecutor(
            workers=2, fault="error:index=2", max_retries=2, backoff_s=0.01
        )
        table = fig20.reduce(executor.map(JOBS()))
        assert table.format() == serial_table
        assert executor.last_report.retries == 1
        assert executor.last_report.failures == 0

    def test_exhausted_retries_raise_after_salvage(self, tmp_path):
        target = JOBS()[3].content_hash[:12]
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(
            workers=2,
            fault=f"error:hash={target}:always",
            max_retries=1,
            backoff_s=0.01,
        )
        with pytest.raises(ExecutionError) as excinfo:
            executor.map(JOBS(), cache)
        assert excinfo.value.attempts == 2  # 1 try + 1 retry
        report = executor.last_report
        assert report.failures == 1
        # Completed values flowed into the cache before the failure.
        assert report.salvaged == len(JOBS()) - 1
        assert cache.stats.stores == len(JOBS()) - 1
        # A rerun without the fault answers the salvage from the cache.
        clean = SerialExecutor()
        clean.map(JOBS(), cache)
        assert clean.last_report.computed == 1
        assert clean.last_report.cache_hits == len(JOBS()) - 1

    def test_serial_executor_retries_transient_errors(self, monkeypatch):
        """In-process execution shares the bounded-retry machinery."""
        import repro.experiments.executor as executor_module

        calls = {"n": 0}
        real = executor_module.execute_job

        def flaky(jb, fault=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(jb, fault)

        monkeypatch.setattr(executor_module, "execute_job", flaky)
        executor = SerialExecutor(max_retries=2, backoff_s=0.0)
        results = executor.map(JOBS()[:2])
        assert len(results) == 2
        assert executor.last_report.retries == 1

    def test_serial_executor_raises_when_budget_exhausted(self, monkeypatch):
        import repro.experiments.executor as executor_module

        def always_broken(jb, fault=None):
            raise RuntimeError("permanent")

        monkeypatch.setattr(executor_module, "execute_job", always_broken)
        executor = SerialExecutor(max_retries=1, backoff_s=0.0)
        with pytest.raises(ExecutionError, match="after 2 attempt"):
            executor.map(JOBS()[:1])
        assert executor.last_report.failures == 1


class TestTimeouts:
    def test_stuck_job_times_out_and_is_retried(self, tmp_path, serial_table):
        log = tmp_path / "run.jsonl"
        executor = ParallelExecutor(
            workers=2,
            fault="hang=3:index=1",  # attempt 1 stalls 3s
            job_timeout=0.75,
            backoff_s=0.01,
            run_log=log,
        )
        table = fig20.reduce(executor.map(JOBS()))
        assert table.format() == serial_table
        report = executor.last_report
        assert report.timeouts == 1
        assert report.retries >= 1
        assert report.pool_rebuilds >= 1  # the stuck worker was killed
        summary = [r for r in read_log(log) if r["event"] == "map"][-1]
        assert summary["timeouts"] == 1

    def test_persistent_hang_exhausts_budget(self):
        executor = ParallelExecutor(
            workers=2,
            fault="hang=3:index=0:always",
            job_timeout=0.3,
            max_retries=0,
            backoff_s=0.01,
        )
        with pytest.raises(ExecutionError, match="job-timeout"):
            executor.map(JOBS()[:2])
        assert executor.last_report.timeouts == 1
        assert executor.last_report.failures == 1


class TestRunLog:
    def test_one_record_per_job_plus_summary(self, tmp_path):
        log = tmp_path / "run.jsonl"
        cache = ResultCache(tmp_path / "cache")
        executor = SerialExecutor(run_log=log)
        js = JOBS()
        executor.map(js, cache)
        executor.map(js, cache)  # warm: all cached
        records = read_log(log)
        jobs = [r for r in records if r["event"] == "job"]
        summaries = [r for r in records if r["event"] == "map"]
        assert len(jobs) == 2 * len(js)
        assert len(summaries) == 2
        cold, warm = summaries
        assert cold["computed"] == len(js) and cold["cache_hits"] == 0
        assert warm["computed"] == 0 and warm["cache_hits"] == len(js)
        computed = [r for r in jobs if r["status"] == "computed"]
        cached = [r for r in jobs if r["status"] == "cached"]
        assert len(computed) == len(js) and len(cached) == len(js)
        for record in computed:
            assert record["attempts"] == 1
            assert record["worker_pid"] is not None
            assert record["hash"] and record["figure"] == "fig20"
        for record in records:
            assert "ts" in record

    def test_deduplicated_jobs_are_logged(self, tmp_path):
        log = tmp_path / "run.jsonl"
        js = fig20.jobs("fast", p_values=[0.1, 0.1, 0.3])
        executor = SerialExecutor(run_log=log)
        executor.map(js)
        statuses = [r["status"] for r in read_log(log) if r["event"] == "job"]
        assert statuses.count("computed") == 2
        assert statuses.count("deduplicated") == 1

    def test_env_configuration(self, tmp_path, monkeypatch):
        log = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_RUN_LOG", str(log))
        monkeypatch.setenv("REPRO_MAX_RETRIES", "7")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "123.5")
        executor = make_executor(0)
        assert isinstance(executor.run_log, RunLog)
        assert executor.run_log.path == log
        assert executor.max_retries == 7
        assert executor.job_timeout == 123.5
        executor.map(JOBS()[:1])
        assert log.exists() and read_log(log)


class TestWorkerCountValidation:
    def test_zero_workers_rejected(self):
        """``ParallelExecutor(0)`` used to silently become a cpu-count
        pool; zero means serial and only ``make_executor`` maps it."""
        with pytest.raises(ValueError, match="serial"):
            ParallelExecutor(0)
        with pytest.raises(ValueError):
            ParallelExecutor(workers=-1)
        # make_executor keeps the documented mapping: 0 -> serial.
        assert isinstance(make_executor(0), SerialExecutor)

    def test_last_report_exists_before_first_map(self):
        """``executor.last_report`` must be readable on a figure that
        short-circuits before mapping (as the CLI does)."""
        for executor in (SerialExecutor(), ParallelExecutor(workers=2)):
            report = executor.last_report
            assert report.jobs == 0 and report.computed == 0
            assert not report.degraded


class TestCacheHygiene:
    def test_clear_sweeps_tmp_litter_and_empty_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        js = JOBS()[:2]
        SerialExecutor().map(js, cache)
        shard = next(d for d in tmp_path.iterdir() if d.is_dir())
        orphan = shard / "deadbeef.json.12345.tmp"
        orphan.write_text("{ torn write")
        assert len(cache) == 2  # tmp litter never counts as an entry
        removed = cache.clear()
        assert removed == 2
        assert not orphan.exists()
        assert not any(d.is_dir() for d in tmp_path.iterdir())

    def test_prune_removes_only_stale_tmp_files(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        SerialExecutor().map(JOBS()[:1], cache)
        shard = next(d for d in tmp_path.iterdir() if d.is_dir())
        stale = shard / "stale.json.1.tmp"
        fresh = shard / "fresh.json.2.tmp"
        stale.write_text("x")
        fresh.write_text("x")
        old = 10_000
        os.utime(stale, (stale.stat().st_atime, stale.stat().st_mtime - old))
        assert cache.prune(max_age_s=old / 2) == 1
        assert not stale.exists()
        assert fresh.exists()  # may belong to a concurrent writer
        assert len(cache) == 1  # real entries untouched

    def test_prune_removes_orphaned_traces(self, tmp_path):
        # Regression: a trace whose result blob is gone (pruned by hand,
        # lost to a partial clear...) lingered forever — prune() now
        # removes it, while traces with a live result are untouched.
        import dataclasses

        cache = ResultCache(tmp_path)
        keep, lose = (dataclasses.replace(jb, trace=True) for jb in JOBS()[:2])
        for jb in (keep, lose):
            cache.store(jb, {"ok": True})
            cache.store_trace(jb, '{"channel": "x"}\n')
        assert cache.has_trace(keep) and cache.has_trace(lose)
        # Orphan one trace by deleting its result blob out from under it.
        (tmp_path / cache.key(lose)[:2] / f"{cache.key(lose)}.json").unlink()
        fresh = ResultCache(tmp_path)
        assert fresh.prune() == 1
        assert not fresh.has_trace(lose)
        assert fresh.has_trace(keep)  # live trace untouched
        assert fresh.lookup(keep) is not MISS  # live result untouched

    def test_prune_is_noop_in_memory(self):
        assert ResultCache().prune() == 0
