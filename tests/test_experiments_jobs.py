"""The declarative job layer: hashing, executors, caching, parallelism.

The refactor's contract: every figure is ``jobs(scale)`` (pure, picklable
descriptions) -> executor (serial or process pool, optionally cached) ->
``reduce(results)`` (pure formatting).  These tests pin the properties
that make that split safe:

* content hashes are stable across processes and ignore display-only
  fields, so Figures 4/5 (and 14/15) share cache entries;
* parallel execution produces byte-identical tables to serial execution;
* the cache hits on identical work, misses when the config *or* the
  code-version salt changes, and survives corrupt blobs.
"""

from __future__ import annotations

import pickle
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments import ALL_FIGURES, EXTENSIONS
from repro.experiments import fig04_stabilization_time as fig04
from repro.experiments import fig05_stabilization_cost as fig05
from repro.experiments import fig14_oscillation_utilization as fig14
from repro.experiments import fig15_oscillation_droprate as fig15
from repro.experiments import fig19_iiad_sqrt as fig19
from repro.experiments import fig20_timeout_models as fig20
from repro.experiments.cache import MISS, ResultCache, default_salt
from repro.experiments.executor import (
    ParallelExecutor,
    SerialExecutor,
    execute,
    make_executor,
)
from repro.experiments.jobs import DropperSpec, canonical, content_hash, job
from repro.experiments.protocols import ProtocolSpec, spec_of, tcp, tfrc
from repro.sim.rng import RngRegistry

SRC = Path(__file__).resolve().parent.parent / "src"

# Miniature sweeps: enough to exercise every path, cheap enough for CI.
TINY_CBR = dict(
    bandwidth_bps=1e6, n_flows=2, warmup_s=2.0, cbr_stop=8.0,
    cbr_restart=10.0, end=14.0,
)
TINY_OSC = dict(
    bandwidth_bps=1.5e6, min_duration_s=10.0, periods_to_run=3,
    max_duration_s=12.0, warmup_s=2.0,
)
TINY_LOSS = dict(bandwidth_bps=3e6, duration_s=10.0, warmup_s=2.0)


def tiny_fig04_jobs():
    return fig04.jobs(
        "fast", gammas=[2], families={"TCP(1/g)": lambda g: tcp(g)}, **TINY_CBR
    )


def tiny_fig14_jobs():
    return fig14.jobs(
        "fast", on_times=[0.5], protocols=[tcp(2)], n_flows=2, **TINY_OSC
    )


def tiny_fig19_jobs():
    return fig19.jobs("fast", **TINY_LOSS)


class TestContentHash:
    def test_stable_within_process(self):
        a = fig20.jobs("fast")
        b = fig20.jobs("fast")
        assert [j.content_hash for j in a] == [j.content_hash for j in b]

    def test_stable_across_processes(self):
        """The hash must not depend on interpreter state (PYTHONHASHSEED)."""
        expected = fig20.jobs("fast")[0].content_hash
        script = (
            "from repro.experiments import fig20_timeout_models as m;"
            "print(m.jobs('fast')[0].content_hash)"
        )
        import os

        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONPATH=str(SRC), PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            assert out.stdout.strip() == expected

    def test_display_fields_do_not_affect_hash(self):
        jb = tiny_fig04_jobs()[0]
        relabelled = replace(jb, figure="zzz", index=99, tags=(("other", 1),))
        assert relabelled.content_hash == jb.content_hash

    def test_inputs_do_affect_hash(self):
        jb = tiny_fig04_jobs()[0]
        assert replace(jb, seed=77).content_hash != jb.content_hash
        assert replace(jb, scale="paper").content_hash != jb.content_hash
        assert (
            replace(jb, config=replace(jb.config, bandwidth_bps=2e6)).content_hash
            != jb.content_hash
        )
        assert (
            replace(jb, protocol=spec_of(tfrc(6))).content_hash != jb.content_hash
        )

    def test_fig04_and_fig05_share_the_sweep(self):
        h4 = [j.content_hash for j in fig04.jobs("fast")]
        h5 = [j.content_hash for j in fig05.jobs("fast")]
        assert h4 == h5

    def test_fig14_and_fig15_share_the_sweep(self):
        h14 = [j.content_hash for j in fig14.jobs("fast")]
        h15 = [j.content_hash for j in fig15.jobs("fast")]
        assert h14 == h15

    def test_canonical_rejects_foreign_objects(self):
        with pytest.raises(TypeError, match="canonicalize"):
            content_hash({"bad": object()})

    def test_canonical_encodes_specs_and_configs(self):
        desc = canonical(
            {
                "proto": spec_of(tcp(8)),
                "dropper": DropperSpec.count([50, 400]),
                "seq": (1, 2.5, None, True),
            }
        )
        assert desc["proto"]["__protocol__"]
        assert desc["dropper"]["__dropper__"] == "count"
        assert desc["seq"] == [1, 2.5, None, True]


class TestJobsContract:
    @pytest.mark.parametrize(
        "name,module", sorted({**ALL_FIGURES, **EXTENSIONS}.items())
    )
    def test_every_module_defines_the_pipeline(self, name, module):
        assert callable(module.jobs), name
        assert callable(module.reduce), name
        assert callable(module.run), name

    def test_jobs_are_indexed_in_order(self):
        js = fig20.jobs("fast")
        assert [j.index for j in js] == list(range(len(js)))

    def test_jobs_are_picklable(self):
        for jb in tiny_fig04_jobs() + tiny_fig14_jobs() + tiny_fig19_jobs():
            clone = pickle.loads(pickle.dumps(jb))
            assert clone == jb
            assert clone.content_hash == jb.content_hash

    def test_unknown_scenario_named_in_error(self):
        bad = job("figXX", "not_a_scenario")
        from repro.experiments.jobs import execute_job

        with pytest.raises(KeyError, match="available"):
            execute_job(bad)


class TestParallelMatchesSerial:
    """Acceptance: distributing work may not change a single byte."""

    @pytest.mark.parametrize(
        "label,make_jobs,module",
        [
            ("fig04", tiny_fig04_jobs, fig04),
            ("fig14", tiny_fig14_jobs, fig14),
            ("fig19", tiny_fig19_jobs, fig19),
        ],
    )
    def test_tables_byte_identical(self, label, make_jobs, module):
        serial = module.reduce(SerialExecutor().map(make_jobs()))
        parallel = module.reduce(ParallelExecutor(workers=2).map(make_jobs()))
        assert parallel.format() == serial.format()
        assert parallel.rows == serial.rows  # exact floats, not just text

    def test_results_come_back_in_submission_order(self):
        js = fig20.jobs("fast")
        results = ParallelExecutor(workers=3).map(js)
        assert [r.job.index for r in results] == [j.index for j in js]

    def test_make_executor(self):
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, ParallelExecutor)
        assert pool.workers == 3
        with pytest.raises(ValueError):
            ParallelExecutor(workers=-1)

    def test_identical_jobs_deduplicated(self):
        js = fig20.jobs("fast", p_values=[0.1, 0.1, 0.3])
        executor = SerialExecutor()
        results = executor.map(js)
        report = executor.last_report
        assert report.jobs == 3
        assert report.computed == 2
        assert report.deduplicated == 1
        assert results[0].value == results[1].value


class TestResultCache:
    def test_miss_then_hit_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        js = fig20.jobs("fast")
        executor = SerialExecutor()

        executor.map(js, cache)
        cold = executor.last_report
        assert cold.cache_hits == 0 and cold.computed == len(js)

        executor.map(js, cache)
        warm = executor.last_report
        assert warm.cache_hits == len(js) and warm.computed == 0
        assert cache.stats.hits == len(js)

    def test_warm_cache_reproduces_table_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SerialExecutor()
        cold = fig19.reduce(executor.map(tiny_fig19_jobs(), cache))
        warm = fig19.reduce(executor.map(tiny_fig19_jobs(), cache))
        assert executor.last_report.computed == 0
        assert warm.format() == cold.format()
        assert warm.rows == cold.rows

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SerialExecutor()
        executor.map(fig20.jobs("fast", p_values=[0.1]), cache)
        executor.map(fig20.jobs("fast", p_values=[0.2]), cache)
        assert executor.last_report.cache_hits == 0
        assert executor.last_report.computed == 1

    def test_salt_change_invalidates(self, tmp_path):
        js = fig20.jobs("fast", p_values=[0.1])
        old = ResultCache(tmp_path)  # default code-version salt
        SerialExecutor().map(js, old)
        assert old.lookup(js[0]) is not MISS

        upgraded = ResultCache(tmp_path, salt=default_salt() + "-next")
        assert upgraded.lookup(js[0]) is MISS
        assert upgraded.stats.misses == 1

    def test_corrupt_blob_is_a_miss_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        js = fig20.jobs("fast", p_values=[0.1])
        cache.store(js[0], {"ok": True})
        blob = tmp_path / cache.key(js[0])[:2] / f"{cache.key(js[0])}.json"
        assert blob.exists()
        blob.write_text("{ not json !")
        assert cache.lookup(js[0]) is MISS
        executor = SerialExecutor()
        executor.map(js, cache)
        assert executor.last_report.computed == 1

    def test_corrupt_pack_is_a_miss_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        js = fig20.jobs("fast", p_values=[0.1])
        SerialExecutor().map(js, cache)
        shard = cache.key(js[0])[:2]
        pack = tmp_path / shard / f"{shard}.pack"
        assert pack.exists()
        pack.write_bytes(b"\x00" * 4)  # truncate: index offsets now dangle
        fresh = ResultCache(tmp_path)
        assert fresh.lookup(js[0]) is MISS
        executor = SerialExecutor()
        executor.map(js, fresh)
        assert executor.last_report.computed == 1

    def test_memory_cache_default(self):
        cache = ResultCache()
        assert cache.root is None
        js = fig20.jobs("fast", p_values=[0.3])
        SerialExecutor().map(js, cache)
        assert cache.lookup(js[0]) is not MISS
        assert len(cache) == 1
        cache.clear()
        assert cache.lookup(js[0]) is MISS

    def test_store_returns_json_round_trip(self):
        cache = ResultCache()
        jb = fig20.jobs("fast", p_values=[0.1])[0]
        value = {"xs": [1, 2.5], "label": "ok", "none": None}
        assert cache.store(jb, value) == value


class TestExecuteHelper:
    def test_execute_defaults_to_serial(self):
        js = fig20.jobs("fast", p_values=[0.1])
        results = execute(js)
        assert len(results) == 1 and not results[0].cached

    def test_execute_with_cache_marks_cached(self):
        cache = ResultCache()
        js = fig20.jobs("fast", p_values=[0.1])
        execute(js, None, cache)
        results = execute(js, None, cache)
        assert results[0].cached


class TestCliParallelAndCache:
    def test_run_parallel_with_cache_dir(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["run", "fig20", "--parallel", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "12 computed, 0 cache hits" in out

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 computed, 12 cache hits" in out

    def test_run_no_cache(self, capsys):
        from repro.cli import main

        assert main(["run", "fig20", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "12 computed, 0 cache hits" in out


class TestRngRegistryPickling:
    def test_round_trip_preserves_mid_sequence_state(self):
        registry = RngRegistry(42)
        stream = registry.stream("red")
        [stream.random() for _ in range(10)]

        clone = pickle.loads(pickle.dumps(registry))
        assert clone == registry
        assert clone.master_seed == 42
        assert clone.stream("red").random() == registry.stream("red").random()
        # Streams first opened after unpickling also agree.
        assert clone.stream("new").random() == registry.stream("new").random()


class TestProtocolSpec:
    def test_factories_attach_specs(self):
        spec = spec_of(tfrc(6, conservative=True))
        assert isinstance(spec, ProtocolSpec)
        rebuilt = spec.build()
        assert rebuilt.name == tfrc(6, conservative=True).name

    def test_spec_round_trips_through_pickle(self):
        spec = spec_of(tcp(8))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="available"):
            ProtocolSpec.of("quic").build()
