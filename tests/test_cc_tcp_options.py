"""Tests for the TCP options: ECN, delayed ACKs, Limited Transmit."""


from repro.cc import establish, new_tcp_flow
from repro.net import Dumbbell, Packet, PeriodicDropper, REDQueue
from repro.net.packet import DATA
from repro.sim import Simulator

from tests.helpers import loopback


class TestEcnQueue:
    def make_red(self, ecn_marking=True):
        import random

        return REDQueue(
            capacity_pkts=50,
            min_thresh=5,
            max_thresh=15,
            rng=random.Random(1),
            ecn_marking=ecn_marking,
        )

    def data(self, ect=True):
        return Packet(0, DATA, 0, 1000, 0, 1, ect=ect)

    class _AlwaysDrop:
        """An rng whose coin always fires, making early drops certain."""

        def random(self) -> float:
            return 0.0

    def test_ect_packet_marked_not_dropped(self):
        # In the probabilistic marking region (min_thresh <= avg <
        # max_thresh), an ECT packet is marked CE and admitted instead of
        # dropped (RFC 3168 §7).
        q = self.make_red()
        q._rng = self._AlwaysDrop()
        q.avg = 14.0  # marking region; weight keeps it there after update
        packet = self.data(ect=True)
        admitted = q.enqueue(packet)
        assert admitted
        assert packet.ce
        assert q.marks == 1

    def test_non_ect_packet_still_dropped(self):
        q = self.make_red()
        q._rng = self._AlwaysDrop()
        q.avg = 14.0  # marking region, but the packet is not ECN-capable
        packet = self.data(ect=False)
        assert not q.enqueue(packet)
        assert not packet.ce

    def test_forced_drop_region_drops_even_ect(self):
        # RFC 3168 §7 / ns-2 RED: marking substitutes for drops only
        # between the thresholds; once the average exceeds max_thresh the
        # queue drops, ECN-capable or not.  (Previously ECT packets were
        # marked here, so a saturated ECN flow could never lose a packet
        # short of physical overflow.)
        q = self.make_red()
        q.avg = 40.0  # beyond 2 * max_thresh: certain drop
        packet = self.data(ect=True)
        assert not q.enqueue(packet)
        assert not packet.ce
        assert q.marks == 0

    def test_gentle_region_drops_ect_too(self):
        q = self.make_red()
        q._rng = self._AlwaysDrop()
        q.avg = 22.0  # gentle ramp: max_thresh < avg < 2 * max_thresh
        packet = self.data(ect=True)
        assert not q.enqueue(packet)
        assert not packet.ce

    def test_saturated_ecn_flow_still_sees_drops(self):
        # Regression: flood an ECN-marking RED queue with ECT packets and
        # never drain it.  The average climbs through the marking region
        # (producing marks) and past max_thresh, where drops must resume
        # even though every packet is ECN-capable.
        q = self.make_red()
        q.weight = 0.5  # track the instantaneous queue quickly
        dropped = 0
        for _ in range(120):
            if not q.enqueue(self.data(ect=True)):
                dropped += 1
        assert q.marks > 0  # marking happened on the way up
        assert dropped > 0  # saturation produced real drops
        # The queue never reached physical capacity, so every drop was a
        # RED decision in the saturated region — not buffer overflow.
        assert len(q) < q.capacity_pkts

    def test_physical_overflow_drops_even_ect(self):
        q = self.make_red()
        for _ in range(200):
            q.enqueue(self.data(ect=True))
        assert len(q) <= q.capacity_pkts
        packet = self.data(ect=True)
        q._update_average()
        if len(q) >= q.capacity_pkts:
            assert not q.enqueue(packet)

    def test_marking_disabled_by_default(self):
        q = self.make_red(ecn_marking=False)
        q.avg = 16.0
        packet = self.data(ect=True)
        # In the forced-drop region with marking off, the packet drops.
        q.gentle = False
        assert not q.enqueue(packet)
        assert not packet.ce


class TestEcnFlow:
    def run_ecn(self, ecn):
        sim = Simulator()
        net = Dumbbell(sim, bandwidth_bps=1e6, rtt_s=0.05, ecn_marking=True)
        sender, sink = new_tcp_flow(sim, ecn=ecn)
        flow = establish(net, sender, sink)
        sender.start()
        sim.run(until=40.0)
        return sender, net, flow

    def test_ecn_flow_reacts_to_marks_not_drops(self):
        sender, net, _ = self.run_ecn(ecn=True)
        assert sender.ecn_reactions > 10
        # Control is driven by marks: retransmission events are rare.
        assert sender.fast_retransmits + sender.timeouts < sender.ecn_reactions / 3

    def test_ecn_flow_utilizes_link(self):
        sender, net, flow = self.run_ecn(ecn=True)
        assert net.monitor.utilization(10.0, 40.0) > 0.85

    def test_non_ecn_flow_ignores_marking_queue(self):
        sender, net, _ = self.run_ecn(ecn=False)
        assert sender.ecn_reactions == 0
        assert sender.loss_events > 0  # still congestion-controlled, by drops

    def test_at_most_one_reaction_per_window(self):
        """Reactions are paced: far fewer reactions than marks under heavy
        marking."""
        sender, net, _ = self.run_ecn(ecn=True)
        marks = net.bottleneck.queue.marks
        assert sender.ecn_reactions <= marks


class TestDelayedAcks:
    def test_ack_ratio_roughly_half(self):
        sim = Simulator()
        sender, sink = new_tcp_flow(sim, delayed_acks=True, max_packets=400)
        loopback(sim, sender, sink, rtt=0.05, bandwidth_bps=1e8)
        sender.start()
        sim.run(until=30.0)
        assert sink.packets_received == 400
        assert sink.acks_sent < 0.7 * sink.packets_received

    def test_standalone_timer_acks_last_packet(self):
        sim = Simulator()
        sender, sink = new_tcp_flow(sim, delayed_acks=True, max_packets=1)
        loopback(sim, sender, sink)
        done = []
        sender.on_complete = lambda s: done.append(sim.now)
        sender.start()
        sim.run(until=5.0)
        # The single packet is ACKed by the 200 ms delack timer.
        assert done and done[0] < 1.0

    def test_out_of_order_acks_immediately(self):
        sim = Simulator()
        sender, sink = new_tcp_flow(sim, delayed_acks=True)
        loopback(sim, sender, sink, dropper=PeriodicDropper(30))
        sender.start()
        sim.run(until=20.0)
        # Loss recovery still functions with delayed ACKs on.
        assert sender.fast_retransmits > 0
        assert sink.rcv_nxt > 100

    def test_transfer_completes_with_delayed_acks(self):
        sim = Simulator()
        sender, sink = new_tcp_flow(sim, delayed_acks=True, max_packets=200)
        loopback(sim, sender, sink, dropper=PeriodicDropper(40))
        done = []
        sender.on_complete = lambda s: done.append(sim.now)
        sender.start()
        sim.run(until=60.0)
        assert done
        assert sink.rcv_nxt == 200


class TestLimitedTransmit:
    def test_new_data_sent_on_early_dupacks(self):
        """With limited transmit, the first two dupacks each release a new
        packet, keeping the ACK clock alive."""
        sent = {}
        for enabled in (False, True):
            sim = Simulator()
            sender, sink = new_tcp_flow(
                sim, limited_transmit=enabled, max_cwnd=4.0
            )
            loopback(sim, sender, sink, dropper=PeriodicDropper(20))
            sender.start()
            sim.run(until=30.0)
            sent[enabled] = (sender.timeouts, sink.rcv_nxt)
        # Limited transmit reduces timeout reliance for tiny windows and
        # never hurts delivered progress.
        assert sent[True][0] <= sent[False][0]
        assert sent[True][1] >= 0.8 * sent[False][1]
