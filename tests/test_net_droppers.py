"""Unit tests for the crafted loss-pattern droppers."""

import random

import pytest

from repro.net import (
    BernoulliDropper,
    CountBasedDropper,
    Packet,
    PeriodicDropper,
    PhaseDropper,
    mild_bursty_pattern,
    severe_bursty_phases,
)
from repro.net.packet import ACK, DATA


def data_packet(seq=0):
    return Packet(flow_id=0, kind=DATA, seq=seq, size=1000, src=0, dst=1)


def ack_packet(seq=0):
    return Packet(flow_id=0, kind=ACK, seq=seq, size=40, src=1, dst=0)


def run_through(dropper, packets):
    delivered = []
    dropper.connect(delivered.append)
    for p in packets:
        dropper.receive(p)
    return delivered


class TestCountBasedDropper:
    def test_drops_one_after_each_gap(self):
        dropper = CountBasedDropper([3])
        delivered = run_through(dropper, [data_packet(i) for i in range(8)])
        # Arrivals 1,2,3 pass; 4th dropped; 5,6,7 pass; 8th dropped.
        assert [p.seq for p in delivered] == [0, 1, 2, 4, 5, 6]
        assert dropper.drops == 2

    def test_cycles_through_gaps(self):
        dropper = CountBasedDropper([2, 5])
        n = 2 + 1 + 5 + 1 + 2 + 1  # two full gaps then a third drop
        delivered = run_through(dropper, [data_packet(i) for i in range(n)])
        assert dropper.drops == 3
        assert len(delivered) == n - 3

    def test_acks_pass_untouched(self):
        dropper = CountBasedDropper([1])
        delivered = run_through(dropper, [ack_packet(i) for i in range(10)])
        assert len(delivered) == 10
        assert dropper.drops == 0

    def test_unconnected_raises(self):
        with pytest.raises(RuntimeError):
            CountBasedDropper([1]).receive(data_packet())

    def test_invalid_gaps_rejected(self):
        with pytest.raises(ValueError):
            CountBasedDropper([])
        with pytest.raises(ValueError):
            CountBasedDropper([0])

    def test_mild_bursty_pattern_shape(self):
        assert mild_bursty_pattern() == [50, 50, 50, 400, 400, 400]

    def test_mild_bursty_loss_rate(self):
        dropper = CountBasedDropper(mild_bursty_pattern())
        cycle = sum(mild_bursty_pattern()) + 6
        run_through(dropper, [data_packet(i) for i in range(cycle * 3)])
        assert dropper.drops == 18  # 6 drops per cycle


class TestPeriodicDropper:
    def test_steady_loss_rate(self):
        dropper = PeriodicDropper(10)
        run_through(dropper, [data_packet(i) for i in range(1000)])
        assert dropper.drops == 100

    def test_minimum_period(self):
        with pytest.raises(ValueError):
            PeriodicDropper(1)


class TestPhaseDropper:
    def test_phase_switching_by_clock(self):
        clock = {"t": 0.0}
        dropper = PhaseDropper([(1.0, 2), (1.0, 1000)], clock=lambda: clock["t"])
        delivered = []
        dropper.connect(delivered.append)
        # Phase 0: every 2nd packet dropped.
        for i in range(10):
            dropper.receive(data_packet(i))
        drops_phase0 = dropper.drops
        clock["t"] = 1.5  # phase 1: effectively lossless
        for i in range(10):
            dropper.receive(data_packet(10 + i))
        assert drops_phase0 == 5
        assert dropper.drops == drops_phase0

    def test_cycle_wraps(self):
        clock = {"t": 0.0}
        dropper = PhaseDropper([(1.0, 2), (1.0, 1000)], clock=lambda: clock["t"])
        dropper.connect(lambda p: None)
        clock["t"] = 2.5  # wraps into phase 0 again
        for i in range(10):
            dropper.receive(data_packet(i))
        assert dropper.drops == 5

    def test_severe_bursty_phases_shape(self):
        phases = severe_bursty_phases()
        assert phases == [(6.0, 200), (1.0, 4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseDropper([], clock=lambda: 0.0)
        with pytest.raises(ValueError):
            PhaseDropper([(0.0, 2)], clock=lambda: 0.0)


class TestBernoulliDropper:
    def test_zero_probability_never_drops(self):
        dropper = BernoulliDropper(0.0)
        run_through(dropper, [data_packet(i) for i in range(100)])
        assert dropper.drops == 0

    def test_drop_rate_close_to_p(self):
        dropper = BernoulliDropper(0.3, rng=random.Random(7))
        n = 20000
        run_through(dropper, [data_packet(i) for i in range(n)])
        assert dropper.drops / n == pytest.approx(0.3, abs=0.02)

    def test_p_validation(self):
        with pytest.raises(ValueError):
            BernoulliDropper(1.0)
        with pytest.raises(ValueError):
            BernoulliDropper(-0.1)
