"""Unit tests for the packed result transport and cache splicing."""

import json

import pytest

from repro.experiments import fig20_timeout_models as fig20
from repro.experiments.cache import MISS, ResultCache
from repro.experiments.transport import (
    MAGIC,
    PackedResult,
    TransportError,
    pack_result,
    unpack_result,
)

JOBS = lambda: fig20.jobs("fast")  # noqa: E731 - tiny factory


class TestFrames:
    def test_round_trip_without_trace(self):
        value = {"xs": [1, 2.5], "label": "ok", "none": None}
        frame = pack_result(value)
        assert isinstance(frame, PackedResult)
        assert bytes(frame).startswith(MAGIC)
        value_text, trace_text = unpack_result(frame)
        assert json.loads(value_text) == value
        assert trace_text is None

    def test_round_trip_with_trace(self):
        wrapped = {"__trace__": '{"ch": 1}\n{"ch": 2}\n', "value": {"y": 3}}
        value_text, trace_text = unpack_result(pack_result(wrapped, traced=True))
        assert json.loads(value_text) == {"y": 3}
        assert trace_text == '{"ch": 1}\n{"ch": 2}\n'

    def test_value_text_is_canonical_json(self):
        # The frame's payload must be byte-identical to what the cache
        # would have serialized itself: sorted keys, default separators.
        value = {"b": 1, "a": {"z": 2, "y": 3}}
        value_text, _ = unpack_result(pack_result(value))
        assert value_text == json.dumps(value, allow_nan=True, sort_keys=True)

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda raw: raw[:-1],  # truncated payload
            lambda raw: raw[: len(MAGIC)],  # header cut short
            lambda raw: b"NOPE" + raw[4:],  # wrong magic
            lambda raw: b"",  # empty
        ],
    )
    def test_mangled_frames_raise_transport_errors(self, mangle):
        raw = bytes(pack_result({"x": 1}))
        with pytest.raises(TransportError):
            unpack_result(PackedResult(mangle(raw)))

    def test_non_utf8_payload_rejected(self):
        raw = bytearray(pack_result({"x": 1}))
        raw[-2] = 0xFF  # stomp a payload byte with an invalid sequence
        with pytest.raises(TransportError):
            unpack_result(PackedResult(bytes(raw)))


class TestCacheSplicing:
    def test_store_text_is_byte_identical_to_store(self, tmp_path):
        jb = JOBS()[0]
        value = {"rows": [[0.1, "tcp", 3.5]], "meta": {"n": 2}}
        via_store = ResultCache(tmp_path / "a")
        via_store.store(jb, value)
        via_splice = ResultCache(tmp_path / "b")
        value_text, _ = unpack_result(pack_result(value))
        returned = via_splice.store_text(jb, value_text)
        assert returned == value
        key = via_store.key(jb)
        blob_a = (tmp_path / "a" / key[:2] / f"{key}.json").read_bytes()
        blob_b = (tmp_path / "b" / key[:2] / f"{key}.json").read_bytes()
        assert blob_a == blob_b

    def test_spliced_record_hits_on_lookup(self, tmp_path):
        cache = ResultCache(tmp_path)
        jb = JOBS()[0]
        value = {"x": [1, 2, 3]}
        value_text, _ = unpack_result(pack_result(value))
        cache.store_text(jb, value_text)
        assert ResultCache(tmp_path).lookup(jb) == value

    def test_store_text_returns_the_json_round_trip(self):
        # Same contract as store(): callers get what a reader would see.
        cache = ResultCache()
        jb = JOBS()[0]
        value = {"t": (1, 2)}  # tuples become lists through JSON
        value_text, _ = unpack_result(pack_result(value))
        assert cache.store_text(jb, value_text) == {"t": [1, 2]}


class TestBatchedPacks:
    def test_batch_flush_packs_and_reads_back(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = JOBS()[:4]
        assert cache.begin_batch() is True
        for i, jb in enumerate(jobs):
            cache.store(jb, {"i": i})
        cache.flush_batch()
        # Entries live in per-shard packs, not one blob per result.
        assert not list(tmp_path.glob("*/" + cache.key(jobs[0]) + ".json"))
        assert list(tmp_path.glob("*/*.pack"))
        fresh = ResultCache(tmp_path)
        for i, jb in enumerate(jobs):
            assert fresh.lookup(jb) == {"i": i}
        assert len(fresh) == len(jobs)

    def test_batched_entries_visible_before_flush(self, tmp_path):
        cache = ResultCache(tmp_path)
        jb = JOBS()[0]
        cache.begin_batch()
        cache.store(jb, {"ok": 1})
        assert cache.lookup(jb) == {"ok": 1}  # buffered, still a hit
        cache.flush_batch()
        assert cache.lookup(jb) == {"ok": 1}

    def test_clear_removes_packs(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = JOBS()[:3]
        cache.begin_batch()
        for jb in jobs:
            cache.store(jb, {"v": 1})
        cache.flush_batch()
        assert cache.clear() == 3
        assert not list(tmp_path.glob("*/*.pack"))
        assert not list(tmp_path.glob("*/*.pack.idx"))
        assert ResultCache(tmp_path).lookup(jobs[0]) is MISS

    def test_memory_cache_declines_batching(self):
        assert ResultCache().begin_batch() is False
